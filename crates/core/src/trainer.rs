//! Algorithm 1: training augmented models (and, as the degenerate single-head
//! case, plain models).
//!
//! Each output head (one per sub-network) gets its own loss against the same
//! labels (classification) or against its own masked next-token targets
//! (language modelling); one backward pass then delivers to every parameter
//! exactly `∇_{θˢ} L(θˢ)` — the cross-sub-network taps are detached — and SGD
//! applies the paper's update `θᵗ⁺¹ₛ ← θᵗₛ − η gᵗₛ`.
//!
//! Because batch order depends only on the seed, training the *original*
//! model with the same [`TrainConfig`] reproduces the exact weight
//! trajectory of the original sub-network inside the augmented model — the
//! property behind the paper's "augmentation does not affect training
//! correctness" claims (Figures 5–13), verified bit-exactly in this crate's
//! integration tests.

use amalgam_data::{BatchIter, ImageDataset, TextClassDataset};
use amalgam_nn::graph::GraphModel;
use amalgam_nn::loss::cross_entropy;
use amalgam_nn::metrics::{accuracy, History, RunningMean};
use amalgam_nn::optim::Sgd;
use amalgam_nn::Mode;
use amalgam_tensor::{Rng, Tensor};

/// Hyper-parameters of one training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum (0 disables).
    pub momentum: f32,
    /// Seed for batch shuffling (shared by comparable runs).
    pub seed: u64,
}

impl TrainConfig {
    /// A config with the given epochs/batch size/learning rate and no
    /// momentum, seed 0.
    pub fn new(epochs: usize, batch_size: usize, lr: f32) -> Self {
        TrainConfig {
            epochs,
            batch_size,
            lr,
            momentum: 0.0,
            seed: 0,
        }
    }

    /// Sets the momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The deterministic per-epoch shuffle source shared by every trainer in the
/// workspace (including the simulated cloud), so that comparable runs see
/// identical batch orders.
pub fn epoch_rng(cfg: &TrainConfig, epoch: usize) -> Rng {
    Rng::seed_from(
        cfg.seed
            .wrapping_add(epoch as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// Trains a (possibly augmented) classifier; every head is scored against
/// the same labels, metrics come from head `primary`.
///
/// Works for any model whose input is an image batch `[N, C, H, W]`.
pub fn train_image_classifier(
    model: &mut GraphModel,
    train: &ImageDataset,
    test: Option<&ImageDataset>,
    primary: usize,
    cfg: &TrainConfig,
) -> History {
    train_classifier_impl(
        model,
        primary,
        cfg,
        test,
        |idx| train.batch_at(idx),
        train.len(),
    )
}

/// Trains a (possibly augmented) text classifier over token-id documents.
pub fn train_text_classifier(
    model: &mut GraphModel,
    train: &TextClassDataset,
    test: Option<&TextClassDataset>,
    primary: usize,
    cfg: &TrainConfig,
) -> History {
    train_classifier_impl(
        model,
        primary,
        cfg,
        test,
        |idx| train.batch_at(idx),
        train.len(),
    )
}

/// Shared classification training loop. `test` types differ between callers,
/// so evaluation is dispatched through [`EvalSource`].
fn train_classifier_impl<B, T>(
    model: &mut GraphModel,
    primary: usize,
    cfg: &TrainConfig,
    test: Option<&T>,
    batch_fn: B,
    n: usize,
) -> History
where
    B: Fn(&[usize]) -> (Tensor, Vec<usize>),
    T: EvalSource + ?Sized,
{
    assert!(primary < model.outputs().len(), "primary head out of range");
    let mut opt = Sgd::new(cfg.lr).with_momentum(cfg.momentum);
    let mut history = History::new();
    for epoch in 0..cfg.epochs {
        let t0 = std::time::Instant::now();
        let mut rng = epoch_rng(cfg, epoch);
        let mut loss_mean = RunningMean::new();
        let mut acc_mean = RunningMean::new();
        for idx in BatchIter::new(n, cfg.batch_size, &mut rng) {
            let (x, labels) = batch_fn(&idx);
            let outs = model.forward(&[&x], Mode::Train);
            let mut seeds = Vec::with_capacity(outs.len());
            for (h, out) in outs.iter().enumerate() {
                let (loss, grad) = cross_entropy(out, &labels);
                if h == primary {
                    loss_mean.add(loss, labels.len());
                    acc_mean.add(accuracy(out, &labels), labels.len());
                }
                seeds.push(grad);
            }
            model.zero_grad();
            model.backward(&seeds);
            opt.step(&mut model.params_mut());
        }
        history.train_loss.push(loss_mean.mean());
        history.train_acc.push(acc_mean.mean());
        history.epoch_secs.push(t0.elapsed().as_secs_f32());
        if let Some(t) = test {
            let (vl, va) = t.evaluate(model, primary, cfg.batch_size);
            history.val_loss.push(vl);
            history.val_acc.push(va);
        }
    }
    history
}

/// Something a classifier can be evaluated on.
pub trait EvalSource {
    /// Returns `(mean loss, accuracy)` of head `primary` over the dataset.
    fn evaluate(&self, model: &mut GraphModel, primary: usize, batch_size: usize) -> (f32, f32);
}

impl EvalSource for ImageDataset {
    fn evaluate(&self, model: &mut GraphModel, primary: usize, batch_size: usize) -> (f32, f32) {
        evaluate_impl(model, primary, batch_size, self.len(), |idx| {
            self.batch_at(idx)
        })
    }
}

impl EvalSource for TextClassDataset {
    fn evaluate(&self, model: &mut GraphModel, primary: usize, batch_size: usize) -> (f32, f32) {
        evaluate_impl(model, primary, batch_size, self.len(), |idx| {
            self.batch_at(idx)
        })
    }
}

fn evaluate_impl<B>(
    model: &mut GraphModel,
    primary: usize,
    batch_size: usize,
    n: usize,
    batch_fn: B,
) -> (f32, f32)
where
    B: Fn(&[usize]) -> (Tensor, Vec<usize>),
{
    let mut loss_mean = RunningMean::new();
    let mut acc_mean = RunningMean::new();
    for idx in BatchIter::sequential(n, batch_size) {
        let (x, labels) = batch_fn(&idx);
        let outs = model.forward(&[&x], Mode::Eval);
        let (loss, _) = cross_entropy(&outs[primary], &labels);
        loss_mean.add(loss, labels.len());
        acc_mean.add(accuracy(&outs[primary], &labels), labels.len());
        model.clear_caches();
    }
    (loss_mean.mean(), acc_mean.mean())
}

/// Convenience: evaluate an image classifier's head.
pub fn evaluate_image_classifier(
    model: &mut GraphModel,
    data: &ImageDataset,
    primary: usize,
    batch_size: usize,
) -> (f32, f32) {
    data.evaluate(model, primary, batch_size)
}

// ---------------------------------------------------------------------------
// Language modelling
// ---------------------------------------------------------------------------

/// In-window next-token loss for one head.
///
/// `window: [B, T']` is the (possibly augmented) token window, `keep` the
/// head's kept positions (length T). The head's logits are `[B, T, V]`; the
/// target of position `k < T-1` is the token at kept position `k+1`. The
/// last position has no in-window target and is excluded — for plain models
/// (`keep = 0..T`) this reduces to ordinary next-token prediction.
///
/// Returns `(mean loss, gradient shaped like logits)`.
///
/// # Panics
///
/// Panics on shape inconsistencies.
pub fn lm_head_loss(logits: &Tensor, window: &Tensor, keep: &[usize]) -> (f32, Tensor) {
    let ld = logits.dims();
    assert_eq!(ld.len(), 3, "logits must be [B, T, V]");
    let (b, t, v) = (ld[0], ld[1], ld[2]);
    assert_eq!(t, keep.len(), "logit positions must match keep length");
    let ta = window.dims()[1];
    assert_eq!(window.dims()[0], b, "window batch mismatch");
    assert!(t >= 2, "need at least two positions for next-token loss");

    // Gather logits for positions 0..T-1 and their targets.
    let mut sliced = Tensor::zeros(&[b, t - 1, v]);
    let mut targets = Vec::with_capacity(b * (t - 1));
    for bi in 0..b {
        for k in 0..t - 1 {
            let src = &logits.data()[bi * t * v + k * v..bi * t * v + (k + 1) * v];
            sliced.data_mut()[bi * (t - 1) * v + k * v..bi * (t - 1) * v + (k + 1) * v]
                .copy_from_slice(src);
            targets.push(window.data()[bi * ta + keep[k + 1]] as usize);
        }
    }
    let (loss, grad_sliced) = amalgam_nn::loss::cross_entropy_seq(&sliced, &targets);
    // Pad the gradient back to [B, T, V] with zeros at the last position.
    let mut grad = Tensor::zeros(&[b, t, v]);
    for bi in 0..b {
        for k in 0..t - 1 {
            let src = &grad_sliced.data()[bi * (t - 1) * v + k * v..bi * (t - 1) * v + (k + 1) * v];
            grad.data_mut()[bi * t * v + k * v..bi * t * v + (k + 1) * v].copy_from_slice(src);
        }
    }
    (loss, grad)
}

/// Trains a (possibly augmented) language model on token windows.
///
/// `head_keeps` supplies one kept-position list per output head; a plain
/// model passes a single `0..T` list. Windows are visited in order (standard
/// LM practice); metrics come from head `primary`.
pub fn train_lm(
    model: &mut GraphModel,
    train_windows: &[Tensor],
    val_windows: &[Tensor],
    head_keeps: &[Vec<usize>],
    primary: usize,
    cfg: &TrainConfig,
) -> History {
    assert_eq!(
        head_keeps.len(),
        model.outputs().len(),
        "one keep list per head"
    );
    assert!(primary < head_keeps.len(), "primary head out of range");
    let mut opt = Sgd::new(cfg.lr).with_momentum(cfg.momentum);
    let mut history = History::new();
    for _epoch in 0..cfg.epochs {
        let t0 = std::time::Instant::now();
        let mut loss_mean = RunningMean::new();
        for window in train_windows {
            let outs = model.forward(&[window], Mode::Train);
            let mut seeds = Vec::with_capacity(outs.len());
            for (h, out) in outs.iter().enumerate() {
                let (loss, grad) = lm_head_loss(out, window, &head_keeps[h]);
                if h == primary {
                    loss_mean.add(loss, window.dims()[0]);
                }
                seeds.push(grad);
            }
            model.zero_grad();
            model.backward(&seeds);
            opt.step(&mut model.params_mut());
        }
        history.train_loss.push(loss_mean.mean());
        history.epoch_secs.push(t0.elapsed().as_secs_f32());
        if !val_windows.is_empty() {
            history.val_loss.push(evaluate_lm(
                model,
                val_windows,
                &head_keeps[primary],
                primary,
            ));
        }
    }
    history
}

/// Mean validation loss of one LM head over windows.
pub fn evaluate_lm(
    model: &mut GraphModel,
    windows: &[Tensor],
    keep: &[usize],
    primary: usize,
) -> f32 {
    let mut loss_mean = RunningMean::new();
    for window in windows {
        let outs = model.forward(&[window], Mode::Eval);
        let (loss, _) = lm_head_loss(&outs[primary], window, keep);
        loss_mean.add(loss, window.dims()[0]);
        model.clear_caches();
    }
    loss_mean.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalgam_data::{LmCorpusSpec, SyntheticImageSpec, TextClassSpec};
    use amalgam_models::{lenet5, text_classifier, transformer_lm, TransformerLmConfig};

    #[test]
    fn lenet_learns_synthetic_mnist() {
        let mut rng = Rng::seed_from(0);
        let pair = SyntheticImageSpec::mnist_like()
            .with_counts(256, 64)
            .with_hw(12)
            .with_classes(4)
            .generate(&mut rng);
        let mut model = lenet5(1, 12, 4, &mut rng);
        let cfg = TrainConfig::new(4, 32, 0.05)
            .with_momentum(0.9)
            .with_seed(1);
        let history = train_image_classifier(&mut model, &pair.train, Some(&pair.test), 0, &cfg);
        assert_eq!(history.epochs(), 4);
        let acc = history.final_val_acc().unwrap();
        assert!(acc > 0.6, "validation accuracy too low: {acc}");
        assert!(
            history.train_loss.last().unwrap() < history.train_loss.first().unwrap(),
            "loss did not decrease"
        );
    }

    #[test]
    fn text_classifier_learns_synthetic_agnews() {
        let mut rng = Rng::seed_from(1);
        let (train, test) = TextClassSpec::agnews_like()
            .with_vocab(200)
            .with_counts(256, 64)
            .with_doc_len(16)
            .generate(&mut rng);
        let mut model = text_classifier(200, 16, 4, &mut rng);
        let cfg = TrainConfig::new(6, 32, 0.5).with_seed(2);
        let history = train_text_classifier(&mut model, &train, Some(&test), 0, &cfg);
        let acc = history.final_val_acc().unwrap();
        assert!(acc > 0.6, "validation accuracy too low: {acc}");
    }

    #[test]
    fn transformer_lm_reduces_loss_below_uniform() {
        let mut rng = Rng::seed_from(2);
        let corpus = LmCorpusSpec::wikitext2_like()
            .with_vocab(40)
            .with_tokens(4000)
            .generate(&mut rng);
        let batches = corpus.batchify(8, 12);
        let windows: Vec<Tensor> = (0..batches.num_batches())
            .map(|i| batches.window(i).0)
            .collect();
        let (train_w, val_w) = windows.split_at(windows.len() - 4);
        let mut model = transformer_lm(&TransformerLmConfig::tiny(40, 16), &mut rng);
        let keep: Vec<usize> = (0..12).collect();
        let cfg = TrainConfig::new(3, 8, 0.05).with_seed(3);
        let history = train_lm(&mut model, train_w, val_w, &[keep], 0, &cfg);
        let uniform = (40f32).ln();
        let final_loss = *history.val_loss.last().unwrap();
        assert!(
            final_loss < uniform,
            "LM did not beat uniform: {final_loss} vs {uniform}"
        );
    }

    #[test]
    fn lm_head_loss_gradient_shape_and_last_position_zero() {
        let mut rng = Rng::seed_from(3);
        let logits = Tensor::randn(&[2, 5, 7], &mut rng);
        let window = Tensor::from_fn(&[2, 5], |i| (i % 7) as f32);
        let keep: Vec<usize> = (0..5).collect();
        let (loss, grad) = lm_head_loss(&logits, &window, &keep);
        assert!(loss > 0.0);
        assert_eq!(grad.dims(), &[2, 5, 7]);
        // Last position contributes no gradient.
        for bi in 0..2 {
            let last = &grad.data()[bi * 35 + 28..bi * 35 + 35];
            assert!(last.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn identical_seeds_give_identical_trajectories() {
        let mut rng = Rng::seed_from(4);
        let pair = SyntheticImageSpec::mnist_like()
            .with_counts(64, 16)
            .with_hw(8)
            .with_classes(2)
            .generate(&mut rng);
        let cfg = TrainConfig::new(2, 16, 0.1).with_seed(7);
        let mut m1 = lenet5(1, 8, 2, &mut Rng::seed_from(5));
        let mut m2 = lenet5(1, 8, 2, &mut Rng::seed_from(5));
        train_image_classifier(&mut m1, &pair.train, None, 0, &cfg);
        train_image_classifier(&mut m2, &pair.train, None, 0, &cfg);
        for ((n1, t1), (n2, t2)) in m1.state_dict().iter().zip(m2.state_dict().iter()) {
            assert_eq!(n1, n2);
            assert_eq!(t1.data(), t2.data(), "nondeterministic training at {n1}");
        }
    }
}
