//! The Dataset Augmenter (paper §4.1, Figure 2 and Figure 3).
//!
//! Images: each channel plane is vectorized, synthetic values are inserted
//! at the plan's noise positions, and the result is reshaped to the grown
//! square — exactly the paper's Figure 2 pipeline. Text: each batchified
//! window receives synthetic tokens at the plan's noise positions (Figure 3).
//!
//! One plan (insertion layout) is drawn per dataset; the layout is the
//! secret, the noise values themselves are not.

use crate::noise::NoiseKind;
use crate::plan::{ImagePlan, TextPlan};
use amalgam_data::{DataStats, ImageDataset, LmBatches, TextClassDataset};
use amalgam_tensor::{Rng, Tensor};

/// An augmented image dataset together with timing metadata.
#[derive(Debug, Clone)]
pub struct AugmentedImages {
    /// The augmented dataset (bigger planes, same labels).
    pub dataset: ImageDataset,
    /// Wall-clock seconds the augmentation took (Table 2's "Average time").
    pub seconds: f64,
}

/// Augments every image of `data` according to `plan`, inserting noise drawn
/// from `kind`.
///
/// All channels share the plan's layout, so the augmented image stays
/// spatially coherent (the paper's Figure 2 example).
///
/// # Panics
///
/// Panics if the dataset geometry disagrees with the plan.
pub fn augment_images(
    data: &ImageDataset,
    plan: &ImagePlan,
    kind: &NoiseKind,
    rng: &mut Rng,
) -> AugmentedImages {
    let start = std::time::Instant::now();
    let (c, h, w) = data.sample_dims();
    assert_eq!((h, w), plan.orig_hw(), "plan geometry mismatch");
    let (ah, aw) = plan.aug_hw();
    let n = data.len();
    let stats = DataStats::of(data.images());
    let noise_pos = plan.noise_positions();

    let mut out = Tensor::zeros(&[n, c, ah, aw]);
    let plane = ah * aw;
    let orig_plane = h * w;
    for nc in 0..n * c {
        let src = &data.images().data()[nc * orig_plane..(nc + 1) * orig_plane];
        // Scatter original pixels to their kept positions…
        for (k, &pos) in plan.keep().iter().enumerate() {
            out.data_mut()[nc * plane + pos] = src[k];
        }
        // …and fill the noise positions.
        for &pos in &noise_pos {
            out.data_mut()[nc * plane + pos] = kind.sample(&stats, rng);
        }
    }
    let dataset = ImageDataset::new(out, data.labels().to_vec(), data.num_classes());
    AugmentedImages {
        dataset,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// An augmented language-model dataset: fixed windows with inserted tokens.
#[derive(Debug, Clone)]
pub struct AugmentedLmDataset {
    /// Augmented input windows, each `[B, T']` of token ids.
    pub windows: Vec<Tensor>,
    /// Vocabulary size (unchanged by augmentation).
    pub vocab: usize,
    /// Wall-clock seconds the augmentation took.
    pub seconds: f64,
}

impl AugmentedLmDataset {
    /// Total payload bytes as f32 tensors (Table 2's size metric).
    pub fn nbytes(&self) -> usize {
        self.windows.iter().map(|w| w.numel() * 4).sum()
    }
}

/// Augments every batchified window of an LM corpus according to `plan`.
///
/// # Panics
///
/// Panics if the window length disagrees with the plan.
pub fn augment_lm(
    batches: &LmBatches,
    plan: &TextPlan,
    kind: &NoiseKind,
    rng: &mut Rng,
) -> AugmentedLmDataset {
    let start = std::time::Instant::now();
    assert_eq!(
        batches.seq_len(),
        plan.orig_len(),
        "plan window length mismatch"
    );
    let vocab = batches.vocab();
    let noise_pos = plan.noise_positions();
    let (b, t, ta) = (batches.batch_size(), plan.orig_len(), plan.aug_len());

    let mut windows = Vec::with_capacity(batches.num_batches());
    for i in 0..batches.num_batches() {
        let (input, _) = batches.window(i);
        let mut aug = Tensor::zeros(&[b, ta]);
        for bi in 0..b {
            for (k, &pos) in plan.keep().iter().enumerate() {
                aug.data_mut()[bi * ta + pos] = input.data()[bi * t + k];
            }
            for &pos in &noise_pos {
                aug.data_mut()[bi * ta + pos] = kind.sample_token(vocab, rng) as f32;
            }
        }
        windows.push(aug);
    }
    AugmentedLmDataset {
        windows,
        vocab,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// An augmented text-classification dataset.
#[derive(Debug, Clone)]
pub struct AugmentedTextClass {
    /// The augmented dataset (longer documents, same labels).
    pub dataset: TextClassDataset,
    /// Wall-clock seconds the augmentation took.
    pub seconds: f64,
}

/// Augments every document of a classification corpus according to `plan`.
///
/// # Panics
///
/// Panics if the document length disagrees with the plan.
pub fn augment_text_class(
    data: &TextClassDataset,
    plan: &TextPlan,
    kind: &NoiseKind,
    rng: &mut Rng,
) -> AugmentedTextClass {
    let start = std::time::Instant::now();
    assert_eq!(
        data.doc_len(),
        plan.orig_len(),
        "plan document length mismatch"
    );
    let vocab = data.vocab();
    let noise_pos = plan.noise_positions();
    let ta = plan.aug_len();

    let mut docs = Vec::with_capacity(data.len());
    for doc in data.docs() {
        let mut aug = vec![0usize; ta];
        for (k, &pos) in plan.keep().iter().enumerate() {
            aug[pos] = doc[k];
        }
        for &pos in &noise_pos {
            aug[pos] = kind.sample_token(vocab, rng);
        }
        docs.push(aug);
    }
    let dataset = TextClassDataset::new(docs, data.labels().to_vec(), vocab, data.num_classes());
    AugmentedTextClass {
        dataset,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Recovers the original images from an augmented dataset using the secret
/// plan (sanity check / inverse of [`augment_images`]).
///
/// # Panics
///
/// Panics if geometry disagrees with the plan.
pub fn deaugment_images(aug: &ImageDataset, plan: &ImagePlan) -> ImageDataset {
    let (c, ah, aw) = aug.sample_dims();
    assert_eq!((ah, aw), plan.aug_hw(), "plan geometry mismatch");
    let (h, w) = plan.orig_hw();
    let n = aug.len();
    let plane = ah * aw;
    let orig_plane = h * w;
    let mut out = Tensor::zeros(&[n, c, h, w]);
    for nc in 0..n * c {
        for (k, &pos) in plan.keep().iter().enumerate() {
            out.data_mut()[nc * orig_plane + k] = aug.images().data()[nc * plane + pos];
        }
    }
    ImageDataset::new(out, aug.labels().to_vec(), aug.num_classes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalgam_data::{LmCorpus, SyntheticImageSpec, TextClassSpec};

    fn small_images(rng: &mut Rng) -> ImageDataset {
        SyntheticImageSpec::cifar10_like()
            .with_counts(6, 2)
            .with_hw(8)
            .generate(rng)
            .train
    }

    #[test]
    fn image_roundtrip_recovers_originals_exactly() {
        let mut rng = Rng::seed_from(0);
        let data = small_images(&mut rng);
        let plan = ImagePlan::random(8, 8, 0.5, &mut rng);
        let aug = augment_images(&data, &plan, &NoiseKind::UniformRandom, &mut rng);
        assert_eq!(aug.dataset.sample_dims(), (3, 12, 12));
        let back = deaugment_images(&aug.dataset, &plan);
        assert_eq!(back.images().data(), data.images().data());
        assert_eq!(back.labels(), data.labels());
    }

    #[test]
    fn augmented_size_matches_table2_formula() {
        // Table 2: size scales with the augmented resolution.
        let mut rng = Rng::seed_from(1);
        let data = small_images(&mut rng);
        let plan = ImagePlan::random(8, 8, 1.0, &mut rng);
        let aug = augment_images(&data, &plan, &NoiseKind::UniformRandom, &mut rng);
        assert_eq!(aug.dataset.nbytes(), 6 * 3 * 16 * 16 * 4);
    }

    #[test]
    fn labels_are_preserved() {
        let mut rng = Rng::seed_from(2);
        let data = small_images(&mut rng);
        let plan = ImagePlan::random(8, 8, 0.25, &mut rng);
        let aug = augment_images(&data, &plan, &NoiseKind::Gaussian { sigma: 0.2 }, &mut rng);
        assert_eq!(aug.dataset.labels(), data.labels());
    }

    #[test]
    fn noise_values_stay_in_data_range() {
        let mut rng = Rng::seed_from(3);
        let data = small_images(&mut rng);
        let plan = ImagePlan::random(8, 8, 0.5, &mut rng);
        let aug = augment_images(&data, &plan, &NoiseKind::UniformRandom, &mut rng);
        assert!(aug.dataset.images().min() >= data.images().min());
        assert!(aug.dataset.images().max() <= data.images().max());
    }

    #[test]
    fn lm_augmentation_grows_windows_and_keeps_originals() {
        let mut rng = Rng::seed_from(4);
        let corpus = LmCorpus::new((0..400).map(|i| i % 13).collect(), 13);
        let batches = corpus.batchify(4, 10);
        let plan = TextPlan::random(10, 0.5, &mut rng);
        let aug = augment_lm(&batches, &plan, &NoiseKind::UniformRandom, &mut rng);
        assert_eq!(aug.windows.len(), batches.num_batches());
        assert_eq!(aug.windows[0].dims(), &[4, 15]);
        // Original tokens recoverable at kept positions.
        let (orig, _) = batches.window(0);
        for bi in 0..4 {
            for (k, &pos) in plan.keep().iter().enumerate() {
                assert_eq!(
                    aug.windows[0].data()[bi * 15 + pos],
                    orig.data()[bi * 10 + k]
                );
            }
        }
    }

    #[test]
    fn text_class_augmentation_preserves_docs() {
        let mut rng = Rng::seed_from(5);
        let (train, _) = TextClassSpec::agnews_like()
            .with_vocab(100)
            .with_counts(8, 2)
            .with_doc_len(6)
            .generate(&mut rng);
        let plan = TextPlan::random(6, 1.0, &mut rng);
        let aug = augment_text_class(&train, &plan, &NoiseKind::UniformRandom, &mut rng);
        assert_eq!(aug.dataset.doc_len(), 12);
        for (orig, augd) in train.docs().iter().zip(aug.dataset.docs()) {
            for (k, &pos) in plan.keep().iter().enumerate() {
                assert_eq!(augd[pos], orig[k]);
            }
        }
    }

    #[test]
    fn zero_augmentation_is_identity() {
        let mut rng = Rng::seed_from(6);
        let data = small_images(&mut rng);
        let plan = ImagePlan::random(8, 8, 0.0, &mut rng);
        let aug = augment_images(&data, &plan, &NoiseKind::UniformRandom, &mut rng);
        assert_eq!(aug.dataset.images().data(), data.images().data());
    }
}
