//! Privacy-loss and computing-performance-loss analysis (paper §6.1–6.2).

use amalgam_tensor::math::BigMagnitude;

/// Privacy loss ε for an augmentation amount α (paper Eq. 5): `ε = 1/(1+α)`.
///
/// Smaller is better — more augmentation hides the original features more.
///
/// # Panics
///
/// Panics if `alpha < 0`.
pub fn privacy_loss(alpha: f64) -> f64 {
    assert!(alpha >= 0.0, "augmentation amount must be non-negative");
    1.0 / (1.0 + alpha)
}

/// Computing performance loss ρ for an augmentation amount α (paper Eq. 6):
/// `ρ = 1 − 1/(1+α)`.
///
/// # Panics
///
/// Panics if `alpha < 0`.
pub fn performance_loss(alpha: f64) -> f64 {
    1.0 - privacy_loss(alpha)
}

/// One row of the paper's Figure 15 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyPoint {
    /// Augmentation amount α.
    pub alpha: f64,
    /// Privacy loss ε = 1/(1+α).
    pub epsilon: f64,
    /// Computing performance loss ρ = 1 − 1/(1+α).
    pub rho: f64,
}

/// Sweeps α over `amounts`, producing Figure 15's two curves.
pub fn privacy_sweep(amounts: &[f64]) -> Vec<PrivacyPoint> {
    amounts
        .iter()
        .map(|&alpha| PrivacyPoint {
            alpha,
            epsilon: privacy_loss(alpha),
            rho: performance_loss(alpha),
        })
        .collect()
}

/// Brute-force search space for guessing which of `total` indices are the
/// `inserted` noise ones — Table 2's rightmost column and the basis of the
/// paper's brute-force attack analysis (§6.3).
pub fn brute_force_search_space(total: usize, inserted: usize) -> BigMagnitude {
    BigMagnitude::choose(total as u64, inserted as u64)
}

/// Expected number of brute-force attempts (half the search space), in
/// `log10`. Infeasibility threshold arguments use this.
pub fn expected_attempts_log10(total: usize, inserted: usize) -> f64 {
    brute_force_search_space(total, inserted).log10() - std::f64::consts::LOG10_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_and_rho_are_complementary() {
        for alpha in [0.0, 0.25, 0.5, 1.0, 4.0] {
            let e = privacy_loss(alpha);
            let r = performance_loss(alpha);
            assert!((e + r - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_values() {
        // Figure 15: at α = 1.0 both curves meet at 0.5.
        assert!((privacy_loss(1.0) - 0.5).abs() < 1e-12);
        assert!((performance_loss(1.0) - 0.5).abs() < 1e-12);
        // No augmentation: ε = 1 (no privacy), ρ = 0 (no overhead).
        assert_eq!(privacy_loss(0.0), 1.0);
        assert_eq!(performance_loss(0.0), 0.0);
    }

    #[test]
    fn epsilon_monotonically_decreases() {
        let sweep = privacy_sweep(&[0.0, 0.5, 1.0, 2.0, 4.0]);
        for pair in sweep.windows(2) {
            assert!(pair[1].epsilon < pair[0].epsilon);
            assert!(pair[1].rho > pair[0].rho);
        }
    }

    #[test]
    fn search_space_matches_table2() {
        // MNIST 25 %: C(1225, 441) ≈ 1.00e346.
        let ss = brute_force_search_space(1225, 441);
        assert!((ss.log10() - 346.0).abs() < 1.0);
    }

    #[test]
    fn expected_attempts_is_half() {
        let full = brute_force_search_space(30, 10).log10();
        let half = expected_attempts_log10(30, 10);
        assert!((full - half - std::f64::consts::LOG10_2).abs() < 1e-12);
    }
}
