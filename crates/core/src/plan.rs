//! Augmentation plans — the client-side secrets describing *where* noise was
//! inserted.
//!
//! A plan is drawn once per dataset (Eq. 1/2 fix each layer's skip-index set,
//! so every sample shares one insertion layout) and never leaves the client
//! unredacted: the cloud only ever sees the per-sub-network keep lists inside
//! masked layers, without knowing which list is the original one.

use amalgam_tensor::math::BigMagnitude;
use amalgam_tensor::Rng;

/// Insertion layout for an image dataset: original `h×w` planes grow to
/// `aug_h×aug_w`, with original pixels living at `keep` (raster order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImagePlan {
    orig_h: usize,
    orig_w: usize,
    aug_h: usize,
    aug_w: usize,
    keep: Vec<usize>,
}

impl ImagePlan {
    /// Draws a random layout for augmenting `h×w` planes by `amount`
    /// (e.g. `0.25` grows each side by 25 %, as in Table 2).
    ///
    /// # Panics
    ///
    /// Panics if `amount < 0` or the original plane is empty.
    pub fn random(h: usize, w: usize, amount: f32, rng: &mut Rng) -> Self {
        assert!(amount >= 0.0, "augmentation amount must be non-negative");
        assert!(h > 0 && w > 0, "original plane must be non-empty");
        let aug_h = grow(h, amount);
        let aug_w = grow(w, amount);
        let keep = rng.sample_indices(aug_h * aug_w, h * w);
        ImagePlan {
            orig_h: h,
            orig_w: w,
            aug_h,
            aug_w,
            keep,
        }
    }

    /// Builds a plan from an explicit keep list (tests, persistence).
    ///
    /// # Panics
    ///
    /// Panics if `keep` does not have `h·w` strictly increasing entries
    /// within the augmented plane.
    pub fn from_keep(h: usize, w: usize, aug_h: usize, aug_w: usize, keep: Vec<usize>) -> Self {
        assert_eq!(keep.len(), h * w, "keep must list every original pixel");
        assert!(
            keep.windows(2).all(|p| p[0] < p[1]),
            "keep must be strictly increasing"
        );
        assert!(
            keep.last().is_none_or(|&k| k < aug_h * aug_w),
            "keep exceeds augmented plane"
        );
        ImagePlan {
            orig_h: h,
            orig_w: w,
            aug_h,
            aug_w,
            keep,
        }
    }

    /// Original plane height and width.
    pub fn orig_hw(&self) -> (usize, usize) {
        (self.orig_h, self.orig_w)
    }

    /// Augmented plane height and width.
    pub fn aug_hw(&self) -> (usize, usize) {
        (self.aug_h, self.aug_w)
    }

    /// Flat positions (within the augmented plane) of the original pixels,
    /// in original raster order.
    pub fn keep(&self) -> &[usize] {
        &self.keep
    }

    /// Number of inserted noise values per channel plane.
    pub fn inserted(&self) -> usize {
        self.aug_h * self.aug_w - self.orig_h * self.orig_w
    }

    /// Flat positions of the noise values, ascending.
    pub fn noise_positions(&self) -> Vec<usize> {
        complement(&self.keep, self.aug_h * self.aug_w)
    }

    /// The brute-force search space `C(aug, inserted)` — Table 2's metric.
    pub fn search_space(&self) -> BigMagnitude {
        BigMagnitude::choose((self.aug_h * self.aug_w) as u64, self.inserted() as u64)
    }
}

/// Insertion layout for a text dataset: windows of `orig_len` tokens grow to
/// `aug_len`, original tokens at `keep`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextPlan {
    orig_len: usize,
    aug_len: usize,
    keep: Vec<usize>,
}

impl TextPlan {
    /// Draws a random layout for augmenting length-`len` windows by `amount`.
    ///
    /// # Panics
    ///
    /// Panics if `amount < 0` or `len == 0`.
    pub fn random(len: usize, amount: f32, rng: &mut Rng) -> Self {
        assert!(amount >= 0.0, "augmentation amount must be non-negative");
        assert!(len > 0, "window must be non-empty");
        let aug_len = grow(len, amount);
        let keep = rng.sample_indices(aug_len, len);
        TextPlan {
            orig_len: len,
            aug_len,
            keep,
        }
    }

    /// Builds a plan from an explicit keep list.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent inputs (see [`ImagePlan::from_keep`]).
    pub fn from_keep(len: usize, aug_len: usize, keep: Vec<usize>) -> Self {
        assert_eq!(keep.len(), len, "keep must list every original position");
        assert!(
            keep.windows(2).all(|p| p[0] < p[1]),
            "keep must be strictly increasing"
        );
        assert!(
            keep.last().is_none_or(|&k| k < aug_len),
            "keep exceeds augmented window"
        );
        TextPlan {
            orig_len: len,
            aug_len,
            keep,
        }
    }

    /// Original window length.
    pub fn orig_len(&self) -> usize {
        self.orig_len
    }

    /// Augmented window length.
    pub fn aug_len(&self) -> usize {
        self.aug_len
    }

    /// Kept (original) positions in the augmented window.
    pub fn keep(&self) -> &[usize] {
        &self.keep
    }

    /// Number of inserted noise tokens per window.
    pub fn inserted(&self) -> usize {
        self.aug_len - self.orig_len
    }

    /// Positions of the noise tokens, ascending.
    pub fn noise_positions(&self) -> Vec<usize> {
        complement(&self.keep, self.aug_len)
    }

    /// The brute-force search space `C(aug_len, inserted)` — Table 2's metric.
    pub fn search_space(&self) -> BigMagnitude {
        BigMagnitude::choose(self.aug_len as u64, self.inserted() as u64)
    }
}

/// Grows a dimension by the augmentation amount: `x + ⌊x·amount⌋` (paper §4.1).
pub fn grow(x: usize, amount: f32) -> usize {
    x + (x as f32 * amount).round() as usize
}

fn complement(keep: &[usize], total: usize) -> Vec<usize> {
    let mut is_kept = vec![false; total];
    for &k in keep {
        is_kept[k] = true;
    }
    (0..total).filter(|&i| !is_kept[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_matches_paper_examples() {
        // Paper: 28 at 25 % → 35; 32 at 50 % → 48; 224 at 100 % → 448.
        assert_eq!(grow(28, 0.25), 35);
        assert_eq!(grow(32, 0.50), 48);
        assert_eq!(grow(224, 1.0), 448);
        assert_eq!(grow(10, 0.1), 11); // the paper's 10×10 → 11×11 example
    }

    #[test]
    fn image_plan_partitions_the_plane() {
        let mut rng = Rng::seed_from(0);
        let plan = ImagePlan::random(4, 4, 0.5, &mut rng);
        assert_eq!(plan.aug_hw(), (6, 6));
        assert_eq!(plan.keep().len(), 16);
        assert_eq!(plan.inserted(), 20);
        let mut all: Vec<usize> = plan.keep().to_vec();
        all.extend(plan.noise_positions());
        all.sort_unstable();
        assert_eq!(all, (0..36).collect::<Vec<_>>());
    }

    #[test]
    fn mnist_search_space_matches_table2() {
        let mut rng = Rng::seed_from(1);
        let plan = ImagePlan::random(28, 28, 0.25, &mut rng);
        // Paper: 1.00e346.
        assert!((plan.search_space().log10() - 346.0).abs() < 1.0);
    }

    #[test]
    fn text_plan_matches_table2_search_spaces() {
        let mut rng = Rng::seed_from(2);
        // Paper WikiText2 row: batch length 20; 25 % → 53130 = C(25, 5).
        let plan = TextPlan::random(20, 0.25, &mut rng);
        assert_eq!(plan.aug_len(), 25);
        let ss = plan.search_space();
        assert!((ss.log10() - 53130f64.log10()).abs() < 1e-6);
        // 100 % → C(40, 20) ≈ 1.37e11.
        let plan = TextPlan::random(20, 1.0, &mut rng);
        assert!((plan.search_space().log10() - 1.37e11f64.log10()).abs() < 0.05);
    }

    #[test]
    fn zero_amount_is_identity_layout() {
        let mut rng = Rng::seed_from(3);
        let plan = ImagePlan::random(5, 5, 0.0, &mut rng);
        assert_eq!(plan.aug_hw(), (5, 5));
        assert_eq!(plan.keep(), (0..25).collect::<Vec<_>>());
        assert_eq!(plan.inserted(), 0);
    }

    #[test]
    fn from_keep_validates() {
        let plan = ImagePlan::from_keep(1, 2, 1, 3, vec![0, 2]);
        assert_eq!(plan.noise_positions(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_keep_rejects_unsorted() {
        TextPlan::from_keep(2, 4, vec![2, 1]);
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = ImagePlan::random(8, 8, 0.75, &mut Rng::seed_from(9));
        let b = ImagePlan::random(8, 8, 0.75, &mut Rng::seed_from(9));
        assert_eq!(a, b);
    }
}
