//! The NN Model Augmenter (paper §4.2, Figure 4).
//!
//! Given a user model (a [`GraphModel`]) and the dataset's augmentation plan,
//! this module produces an *augmented* model:
//!
//! * the original first layer is replaced by a masked variant that reads
//!   exactly the original values out of the augmented input (Eq. 1 / Eq. 2);
//! * `n_s` synthetic sub-networks are appended, each starting with its own
//!   masked layer over a random index subset (subsets may overlap and may
//!   even coincide with the original one, as the paper allows);
//! * some outputs of original layers are tapped into synthetic branches
//!   (through [`Detach`] so original gradients stay exactly those of
//!   Algorithm 1), and synthetic branches tap each other;
//! * every sub-network ends in its own output head; head order is shuffled.
//!
//! The emitted graph uses neutral node names (`n0, n1, …`) in a *randomized*
//! topological order, so neither names nor node positions reveal which
//! sub-network is the original. The mapping back is the client-side
//! [`AugmentationSecrets`].

use crate::plan::{ImagePlan, TextPlan};
use crate::{AmalgamError, NoiseKind};
use amalgam_nn::graph::{GraphModel, NodeId, Provenance};
use amalgam_nn::layer::Layer;
use amalgam_nn::layers::{
    Add, BatchNorm2d, Conv2d, Detach, Embedding, Flatten, Linear, MaskedConv2d, MaskedEmbedding,
    MeanPoolSeq, Relu,
};
use amalgam_nn::LayerSpec;
use amalgam_tensor::Rng;
use std::collections::HashMap;

/// Configuration of the model augmenter.
#[derive(Debug, Clone)]
pub struct AugmentConfig {
    /// Augmentation amount α: synthetic parameters total ≈ α × original.
    pub amount: f32,
    /// Number of synthetic sub-networks (`None` = random in 2..=4, as the
    /// paper's default "random number of sub-networks").
    pub num_subnets: Option<usize>,
    /// Noise kind (recorded for reports; synthetic parameters use standard
    /// Kaiming initialisation so the augmented model trains stably).
    pub noise: NoiseKind,
    /// Seed for all randomized augmentation decisions.
    pub seed: u64,
    /// Route cross-sub-network taps through `Detach` (the default, required
    /// for exact training equivalence — see DESIGN.md D2). Disabling this is
    /// exposed only for the ablation bench, which demonstrates the gradient
    /// contamination that would otherwise occur.
    pub detach_taps: bool,
}

impl AugmentConfig {
    /// A config with the given augmentation amount and default options.
    pub fn new(amount: f32) -> Self {
        AugmentConfig {
            amount,
            num_subnets: None,
            noise: NoiseKind::UniformRandom,
            seed: 0,
            detach_taps: true,
        }
    }

    /// Fixes the number of synthetic sub-networks.
    pub fn with_subnets(mut self, n: usize) -> Self {
        self.num_subnets = Some(n);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables the stop-gradient on cross-sub-network taps (ablation only).
    pub fn without_detach(mut self) -> Self {
        self.detach_taps = false;
        self
    }
}

/// The NLP task shape (decides the synthetic heads' output geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NlpTask {
    /// Document classification: heads emit `[B, classes]`.
    Classification {
        /// Number of classes.
        classes: usize,
    },
    /// Language modelling: heads emit `[B, T, vocab]`.
    LanguageModel,
}

/// Client-side secrets produced by augmentation. **Never serialized to the
/// cloud.**
#[derive(Debug, Clone)]
pub struct AugmentationSecrets {
    /// Original node name → neutral name in the augmented graph.
    pub name_map: HashMap<String, String>,
    /// Index of the original sub-network's head among the augmented outputs.
    pub original_output: usize,
    /// Keep list per output head (needed to derive per-head LM targets).
    pub head_keeps: Vec<Vec<usize>>,
    /// Number of synthetic sub-networks.
    pub num_subnets: usize,
}

// ---------------------------------------------------------------------------
// Staged construction with randomized emission
// ---------------------------------------------------------------------------

struct StagedNode {
    layer: Box<dyn Layer>,
    inputs: Vec<usize>,
    subnet: usize,
    original_name: Option<String>,
}

struct Stage {
    nodes: Vec<StagedNode>,
    outputs: Vec<(usize, usize)>, // (staged id, subnet)
    input: usize,
}

impl Stage {
    fn add(
        &mut self,
        layer: Box<dyn Layer>,
        inputs: &[usize],
        subnet: usize,
        original: Option<&str>,
    ) -> usize {
        self.nodes.push(StagedNode {
            layer,
            inputs: inputs.to_vec(),
            subnet,
            original_name: original.map(str::to_owned),
        });
        self.nodes.len() - 1
    }

    /// Emits into a `GraphModel` in a random topological order with neutral
    /// names, returning the graph, the name map, and the shuffled head order.
    fn emit(self, rng: &mut Rng) -> (GraphModel, HashMap<String, String>, Vec<(usize, usize)>) {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            indegree[i] = node.inputs.len();
            for &d in &node.inputs {
                dependents[d].push(i);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while !ready.is_empty() {
            let pick = ready.swap_remove(rng.below(ready.len()));
            order.push(pick);
            for &d in &dependents[pick] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(d);
                }
            }
        }
        assert_eq!(order.len(), n, "staged graph has a cycle");

        let mut g = GraphModel::new();
        let mut id_of: Vec<Option<NodeId>> = vec![None; n];
        let mut name_map = HashMap::new();
        let mut nodes: Vec<Option<StagedNode>> = self.nodes.into_iter().map(Some).collect();
        for (seq, &staged) in order.iter().enumerate() {
            let node = nodes[staged].take().expect("each staged node emitted once");
            let name = format!("n{seq}");
            let gid = if staged == self.input {
                g.input(&name)
            } else {
                let inputs: Vec<NodeId> = node
                    .inputs
                    .iter()
                    .map(|&d| id_of[d].expect("topo order"))
                    .collect();
                g.add_boxed(&name, node.layer, &inputs)
            };
            g.set_subnet(gid, node.subnet);
            g.set_provenance(
                gid,
                if node.original_name.is_some() || node.subnet == 0 {
                    Provenance::Original
                } else {
                    Provenance::Synthetic
                },
            );
            if let Some(orig) = node.original_name {
                name_map.insert(orig, name.clone());
            }
            id_of[staged] = Some(gid);
        }
        // Shuffle head order so position reveals nothing.
        let mut heads: Vec<(usize, usize)> = self
            .outputs
            .iter()
            .map(|&(sid, subnet)| (id_of[sid].expect("emitted").index(), subnet))
            .collect();
        rng.shuffle(&mut heads);
        let ids: Vec<NodeId> = heads
            .iter()
            .map(|&(idx, _)| g.node_ids().nth(idx).expect("valid node index"))
            .collect();
        g.set_outputs(&ids);
        (g, name_map, heads)
    }
}

/// Adds the tap barrier node: `Detach` normally, `Identity` in the ablation.
fn add_tap_barrier(stage: &mut Stage, source: usize, subnet: usize, detach: bool) -> usize {
    if detach {
        stage.add(Box::new(Detach::new()), &[source], subnet, None)
    } else {
        stage.add(
            Box::new(amalgam_nn::layers::Identity::new()),
            &[source],
            subnet,
            None,
        )
    }
}

fn concrete_conv(layer: &dyn Layer) -> Option<Conv2d> {
    match layer.spec() {
        LayerSpec::Conv2d {
            weight,
            bias,
            stride,
            padding,
        } => Some(Conv2d::from_params(weight, bias, stride, padding)),
        _ => None,
    }
}

fn concrete_embedding(layer: &dyn Layer) -> Option<Embedding> {
    match layer.spec() {
        LayerSpec::Embedding { weight } => Some(Embedding::from_params(weight)),
        _ => None,
    }
}

fn validate_single_io(original: &GraphModel) -> Result<(NodeId, NodeId), AmalgamError> {
    if original.input_ids().len() != 1 {
        return Err(AmalgamError::UnsupportedModel {
            reason: "model must have exactly one input".into(),
        });
    }
    if original.outputs().len() != 1 {
        return Err(AmalgamError::UnsupportedModel {
            reason: "model must have exactly one output".into(),
        });
    }
    Ok((original.input_ids()[0], original.outputs()[0]))
}

/// Stages every original node (except the input), wrapping direct consumers
/// of the input via `wrap_first`. Returns the staged-id map.
fn stage_original<F>(
    original: &GraphModel,
    stage: &mut Stage,
    input_id: NodeId,
    mut wrap_first: F,
) -> Result<HashMap<usize, usize>, AmalgamError>
where
    F: FnMut(&dyn Layer) -> Result<Box<dyn Layer>, AmalgamError>,
{
    let mut map: HashMap<usize, usize> = HashMap::new();
    map.insert(input_id.index(), stage.input);
    for id in original.node_ids() {
        if id == input_id {
            continue;
        }
        let node = original.node(id);
        let consumes_input = node.inputs().contains(&input_id);
        let layer: Box<dyn Layer> = if consumes_input {
            wrap_first(node.layer())?
        } else {
            node.layer().boxed_clone()
        };
        let inputs: Vec<usize> = node
            .inputs()
            .iter()
            .map(|nid| *map.get(&nid.index()).expect("topological original graph"))
            .collect();
        let sid = stage.add(layer, &inputs, 0, Some(node.name()));
        map.insert(id.index(), sid);
    }
    Ok(map)
}

/// Entry-conv channel count for synthetic CV sub-networks: small, so the
/// parameter budget lands in cheap-compute FC layers (the paper's measured
/// training-time overhead is strongly sublinear in α — e.g. Table 3's
/// ResNet-18 at 100 % costs 1.4× the baseline, not 2×).
const SYNTH_ENTRY_CHANNELS: usize = 6;

/// Augments a computer-vision model (paper §4.2, "CNN Augmentation").
///
/// The model's single input must feed one or more [`Conv2d`] layers; each is
/// replaced by a [`MaskedConv2d`] gathering the plan's kept pixels. Synthetic
/// sub-networks with ≈ `amount × original` total parameters are appended,
/// taps (through [`Detach`]) connect original activations into synthetic
/// branches, and all heads are shuffled.
///
/// # Errors
///
/// Returns [`AmalgamError::UnsupportedModel`] if the graph does not have
/// exactly one input/output or its first layer is not a convolution.
pub fn augment_cv(
    original: &GraphModel,
    plan: &ImagePlan,
    num_classes: usize,
    cfg: &AugmentConfig,
) -> Result<(GraphModel, AugmentationSecrets), AmalgamError> {
    let mut rng = Rng::seed_from(cfg.seed);
    let (input_id, output_id) = validate_single_io(original)?;
    let (h, w) = plan.orig_hw();

    let mut stage = Stage {
        nodes: Vec::new(),
        outputs: Vec::new(),
        input: 0,
    };
    stage.input = stage.add(Box::new(amalgam_nn::layers::Input::new()), &[], 0, None);

    // -- Original sub-network (subnet 0), first conv masked --------------
    let mut first_conv_channels = None;
    let mut first_conv_geom = (3usize, 1usize, 1usize);
    let mut in_channels = 1usize;
    let map = stage_original(original, &mut stage, input_id, |layer| {
        let conv = concrete_conv(layer).ok_or_else(|| AmalgamError::UnsupportedModel {
            reason: format!("first layer must be Conv2d, found {}", layer.kind()),
        })?;
        first_conv_channels = Some(conv.out_channels());
        first_conv_geom = conv.geometry();
        in_channels = conv.in_channels();
        Ok(Box::new(MaskedConv2d::new(
            plan.keep().to_vec(),
            h,
            w,
            conv,
        )))
    })?;
    let orig_head = map[&output_id.index()];
    stage.outputs.push((orig_head, 0));
    // The original first-conv output is the tap source for synthetic branches.
    let orig_first_conv_staged = original
        .node_ids()
        .find(|&id| id != input_id && original.node(id).inputs().contains(&input_id))
        .map(|id| map[&id.index()])
        .expect("validated above");

    // -- Synthetic sub-networks ------------------------------------------
    let num_subnets = cfg.num_subnets.unwrap_or_else(|| 2 + rng.below(3));
    let orig_params = original.param_count();
    let budget_per_subnet = (cfg.amount * orig_params as f32 / num_subnets.max(1) as f32).max(64.0);
    let (k, stride, padding) = first_conv_geom;
    let co = first_conv_channels.expect("validated above");
    let mut head_keeps = vec![plan.keep().to_vec()];
    let mut prev_synth_entry: Option<(usize, usize)> = None; // (staged id, channels)

    for s in 1..=num_subnets {
        // Synthetic keep list; occasionally reuse the original subset (the
        // paper: "even the original subset may go to multiple sub-networks").
        let keep_s = if rng.chance(1.0 / (num_subnets as f64 + 1.0)) {
            plan.keep().to_vec()
        } else {
            let (ah, aw) = plan.aug_hw();
            rng.sample_indices(ah * aw, h * w)
        };
        head_keeps.push(keep_s.clone());
        let c = SYNTH_ENTRY_CHANNELS;
        let mut srng = rng.fork();
        let entry_conv = Conv2d::new(in_channels, c, k, stride, padding, false, &mut srng);
        // Spatial dims of the entry conv's output.
        let (eh, ew) = (
            (h + 2 * padding - k) / stride + 1,
            (w + 2 * padding - k) / stride + 1,
        );
        let entry = stage.add(
            Box::new(MaskedConv2d::new(keep_s, h, w, entry_conv)),
            &[stage.input],
            s,
            None,
        );
        let mut hnode = stage.add(Box::new(BatchNorm2d::new(c)), &[entry], s, None);
        hnode = stage.add(Box::new(Relu::new()), &[hnode], s, None);

        // Tap from the original first conv (p = 0.5), through Detach.
        let mut tap_params = 0usize;
        if rng.chance(0.5) {
            let d = add_tap_barrier(&mut stage, orig_first_conv_staged, s, cfg.detach_taps);
            let adapt = stage.add(
                Box::new(Conv2d::new(co, c, 1, 1, 0, false, &mut srng)),
                &[d],
                s,
                None,
            );
            hnode = stage.add(Box::new(Add::new()), &[hnode, adapt], s, None);
            tap_params += co * c;
        }
        // Tap from the previous synthetic sub-network (p = 0.5), detached.
        if let Some((prev, prev_c)) = prev_synth_entry {
            if rng.chance(0.5) {
                let d = add_tap_barrier(&mut stage, prev, s, cfg.detach_taps);
                let adapt = stage.add(
                    Box::new(Conv2d::new(prev_c, c, 1, 1, 0, false, &mut srng)),
                    &[d],
                    s,
                    None,
                );
                hnode = stage.add(Box::new(Add::new()), &[hnode, adapt], s, None);
                tap_params += prev_c * c;
            }
        }
        prev_synth_entry = Some((entry, c));

        // Downsample once (cheap), then spend the rest of the budget on an
        // FC stack — matching the compute profile the paper measures.
        let (mut fh, mut fw) = (eh, ew);
        if fh >= 4 && fw >= 4 {
            hnode = stage.add(
                Box::new(amalgam_nn::layers::AvgPool2d::new(2, 2)),
                &[hnode],
                s,
                None,
            );
            fh /= 2;
            fw /= 2;
        }
        hnode = stage.add(Box::new(Flatten::new()), &[hnode], s, None);
        let flat_dim = c * fh * fw;
        let entry_params = (k * k * in_channels * c + 2 * c + tap_params) as f32;
        let d = (((budget_per_subnet - entry_params) / (flat_dim + num_classes + 2) as f32).round()
            as usize)
            .max(4);
        hnode = stage.add(
            Box::new(Linear::new(flat_dim, d, true, &mut srng)),
            &[hnode],
            s,
            None,
        );
        hnode = stage.add(Box::new(Relu::new()), &[hnode], s, None);
        let head = stage.add(
            Box::new(Linear::new(d, num_classes, true, &mut srng)),
            &[hnode],
            s,
            None,
        );
        stage.outputs.push((head, s));
    }

    finish(stage, head_keeps, num_subnets, &mut rng)
}

/// Augments an NLP model (paper §4.2, "NLP Model Augmentation").
///
/// The model's single input must feed one or more [`Embedding`] layers; each
/// is replaced by a [`MaskedEmbedding`] gathering the plan's kept positions.
///
/// # Errors
///
/// Returns [`AmalgamError::UnsupportedModel`] if the graph does not have
/// exactly one input/output or its first layer is not an embedding.
pub fn augment_nlp(
    original: &GraphModel,
    plan: &TextPlan,
    task: NlpTask,
    cfg: &AugmentConfig,
) -> Result<(GraphModel, AugmentationSecrets), AmalgamError> {
    let mut rng = Rng::seed_from(cfg.seed);
    let (input_id, output_id) = validate_single_io(original)?;

    let mut stage = Stage {
        nodes: Vec::new(),
        outputs: Vec::new(),
        input: 0,
    };
    stage.input = stage.add(Box::new(amalgam_nn::layers::Input::new()), &[], 0, None);

    let mut vocab = 0usize;
    let mut orig_dim = 0usize;
    let map = stage_original(original, &mut stage, input_id, |layer| {
        let emb = concrete_embedding(layer).ok_or_else(|| AmalgamError::UnsupportedModel {
            reason: format!("first layer must be Embedding, found {}", layer.kind()),
        })?;
        vocab = emb.vocab();
        orig_dim = emb.dim();
        Ok(Box::new(MaskedEmbedding::new(plan.keep().to_vec(), emb)))
    })?;
    let orig_head = map[&output_id.index()];
    stage.outputs.push((orig_head, 0));
    let orig_embed_staged = original
        .node_ids()
        .find(|&id| id != input_id && original.node(id).inputs().contains(&input_id))
        .map(|id| map[&id.index()])
        .expect("validated above");

    let num_subnets = cfg.num_subnets.unwrap_or_else(|| 2 + rng.below(3));
    let orig_params = original.param_count();
    let budget_per_subnet = (cfg.amount * orig_params as f32 / num_subnets.max(1) as f32).max(64.0);
    let mut head_keeps = vec![plan.keep().to_vec()];
    let t = plan.orig_len();

    for s in 1..=num_subnets {
        let keep_s = if rng.chance(1.0 / (num_subnets as f64 + 1.0)) {
            plan.keep().to_vec()
        } else {
            rng.sample_indices(plan.aug_len(), t)
        };
        head_keeps.push(keep_s.clone());
        let denom = match task {
            NlpTask::Classification { classes } => (vocab + classes + orig_dim) as f32,
            NlpTask::LanguageModel => (2 * vocab + orig_dim) as f32,
        };
        let d = ((budget_per_subnet / denom).round() as usize).max(2);

        let mut srng = rng.fork();
        let entry = stage.add(
            Box::new(MaskedEmbedding::new(
                keep_s,
                Embedding::new(vocab, d, &mut srng),
            )),
            &[stage.input],
            s,
            None,
        );
        let mut hnode = entry;
        // Tap from the original embedding output (p = 0.5), detached.
        if rng.chance(0.5) {
            let det = add_tap_barrier(&mut stage, orig_embed_staged, s, cfg.detach_taps);
            let adapt = stage.add(
                Box::new(Linear::new(orig_dim, d, false, &mut srng)),
                &[det],
                s,
                None,
            );
            hnode = stage.add(Box::new(Add::new()), &[hnode, adapt], s, None);
        }
        let head = match task {
            NlpTask::Classification { classes } => {
                let pooled = stage.add(Box::new(MeanPoolSeq::new()), &[hnode], s, None);
                stage.add(
                    Box::new(Linear::new(d, classes, true, &mut srng)),
                    &[pooled],
                    s,
                    None,
                )
            }
            NlpTask::LanguageModel => stage.add(
                Box::new(Linear::new(d, vocab, true, &mut srng)),
                &[hnode],
                s,
                None,
            ),
        };
        stage.outputs.push((head, s));
    }

    finish(stage, head_keeps, num_subnets, &mut rng)
}

fn finish(
    stage: Stage,
    head_keeps_by_subnet: Vec<Vec<usize>>,
    num_subnets: usize,
    rng: &mut Rng,
) -> Result<(GraphModel, AugmentationSecrets), AmalgamError> {
    let (graph, name_map, heads) = stage.emit(rng);
    let original_output = heads
        .iter()
        .position(|&(_, subnet)| subnet == 0)
        .expect("original head present");
    let head_keeps: Vec<Vec<usize>> = heads
        .iter()
        .map(|&(_, subnet)| head_keeps_by_subnet[subnet].clone())
        .collect();
    Ok((
        graph,
        AugmentationSecrets {
            name_map,
            original_output,
            head_keeps,
            num_subnets,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalgam_models::{lenet5, text_classifier};
    use amalgam_nn::Mode;
    use amalgam_tensor::Tensor;

    fn lenet_plan(rng: &mut Rng) -> (GraphModel, ImagePlan) {
        let model = lenet5(1, 8, 10, rng);
        let plan = ImagePlan::random(8, 8, 0.5, rng);
        (model, plan)
    }

    #[test]
    fn cv_augmentation_produces_multiple_heads() {
        let mut rng = Rng::seed_from(0);
        let (model, plan) = lenet_plan(&mut rng);
        let cfg = AugmentConfig::new(0.5).with_subnets(3).with_seed(7);
        let (mut aug, secrets) = augment_cv(&model, &plan, 10, &cfg).unwrap();
        assert_eq!(aug.outputs().len(), 4);
        assert_eq!(secrets.head_keeps.len(), 4);
        assert!(secrets.original_output < 4);
        // Forward on an augmented-size input: every head gives [N, 10].
        let x = Tensor::zeros(&[2, 1, 12, 12]);
        let outs = aug.forward(&[&x], Mode::Eval);
        for o in &outs {
            assert_eq!(o.dims(), &[2, 10]);
        }
    }

    #[test]
    fn parameter_growth_tracks_amount() {
        let mut rng = Rng::seed_from(1);
        let (model, plan) = lenet_plan(&mut rng);
        let orig = model.param_count() as f32;
        for amount in [0.25f32, 0.5, 1.0] {
            let cfg = AugmentConfig::new(amount).with_subnets(2).with_seed(3);
            let (aug, _) = augment_cv(&model, &plan, 10, &cfg).unwrap();
            let growth = aug.param_count() as f32 / orig;
            assert!(
                (growth - (1.0 + amount)).abs() < 0.30,
                "amount {amount}: growth {growth}"
            );
        }
    }

    #[test]
    fn original_head_equals_original_model_outputs() {
        // The augmented model's original head on the augmented input must be
        // bit-identical to the original model on the original input.
        let mut rng = Rng::seed_from(2);
        let (model, plan) = lenet_plan(&mut rng);
        let cfg = AugmentConfig::new(0.75).with_subnets(2).with_seed(11);
        let (mut aug, secrets) = augment_cv(&model, &plan, 10, &cfg).unwrap();

        let orig_img = Tensor::randn(&[3, 1, 8, 8], &mut rng);
        // Build the augmented image: scatter original pixels, noise elsewhere.
        let (ah, aw) = plan.aug_hw();
        let mut aug_img = Tensor::randn(&[3, 1, ah, aw], &mut rng);
        for ni in 0..3 {
            for (k, &pos) in plan.keep().iter().enumerate() {
                aug_img.data_mut()[ni * ah * aw + pos] = orig_img.data()[ni * 64 + k];
            }
        }
        let mut plain = model.clone();
        let want = plain.forward_one(&orig_img, Mode::Eval);
        let outs = aug.forward(&[&aug_img], Mode::Eval);
        assert!(
            outs[secrets.original_output].approx_eq(&want, 0.0),
            "original head diverged"
        );
    }

    #[test]
    fn neutral_names_and_unknown_positions() {
        let mut rng = Rng::seed_from(3);
        let (model, plan) = lenet_plan(&mut rng);
        let cfg = AugmentConfig::new(0.5).with_subnets(2).with_seed(5);
        let (aug, secrets) = augment_cv(&model, &plan, 10, &cfg).unwrap();
        // All node names are neutral…
        for id in aug.node_ids() {
            assert!(
                aug.node(id).name().starts_with('n'),
                "leaky name {}",
                aug.node(id).name()
            );
        }
        // …and every original node is reachable through the secrets.
        for id in model.node_ids().skip(1) {
            let name = model.node(id).name();
            let mapped = secrets.name_map.get(name).expect("mapped");
            assert!(aug.node_by_name(mapped).is_some());
        }
    }

    #[test]
    fn nlp_augmentation_classification() {
        let mut rng = Rng::seed_from(4);
        let model = text_classifier(50, 8, 4, &mut rng);
        let plan = TextPlan::random(6, 0.5, &mut rng);
        let cfg = AugmentConfig::new(0.5).with_subnets(2).with_seed(9);
        let (mut aug, secrets) =
            augment_nlp(&model, &plan, NlpTask::Classification { classes: 4 }, &cfg).unwrap();
        assert_eq!(aug.outputs().len(), 3);
        let ids = Tensor::from_fn(&[2, 9], |i| (i % 50) as f32);
        let outs = aug.forward(&[&ids], Mode::Eval);
        for o in &outs {
            assert_eq!(o.dims(), &[2, 4]);
        }
        assert_eq!(secrets.head_keeps[secrets.original_output], plan.keep());
    }

    #[test]
    fn rejects_non_conv_first_layer() {
        let mut rng = Rng::seed_from(5);
        let model = text_classifier(50, 8, 4, &mut rng);
        let plan = ImagePlan::random(8, 8, 0.5, &mut rng);
        let err = augment_cv(&model, &plan, 4, &AugmentConfig::new(0.5)).unwrap_err();
        assert!(matches!(err, AmalgamError::UnsupportedModel { .. }));
    }

    #[test]
    fn augmentation_is_deterministic_per_seed() {
        let mut rng = Rng::seed_from(6);
        let (model, plan) = lenet_plan(&mut rng);
        let cfg = AugmentConfig::new(0.5).with_subnets(2).with_seed(42);
        let (a, sa) = augment_cv(&model, &plan, 10, &cfg).unwrap();
        let (b, sb) = augment_cv(&model, &plan, 10, &cfg).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(sa.original_output, sb.original_output);
        assert_eq!(a.state_dict().len(), b.state_dict().len());
        for ((na, ta), (nb, tb)) in a.state_dict().iter().zip(b.state_dict().iter()) {
            assert_eq!(na, nb);
            assert_eq!(ta.data(), tb.data());
        }
    }
}
