//! Property tests of the self-healing client's retry machinery: the
//! decorrelated-jitter backoff and the `retry_after` scheduling queue.
//!
//! The contracts under test are exactly the ones a thundering herd or a
//! hot-loop would violate:
//!
//! * every backoff delay stays inside `[base, cap]` — never zero, never
//!   runaway — for *any* base/cap/seed and any number of steps;
//! * each delay respects the decorrelated-jitter envelope
//!   `delay ≤ min(cap, 3 · prev)`, so one unlucky draw can't jump the
//!   backoff straight to the cap from a cold start;
//! * the jitter is deterministic per seed (reproducible incidents) and
//!   seeds actually decorrelate (different seeds, different schedules);
//! * a retry scheduled for `retry_after` never fires early, no matter how
//!   aggressively the supervisor polls the queue.

use amalgam_cloud::transport::{DecorrelatedJitter, RetryQueue};
use proptest::collection;
use proptest::prelude::*;
use std::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// All delays stay within `[base, cap]` and are never zero — the
    /// "never hot-loop, never stall forever" invariant.
    #[test]
    fn delays_stay_within_base_and_cap(
        base_ms in 1u64..2_000,
        extra_ms in 0u64..10_000,
        seed in any::<u64>(),
        steps in 1usize..64,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = base + Duration::from_millis(extra_ms);
        let mut jitter = DecorrelatedJitter::new(base, cap, seed);
        for step in 0..steps {
            let d = jitter.next_delay();
            prop_assert!(d >= base, "step {step}: delay {d:?} under base {base:?}");
            prop_assert!(d <= cap, "step {step}: delay {d:?} over cap {cap:?}");
            prop_assert!(!d.is_zero(), "step {step}: zero delay");
        }
    }

    /// Degenerate configurations (zero base, cap under base) are clamped
    /// into a sane band instead of producing zero or inverted delays.
    #[test]
    fn degenerate_configs_are_clamped_sane(
        base_ms in 0u64..5,
        cap_ms in 0u64..5,
        seed in any::<u64>(),
    ) {
        let mut jitter = DecorrelatedJitter::new(
            Duration::from_millis(base_ms),
            Duration::from_millis(cap_ms),
            seed,
        );
        for _ in 0..16 {
            let d = jitter.next_delay();
            prop_assert!(!d.is_zero(), "clamping must forbid zero delays");
            prop_assert!(d <= Duration::from_millis(5));
        }
    }

    /// Each delay obeys the decorrelated-jitter growth envelope:
    /// `delay ≤ min(cap, 3 · previous delay)`.
    #[test]
    fn growth_is_bounded_by_three_times_previous(
        base_ms in 1u64..500,
        extra_ms in 0u64..5_000,
        seed in any::<u64>(),
        steps in 2usize..48,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = base + Duration::from_millis(extra_ms);
        let mut jitter = DecorrelatedJitter::new(base, cap, seed);
        let mut prev = base;
        for step in 0..steps {
            let d = jitter.next_delay();
            let envelope = cap.min(prev * 3);
            prop_assert!(
                d <= envelope,
                "step {step}: delay {d:?} outside envelope {envelope:?} (prev {prev:?})"
            );
            prev = d;
        }
    }

    /// Same seed, same schedule; and a reset replays it from the start —
    /// incidents are reproducible offline.
    #[test]
    fn schedules_are_deterministic_per_seed(
        base_ms in 1u64..200,
        extra_ms in 1u64..2_000,
        seed in any::<u64>(),
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = base + Duration::from_millis(extra_ms);
        let mut a = DecorrelatedJitter::new(base, cap, seed);
        let mut b = DecorrelatedJitter::new(base, cap, seed);
        let first: Vec<Duration> = (0..12).map(|_| a.next_delay()).collect();
        let second: Vec<Duration> = (0..12).map(|_| b.next_delay()).collect();
        prop_assert_eq!(&first, &second);
    }

    /// A `retry_after`-scheduled retry never pops before its due time, for
    /// any schedule and any polling pattern.
    #[test]
    fn scheduled_retries_never_fire_early(
        delays_ms in collection::vec(0u64..500, 1..32),
        polls_ms in collection::vec(0u64..600, 1..64),
    ) {
        let t0 = Instant::now();
        let mut queue = RetryQueue::new();
        let mut due_by_id = std::collections::HashMap::new();
        for (id, delay) in delays_ms.iter().enumerate() {
            let at = t0 + Duration::from_millis(*delay);
            queue.schedule(id as u64, at);
            due_by_id.insert(id as u64, at);
        }
        let mut polls: Vec<Duration> = polls_ms.iter().map(|ms| Duration::from_millis(*ms)).collect();
        polls.sort_unstable();
        let mut fired = 0usize;
        for poll in polls {
            let now = t0 + poll;
            for id in queue.pop_due(now) {
                let due = due_by_id[&id];
                prop_assert!(
                    due <= now,
                    "retry {id} fired {:?} early",
                    due.saturating_duration_since(now)
                );
                fired += 1;
            }
        }
        // Everything due by the last poll must also have fired — the queue
        // may not sit on ripe retries.
        let last = t0 + polls_ms.iter().map(|ms| Duration::from_millis(*ms)).max().unwrap();
        let ripe = due_by_id.values().filter(|at| **at <= last).count();
        prop_assert_eq!(fired, ripe, "queue sat on ripe retries");
    }

    /// `next_due` is exactly the earliest outstanding deadline — what the
    /// supervisor sleeps on between link events.
    #[test]
    fn next_due_tracks_the_earliest_deadline(
        delays_ms in collection::vec(1u64..500, 1..32),
    ) {
        let t0 = Instant::now();
        let mut queue = RetryQueue::new();
        for (id, delay) in delays_ms.iter().enumerate() {
            queue.schedule(id as u64, t0 + Duration::from_millis(*delay));
        }
        let earliest = t0 + Duration::from_millis(*delays_ms.iter().min().unwrap());
        prop_assert_eq!(queue.next_due(), Some(earliest));
        prop_assert_eq!(queue.len(), delays_ms.len());
    }
}

/// Different seeds must actually decorrelate: across a handful of seeds at
/// least two distinct schedules appear (a constant-schedule "jitter" would
/// synchronize a reconnect stampede).
#[test]
fn distinct_seeds_decorrelate() {
    let base = Duration::from_millis(50);
    let cap = Duration::from_secs(5);
    let schedules: std::collections::HashSet<Vec<Duration>> = (0..8u64)
        .map(|seed| {
            let mut j = DecorrelatedJitter::new(base, cap, seed);
            (0..8).map(|_| j.next_delay()).collect()
        })
        .collect();
    assert!(
        schedules.len() >= 2,
        "8 seeds produced {} unique schedules",
        schedules.len()
    );
}
