//! Property tests of the durable-checkpoint subsystem: encode∘decode is
//! the identity for arbitrary snapshot shapes, corrupt or truncated
//! checkpoints are rejected loudly and fall back to an epoch-0 recompute
//! without poisoning the store, and a run resumed at *any* epoch boundary
//! is bitwise identical to the uninterrupted run.

use amalgam_cloud::{
    Checkpoint, CheckpointStore, CloudJob, CloudService, ContentAddress, MemoryCheckpointStore,
    TaskPayload,
};
use amalgam_core::TrainConfig;
use amalgam_models::lenet5;
use amalgam_nn::metrics::History;
use amalgam_tensor::{Rng, Tensor};
use bytes::Bytes;
use proptest::collection;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// A small multi-epoch classification job, fully determined by `seed`.
fn training_job(seed: u64, epochs: usize) -> CloudJob {
    let mut rng = Rng::seed_from(1000 + seed);
    let model = lenet5(1, 8, 2, &mut rng);
    let inputs = Tensor::randn(&[8, 1, 8, 8], &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
    CloudJob {
        model: model.to_bytes(),
        task: TaskPayload::Classification {
            inputs,
            labels,
            val_inputs: None,
            val_labels: vec![],
        },
        train: TrainConfig::new(epochs, 4, 0.05).with_seed(seed),
    }
}

/// A [`CheckpointStore`] that keeps every blob ever stored, in write
/// order — the raw material for replaying a resume from each epoch
/// boundary of one uninterrupted run.
#[derive(Debug, Default)]
struct RecordingStore {
    inner: MemoryCheckpointStore,
    log: Mutex<Vec<Bytes>>,
}

impl CheckpointStore for RecordingStore {
    fn load(&self, addr: ContentAddress) -> Option<Bytes> {
        self.inner.load(addr)
    }

    fn store(&self, addr: ContentAddress, bytes: Bytes) {
        self.log.lock().unwrap().push(bytes.clone());
        self.inner.store(addr, bytes);
    }

    fn remove(&self, addr: ContentAddress) {
        self.inner.remove(addr);
    }
}

/// An arbitrary-but-valid snapshot built from sampled raw material.
fn build_checkpoint(
    epoch: u64,
    model: Vec<u8>,
    shapes: Vec<Vec<usize>>,
    floats: Vec<f32>,
    seed: u64,
) -> Checkpoint {
    let mut rng = Rng::seed_from(seed);
    Checkpoint {
        epoch,
        model: Bytes::from(model),
        velocity: shapes.iter().map(|s| Tensor::randn(s, &mut rng)).collect(),
        history: History {
            train_loss: floats.clone(),
            train_acc: floats.clone(),
            val_loss: floats.clone(),
            val_acc: floats.clone(),
            epoch_secs: floats,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity for any snapshot shape: epoch,
    /// model blob, any number of velocity tensors of any rank, history of
    /// any length — and the encoding is canonical (re-encoding the decoded
    /// value reproduces the exact bytes, checksum included).
    #[test]
    fn checkpoints_roundtrip_bitwise(
        epoch in 1u64..1_000_000,
        model in collection::vec(any::<u8>(), 0..256),
        shapes in collection::vec(collection::vec(1usize..5, 1..4), 0..4),
        floats in collection::vec(-1e6f32..1e6, 0..6),
        seed in any::<u64>(),
    ) {
        let cp = build_checkpoint(epoch, model, shapes, floats, seed);
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(bytes.clone()).expect("own encoding must decode");
        prop_assert_eq!(&back, &cp);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Arbitrary byte soup never panics the decoder; anything that decodes
    /// must re-encode to exactly the input (the checksum makes accidental
    /// acceptance essentially impossible, but if it happens it must be
    /// canonical).
    #[test]
    fn adversarial_checkpoint_bytes_never_panic(
        body in collection::vec(any::<u8>(), 0..512),
    ) {
        let bytes = Bytes::from(body);
        if let Ok(cp) = Checkpoint::from_bytes(bytes.clone()) {
            prop_assert_eq!(cp.to_bytes(), bytes);
        }
    }

    /// Any single bit flip or truncation of a valid snapshot is caught by
    /// the trailing checksum: decode errors, never a silently-wrong
    /// checkpoint.
    #[test]
    fn damaged_checkpoints_never_decode(
        epoch in 1u64..1_000,
        model in collection::vec(any::<u8>(), 1..64),
        floats in collection::vec(-1e3f32..1e3, 0..4),
        seed in any::<u64>(),
        damage in any::<usize>(),
        flip_bit in 0usize..8,
        truncate in any::<bool>(),
    ) {
        let cp = build_checkpoint(epoch, model, vec![vec![2, 2]], floats, seed);
        let bytes = cp.to_bytes().to_vec();
        let damaged = if truncate {
            bytes[..damage % bytes.len()].to_vec()
        } else {
            let mut b = bytes.clone();
            let idx = damage % b.len();
            b[idx] ^= 1 << flip_bit;
            b
        };
        prop_assert!(
            Checkpoint::from_bytes(Bytes::from(damaged)).is_err(),
            "a damaged snapshot must be rejected loudly"
        );
    }
}

proptest! {
    // Each case trains real (tiny) jobs through a full service, so keep
    // the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A poisoned store entry — garbage, a damaged snapshot, or a valid
    /// snapshot with an impossible epoch — is rejected loudly, the run
    /// falls back to an epoch-0 recompute that is bitwise identical to a
    /// clean run, and the store ends scrubbed (never poisoned for the next
    /// submission).
    #[test]
    fn corrupt_checkpoints_fall_back_to_epoch_zero(
        seed in 0u64..10_000,
        kind in 0usize..3,
        damage in any::<usize>(),
    ) {
        const EPOCHS: usize = 2;
        let job = training_job(seed, EPOCHS);
        let addr = ContentAddress::of(&job.to_bytes());

        let clean = CloudService::builder().workers(1).build();
        let truth = clean.client().train(&job).expect("clean run");

        // Plant a poisoned entry under the job's own address.
        let poison = match kind {
            0 => Bytes::from(vec![0xAB; 16 + damage % 64]),
            1 => {
                let mut b = build_checkpoint(1, job.model.to_vec(), vec![], vec![0.5], seed)
                    .to_bytes()
                    .to_vec();
                let idx = damage % b.len();
                b[idx] ^= 0x40;
                Bytes::from(b)
            }
            // Validly encoded but claiming more epochs than the job has:
            // impossible, must not be trusted.
            _ => build_checkpoint(
                EPOCHS as u64 + 1 + (damage % 7) as u64,
                job.model.to_vec(),
                vec![],
                vec![0.5],
                seed,
            )
            .to_bytes(),
        };
        let store = Arc::new(MemoryCheckpointStore::new());
        store.store(addr, poison);

        let service = CloudService::builder()
            .workers(1)
            .checkpoint_store(Arc::clone(&store) as Arc<dyn CheckpointStore>)
            .checkpoint_every(1)
            .build();
        let result = service.client().train(&job).expect("fallback run");

        prop_assert_eq!(&result.trained_model, &truth.trained_model);
        prop_assert_eq!(&result.history.train_loss, &truth.history.train_loss);
        let stats = service.stats();
        prop_assert_eq!(stats.checkpoints_rejected, 1);
        prop_assert_eq!(stats.jobs_resumed, 0);
        prop_assert!(store.is_empty(), "the poisoned entry must be scrubbed");
    }

    /// Resume-at-epoch-k equivalence, for every k: capture the snapshot
    /// written at each epoch boundary of an uninterrupted run, then start
    /// a fresh service from each one. Every resumed run must train only
    /// the remaining epochs and produce a bitwise-identical model and
    /// metric history.
    #[test]
    fn resume_at_every_epoch_is_bitwise_identical(seed in 0u64..10_000) {
        const EPOCHS: usize = 5;
        let job = training_job(seed, EPOCHS);
        let addr = ContentAddress::of(&job.to_bytes());

        let recorder = Arc::new(RecordingStore::default());
        let service = CloudService::builder()
            .workers(1)
            .checkpoint_store(Arc::clone(&recorder) as Arc<dyn CheckpointStore>)
            .checkpoint_every(1)
            .build();
        let truth = service.client().train(&job).expect("uninterrupted run");
        let snapshots = recorder.log.lock().unwrap().clone();
        prop_assert_eq!(snapshots.len(), EPOCHS - 1, "one snapshot per non-final epoch");
        prop_assert!(recorder.inner.is_empty(), "success retires the checkpoint");

        for (i, snapshot) in snapshots.iter().enumerate() {
            let k = i as u64 + 1; // the snapshot taken after epoch k
            let store = Arc::new(MemoryCheckpointStore::new());
            store.store(addr, snapshot.clone());
            let resumed_service = CloudService::builder()
                .workers(1)
                .checkpoint_store(Arc::clone(&store) as Arc<dyn CheckpointStore>)
                .checkpoint_every(1)
                .build();
            let resumed = resumed_service.client().train(&job).expect("resumed run");

            prop_assert_eq!(&resumed.trained_model, &truth.trained_model,
                "resume at epoch {} diverged", k);
            prop_assert_eq!(&resumed.history.train_loss, &truth.history.train_loss);
            prop_assert_eq!(&resumed.history.train_acc, &truth.history.train_acc);
            prop_assert_eq!(resumed.history.epochs(), EPOCHS);

            let stats = resumed_service.stats();
            prop_assert_eq!(stats.jobs_resumed, 1);
            prop_assert_eq!(stats.epochs_trained, EPOCHS as u64 - k,
                "resume at epoch {} must recompute exactly the tail", k);
            prop_assert_eq!(stats.checkpoints_rejected, 0);
            prop_assert!(store.is_empty());
        }
    }
}
