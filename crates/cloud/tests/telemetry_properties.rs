//! Property tests of the telemetry plane's latency histogram against a
//! sorted-vector oracle: quantiles stay within the advertised 1/16 error
//! bound, merging shard snapshots equals snapshotting the concatenated
//! stream, and the sparse wire encoding round-trips exactly.

use amalgam_cloud::{Histogram, HistogramSnapshot};
use amalgam_tensor::wire::{Reader, Writer};
use proptest::prelude::*;

/// The exact order statistic the histogram's `quantile` approximates: the
/// rank-`ceil(q·n)` value (1-based) of the sorted samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Samples bounded so `sum` cannot overflow a `u64` even at the largest
/// proptest case size, while still exercising many octaves of buckets.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 40), 1..256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every reported quantile is ≥ the exact order statistic and within
    /// the log-linear scheme's 1/16 relative error of it; count/sum/max
    /// are exact.
    #[test]
    fn quantiles_match_sorted_vec_oracle_within_bound(
        values in samples(),
        q in 0.0f64..1.0,
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.max, *sorted.last().unwrap());

        let exact = exact_quantile(&sorted, q);
        let got = snap.quantile(q);
        prop_assert!(got >= exact, "quantile {q}: reported {got} < exact {exact}");
        prop_assert!(
            got <= exact + exact / 16 + 1,
            "quantile {q}: reported {got} over the 1/16 bound of exact {exact}"
        );
    }

    /// Recording a stream into one histogram equals sharding it across
    /// several and merging their snapshots — bucket-for-bucket.
    #[test]
    fn merge_of_shards_equals_whole(
        values in samples(),
        shards in 1usize..8,
    ) {
        let whole = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        for p in &parts {
            merged.merge(&p.snapshot());
        }
        prop_assert_eq!(merged, whole.snapshot());
    }

    /// The sparse wire encoding is lossless.
    #[test]
    fn wire_encoding_round_trips(values in samples()) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut w = Writer::new();
        snap.encode_into(&mut w);
        let mut r = Reader::new(w.finish());
        let back = HistogramSnapshot::decode_from(&mut r).expect("decode");
        prop_assert_eq!(back, snap);
    }

    /// Quantiles are monotone in `q` — p99 can never undercut p50.
    #[test]
    fn quantiles_are_monotone(values in samples()) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        for pair in qs.windows(2) {
            prop_assert!(snap.quantile(pair[0]) <= snap.quantile(pair[1]));
        }
    }
}
