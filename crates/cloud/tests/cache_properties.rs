//! Property tests of the content-addressed dedup subsystem: the address
//! is a function of the job's *canonical* wire encoding (stable across
//! encode∘decode∘encode, sensitive to every byte), the result cache never
//! exceeds its byte bound or serves past its TTL under any schedule, and
//! coalesced duplicate submissions all observe bitwise-identical results.

use amalgam_cloud::cache::{entry_cost, ResultCache};
use amalgam_cloud::middleware::{CloudLayer, JobContext, JobService};
use amalgam_cloud::{CloudError, CloudJob, CloudService, ContentAddress, JobResult, TaskPayload};
use amalgam_core::TrainConfig;
use amalgam_models::lenet5;
use amalgam_nn::metrics::History;
use amalgam_tensor::{Rng, Tensor};
use bytes::Bytes;
use proptest::collection;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A structurally varied classification job: every field that reaches the
/// wire encoding is driven by the proptest inputs.
fn structured_job(
    seed: u64,
    samples: usize,
    epochs: usize,
    batch: usize,
    lr_milli: u32,
    with_val: bool,
) -> CloudJob {
    let mut rng = Rng::seed_from(seed);
    let model = lenet5(1, 8, 2, &mut rng);
    let inputs = Tensor::randn(&[samples, 1, 8, 8], &mut rng);
    let labels: Vec<usize> = (0..samples).map(|i| i % 2).collect();
    let (val_inputs, val_labels) = if with_val {
        (Some(Tensor::randn(&[2, 1, 8, 8], &mut rng)), vec![0, 1])
    } else {
        (None, vec![])
    };
    CloudJob {
        model: model.to_bytes(),
        task: TaskPayload::Classification {
            inputs,
            labels,
            val_inputs,
            val_labels,
        },
        train: TrainConfig::new(epochs, batch, lr_milli as f32 / 1000.0).with_seed(seed),
    }
}

/// A synthetic result whose only variable weight is the model blob;
/// `marker` fills the blob so a cache hit can prove it returned the right
/// entry, not just *an* entry.
fn marked_result(marker: u8, model_bytes: usize) -> JobResult {
    JobResult {
        job_id: 0,
        trained_model: Bytes::from(vec![marker; model_bytes]),
        history: History::new(),
        bytes_received: 0,
        bytes_sent: model_bytes,
        train_seconds: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The content address survives a decode/re-encode round trip: the
    /// wire encoding is canonical, so a job uploaded remotely (decoded and
    /// re-encoded along the way) hashes identically to a local submission.
    #[test]
    fn address_is_stable_across_reencode(
        seed in 0u64..10_000,
        samples in 1usize..6,
        epochs in 1usize..4,
        batch in 1usize..4,
        lr_milli in 1u32..200,
        with_val in any::<bool>(),
    ) {
        let job = structured_job(seed, samples, epochs, batch, lr_milli, with_val);
        let bytes = job.to_bytes();
        let addr = ContentAddress::of(&bytes);
        let reencoded = CloudJob::from_bytes(bytes).expect("own encoding decodes").to_bytes();
        prop_assert_eq!(
            ContentAddress::of(&reencoded),
            addr,
            "encode∘decode∘encode changed the content address"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Flipping any single byte of the payload changes the address — the
    /// injectivity the whole dedup design leans on (two jobs that differ
    /// anywhere must never share a cache slot).
    #[test]
    fn single_byte_flip_changes_address(
        payload in collection::vec(any::<u8>(), 1..512),
        at in any::<u64>(),
        flip in 1u8..255,
    ) {
        let mut flipped = payload.clone();
        let i = (at % payload.len() as u64) as usize;
        flipped[i] ^= flip;
        // (i, flip) pinpoint the offending mutation in the failure output.
        let _ = (i, flip);
        prop_assert_ne!(ContentAddress::of(&payload), ContentAddress::of(&flipped));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any interleaving of inserts, lookups and clock jumps the
    /// cache (a) never retains more than `capacity` bytes as measured by
    /// [`entry_cost`], (b) never serves an entry at or past its TTL, and
    /// (c) every hit returns the bytes most recently inserted under that
    /// address.
    #[test]
    fn byte_bound_and_ttl_hold_under_any_schedule(
        capacity in 100usize..8_000,
        ttl_ms in 1u64..3_000,
        ops in collection::vec(any::<u64>(), 1..80),
    ) {
        let ttl = Duration::from_millis(ttl_ms);
        let mut cache = ResultCache::new(capacity, ttl);
        let mut now = Instant::now();
        // Shadow model: per address, the last inserted (time, size).
        let mut shadow: std::collections::HashMap<u8, (Instant, usize)> =
            std::collections::HashMap::new();
        for word in ops {
            // Each sampled word packs one op:
            // (address tag, model bytes, clock advance ms, insert/lookup).
            let tag = (word % 6) as u8;
            let size = ((word >> 3) % 2_048) as usize;
            let gap_ms = (word >> 14) % 1_500;
            let is_insert = word >> 63 == 1;
            now += Duration::from_millis(gap_ms);
            let addr = ContentAddress::of(&[tag]);
            if is_insert {
                cache.insert_at(addr, marked_result(tag, size), now);
                shadow.insert(tag, (now, size));
            } else if let Some(hit) = cache.get_at(&addr, now) {
                let (inserted_at, size) = shadow[&tag];
                prop_assert!(
                    now.duration_since(inserted_at) < ttl,
                    "served an entry {:?} after insertion (ttl {:?})",
                    now.duration_since(inserted_at), ttl
                );
                prop_assert_eq!(hit.trained_model.len(), size, "hit returned a stale size");
                prop_assert!(
                    hit.trained_model.iter().all(|&b| b == tag),
                    "hit returned another address's bytes"
                );
                prop_assert_eq!(entry_cost(&hit), entry_cost(&marked_result(tag, size)));
            }
            prop_assert!(
                cache.total_bytes() <= capacity,
                "cache retains {} bytes over the {} bound", cache.total_bytes(), capacity
            );
        }
    }
}

/// Holds every job in-stack until the test releases the mutex — lets the
/// proptest park duplicates behind a primary execution deterministically.
struct GateLayer(Arc<Mutex<()>>);

struct GateSvc {
    gate: Arc<Mutex<()>>,
    inner: Box<dyn JobService>,
}

impl CloudLayer for GateLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(GateSvc {
            gate: Arc::clone(&self.0),
            inner,
        })
    }

    fn name(&self) -> &'static str {
        "gate"
    }
}

impl JobService for GateSvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        drop(self.gate.lock().unwrap());
        self.inner.call(ctx, payload)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// However many duplicates coalesce onto one in-flight execution, all
    /// of them (and a later cache hit) observe results bitwise identical
    /// to the primary's — each stamped with its own submission's job id.
    #[test]
    fn coalesced_waiters_observe_bitwise_identical_results(
        seed in 0u64..1_000,
        waiters in 1usize..5,
    ) {
        let gate = Arc::new(Mutex::new(()));
        let service = CloudService::builder()
            .workers(1)
            .result_cache(1 << 20, Duration::from_secs(600))
            .layer(GateLayer(Arc::clone(&gate)))
            .build();
        let client = service.client();
        let job = structured_job(seed, 4, 1, 4, 50, false);

        // Hold the gate: the primary claims the pending slot at submit,
        // so every duplicate submitted afterwards must coalesce.
        let held = gate.lock().unwrap();
        let primary = client.submit(&job).expect("primary submit");
        let dups: Vec<_> = (0..waiters)
            .map(|_| client.submit(&job).expect("duplicate submit"))
            .collect();
        drop(held);

        let canonical = |mut r: JobResult| {
            r.job_id = 0;
            r.to_bytes()
        };
        let primary_id = primary.id();
        let primary_result = primary.wait().expect("primary trains");
        prop_assert_eq!(primary_result.job_id, primary_id);
        let expected = canonical(primary_result);
        for dup in dups {
            let id = dup.id();
            let result = dup.wait().expect("waiter answered");
            prop_assert_eq!(result.job_id, id, "waiter got someone else's job id");
            prop_assert_eq!(
                canonical(result),
                expected.clone(),
                "a coalesced waiter diverged from the primary execution"
            );
        }
        // A late duplicate is a cache hit — same bytes again, no training.
        let hit = client.submit(&job).expect("hit submit").wait().expect("hit answered");
        prop_assert_eq!(canonical(hit), expected);

        let stats = service.stats();
        prop_assert_eq!(stats.jobs_completed, 1, "duplicates must not execute");
        prop_assert_eq!(stats.coalesced, waiters as u64);
        prop_assert_eq!(stats.cache_hits, 1);
        service.shutdown();
    }
}
