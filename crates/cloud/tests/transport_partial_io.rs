//! Property tests of the *incremental* frame decoder under partial I/O:
//! however a byte stream is sliced — one byte at a time, split at every
//! offset, dribbled through a slow-loris reader — [`FrameDecoder`] must
//! produce exactly the frames (and exactly the error) that decoding the
//! whole buffer at once would.

use amalgam_cloud::transport::{Frame, FrameDecoder};
use amalgam_cloud::{CloudError, JobResult, ProgressUpdate};
use amalgam_nn::metrics::History;
use bytes::Bytes;
use proptest::prelude::*;
use std::io::{ErrorKind, Read};

const CAP: usize = 1 << 20;

/// Builds one of every client- and server-side frame kind from sampled raw
/// material (mirrors the codec property tests).
fn build_frame(kind: usize, a: u64, payload: Vec<u8>, text: String, ok: bool) -> Frame {
    match kind % 8 {
        0 => Frame::Hello {
            min_version: a as u32,
            max_version: (a >> 32) as u32,
            api_key: if ok { Some(text) } else { None },
        },
        1 => Frame::Submit {
            request_id: a,
            payload: Bytes::from(payload),
            trace: None,
        },
        2 => Frame::Ping { nonce: a },
        3 => Frame::Reply {
            request_id: a,
            trace: None,
            result: if ok {
                Ok(JobResult {
                    job_id: a,
                    trained_model: Bytes::from(payload),
                    history: History::new(),
                    bytes_received: a as usize,
                    bytes_sent: (a >> 8) as usize,
                    train_seconds: (a % 1000) as f64 * 0.001,
                })
            } else {
                Err(CloudError::Transport(text))
            },
        },
        4 => Frame::Pong { nonce: a },
        5 => Frame::Goodbye,
        6 => Frame::Cancel { request_id: a },
        _ => Frame::Progress {
            request_id: a,
            update: ProgressUpdate {
                epoch: a % 100,
                total_epochs: 100,
                train_loss: (a % 7) as f32 * 0.1,
                train_acc: if ok { 0.9 } else { 0.1 },
            },
        },
    }
}

/// Length-prefixes `frames` into one contiguous wire image.
fn wire_image(frames: &[Frame]) -> Vec<u8> {
    let mut out = Vec::new();
    for f in frames {
        let body = f.encode();
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
    }
    out
}

/// The oracle: whole-buffer decoding. Returns complete frames in order and
/// the error that stops the stream, if any (trailing partial bytes are
/// fine — a live connection always has an incomplete tail).
fn reference_decode(buf: &[u8], cap: usize) -> (Vec<Frame>, Option<String>) {
    let mut frames = Vec::new();
    let mut rest = buf;
    loop {
        if rest.len() < 4 {
            return (frames, None);
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > cap {
            let e = CloudError::Transport(format!("frame length {len} exceeds cap {cap}"));
            return (frames, Some(e.to_string()));
        }
        if rest.len() < 4 + len {
            return (frames, None);
        }
        match Frame::decode(Bytes::from(rest[4..4 + len].to_vec())) {
            Ok(f) => frames.push(f),
            Err(e) => return (frames, Some(e.to_string())),
        }
        rest = &rest[4 + len..];
    }
}

/// Feeds `buf` to a fresh decoder in chunks shaped by `chunks` (cycled; a
/// zero-length chunk is skipped), draining complete frames after every
/// chunk. Also checks the wire-length bookkeeping along the way.
fn incremental_decode(buf: &[u8], chunks: &[usize], cap: usize) -> (Vec<Frame>, Option<String>) {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut consumed_wire = 0usize;
    let mut offset = 0usize;
    let mut chunk_idx = 0usize;
    while offset < buf.len() {
        let step = if chunks.is_empty() {
            1
        } else {
            chunks[chunk_idx % chunks.len()].max(1)
        };
        chunk_idx += 1;
        let end = (offset + step).min(buf.len());
        dec.extend(&buf[offset..end]);
        offset = end;
        loop {
            match dec.next_frame(cap) {
                Ok(Some((frame, wire_len))) => {
                    consumed_wire += wire_len;
                    frames.push(frame);
                }
                Ok(None) => break,
                Err(e) => {
                    assert!(consumed_wire <= buf.len());
                    return (frames, Some(e.to_string()));
                }
            }
        }
    }
    // Every input byte is either part of a completed frame (counted by the
    // reported wire lengths) or still buffered as an incomplete tail.
    assert_eq!(consumed_wire + dec.buffered(), buf.len());
    (frames, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Well-formed frame streams survive arbitrary chunking, including the
    /// degenerate one-byte-at-a-time schedule.
    #[test]
    fn chunked_decode_matches_whole_buffer_decode(
        specs in proptest::collection::vec(
            (0usize..8, any::<u64>(),
             proptest::collection::vec(any::<u8>(), 0..96),
             proptest::collection::vec(any::<u8>(), 0..12), any::<bool>()),
            0..6),
        chunks in proptest::collection::vec(1usize..64, 0..8),
        trailing in proptest::collection::vec(any::<u8>(), 0..3),
    ) {
        let frames: Vec<Frame> = specs
            .into_iter()
            .map(|(k, a, p, t, ok)| {
                let text = String::from_utf8_lossy(&t).into_owned();
                build_frame(k, a, p, text, ok)
            })
            .collect();
        let mut wire = wire_image(&frames);
        // A live socket usually ends mid-frame; the tail must just buffer.
        wire.extend_from_slice(&trailing);

        let (reference, ref_err) = reference_decode(&wire, CAP);
        prop_assert_eq!(ref_err, None);
        prop_assert_eq!(&reference, &frames);

        let (bytewise, err) = incremental_decode(&wire, &[1], CAP);
        prop_assert_eq!(err, None);
        prop_assert_eq!(&bytewise, &frames);

        let (chunked, err) = incremental_decode(&wire, &chunks, CAP);
        prop_assert_eq!(err, None);
        prop_assert_eq!(&chunked, &frames);
    }

    /// Adversarial byte soup: the incremental decoder never panics and
    /// agrees with the whole-buffer oracle on both the decoded prefix and
    /// the terminating error.
    #[test]
    fn adversarial_streams_match_whole_buffer_semantics(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        chunks in proptest::collection::vec(1usize..32, 0..6),
        cap in prop_oneof![Just(64usize), Just(256usize), Just(CAP)],
    ) {
        let (reference, ref_err) = reference_decode(&bytes, cap);
        let (got, err) = incremental_decode(&bytes, &chunks, cap);
        // The incremental decoder must agree on everything up to (and
        // including) the stream-ending error.
        prop_assert_eq!(got, reference);
        prop_assert_eq!(err, ref_err);
    }

    /// The lifecycle stream a v2 client actually sees — per-epoch Progress
    /// frames interleaved across several in-flight requests, each request
    /// terminated by its Reply — survives arbitrary chunking with every
    /// frame intact and in order.
    #[test]
    fn interleaved_progress_and_reply_streams_chunk_cleanly(
        request_ids in proptest::collection::vec(any::<u64>(), 1..4),
        epochs in 1u64..6,
        chunks in proptest::collection::vec(1usize..16, 0..6),
    ) {
        // Round-robin progress across all requests, then the replies.
        let mut frames = Vec::new();
        for epoch in 1..=epochs {
            for &id in &request_ids {
                frames.push(Frame::Progress {
                    request_id: id,
                    update: ProgressUpdate {
                        epoch,
                        total_epochs: epochs,
                        train_loss: 1.0 / epoch as f32,
                        train_acc: epoch as f32 / epochs as f32,
                    },
                });
            }
        }
        for &id in &request_ids {
            frames.push(Frame::Reply {
                request_id: id,
                trace: None,
                result: Err(CloudError::Cancelled),
            });
        }
        let wire = wire_image(&frames);

        let (bytewise, err) = incremental_decode(&wire, &[1], CAP);
        prop_assert_eq!(err, None);
        prop_assert_eq!(&bytewise, &frames);

        let (chunked, err) = incremental_decode(&wire, &chunks, CAP);
        prop_assert_eq!(err, None);
        prop_assert_eq!(&chunked, &frames);
    }

    /// A valid stream split into exactly two reads at *every* offset.
    #[test]
    fn split_at_every_offset_is_seamless(
        a in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let frames = vec![
            Frame::Ping { nonce: a },
            Frame::Submit { request_id: a, payload: Bytes::from(payload), trace: None },
            Frame::Goodbye,
        ];
        let wire = wire_image(&frames);
        for split in 0..=wire.len() {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for part in [&wire[..split], &wire[split..]] {
                dec.extend(part);
                while let Some((frame, _)) = dec.next_frame(CAP).unwrap() {
                    got.push(frame);
                }
            }
            prop_assert_eq!(&got, &frames, "split at {}", split);
            prop_assert_eq!(dec.buffered(), 0);
        }
    }
}

/// A reader that dribbles one byte per call and interleaves `WouldBlock`
/// and `Interrupted` — the slow-loris peer as seen by a nonblocking socket.
struct SlowLoris<'a> {
    data: &'a [u8],
    pos: usize,
    step: u32,
}

impl Read for SlowLoris<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.step += 1;
        match self.step % 4 {
            1 => Err(std::io::Error::from(ErrorKind::WouldBlock)),
            2 => Err(std::io::Error::from(ErrorKind::Interrupted)),
            _ => {
                if self.pos == self.data.len() {
                    return Ok(0); // EOF
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
    }
}

#[test]
fn slow_loris_reader_yields_every_frame_and_then_eof() {
    let frames = vec![
        Frame::Hello {
            min_version: 1,
            max_version: 1,
            api_key: Some("key".into()),
        },
        Frame::Submit {
            request_id: 42,
            payload: Bytes::from(vec![7u8; 300]),
            trace: None,
        },
        Frame::Goodbye,
    ];
    let wire = wire_image(&frames);
    let mut reader = SlowLoris {
        data: &wire,
        pos: 0,
        step: 0,
    };
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    loop {
        match dec.read_from(&mut reader) {
            Ok(0) => break,
            Ok(_) => {
                while let Some((frame, _)) = dec.next_frame(CAP).unwrap() {
                    got.push(frame);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
            Err(e) => panic!("unexpected I/O error: {e}"),
        }
    }
    assert_eq!(got, frames);
    assert_eq!(dec.buffered(), 0);
}
