//! Property tests of the transport frame codec: arbitrary frames round-trip
//! bit-exactly through encode/decode, and adversarial byte soup never
//! panics the decoder.

use amalgam_cloud::transport::Frame;
use amalgam_cloud::{CloudError, JobResult, TraceId};
use amalgam_nn::metrics::History;
use bytes::Bytes;
use proptest::prelude::*;

/// Builds one of every frame kind from sampled raw material.
#[allow(clippy::too_many_arguments)]
fn build_frame(
    kind: usize,
    a: u64,
    b: u64,
    payload: Vec<u8>,
    text: String,
    floats: Vec<f32>,
    err_kind: usize,
    ok: bool,
) -> Frame {
    match kind % 6 {
        0 => Frame::Hello {
            min_version: a as u32,
            max_version: b as u32,
            api_key: if ok { Some(text) } else { None },
        },
        1 => Frame::Welcome {
            version: a as u32,
            max_in_flight: b as u32,
            max_frame_len: a ^ b,
        },
        2 => Frame::Submit {
            request_id: a,
            payload: Bytes::from(payload),
            trace: (!ok).then(|| TraceId::from_words(a, b)),
        },
        3 => Frame::Reply {
            request_id: a,
            trace: ok.then(|| TraceId::from_words(b, a)),
            result: if ok {
                Ok(JobResult {
                    job_id: b,
                    trained_model: Bytes::from(payload),
                    history: History {
                        train_loss: floats.clone(),
                        train_acc: floats.clone(),
                        val_loss: floats.clone(),
                        val_acc: floats.clone(),
                        epoch_secs: floats,
                    },
                    bytes_received: a as usize,
                    bytes_sent: b as usize,
                    train_seconds: (a % 1000) as f64 * 0.001,
                })
            } else {
                Err(match err_kind % 8 {
                    0 => CloudError::ServiceUnavailable,
                    1 => CloudError::Decode(text),
                    2 => CloudError::BadJob(text),
                    3 => CloudError::Overloaded {
                        queue_depth: a as usize,
                        max_queue_depth: b as usize,
                    },
                    4 => CloudError::Panicked(text),
                    5 => CloudError::Transport(text),
                    6 => CloudError::Unauthorized(text),
                    _ => CloudError::Handshake(text),
                })
            },
        },
        4 => Frame::Ping { nonce: a },
        _ => {
            if ok {
                Frame::Pong { nonce: b }
            } else {
                Frame::Goodbye
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// encode → decode is the identity for every frame kind.
    #[test]
    fn framed_messages_roundtrip(
        kind in 0usize..6,
        a in any::<u64>(),
        b in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        text_bytes in proptest::collection::vec(any::<u8>(), 0..64),
        floats in proptest::collection::vec(-1e6f32..1e6, 0..8),
        err_kind in 0usize..8,
        ok in any::<bool>(),
    ) {
        let text = String::from_utf8_lossy(&text_bytes).into_owned();
        let frame = build_frame(kind, a, b, payload, text, floats, err_kind, ok);
        let body = frame.encode();
        let back = Frame::decode(body).expect("own encoding must decode");
        prop_assert_eq!(back, frame);
    }

    /// Arbitrary bodies never panic the decoder: they either decode to a
    /// frame (which must then re-encode to the same bytes) or error.
    #[test]
    fn adversarial_bodies_never_panic(
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let bytes = Bytes::from(body);
        if let Ok(frame) = Frame::decode(bytes.clone()) {
            // Canonical codec: a body that decodes is exactly the encoding
            // of what it decodes to.
            prop_assert_eq!(frame.encode(), bytes);
        }
    }

    /// Flipping any single byte of a valid frame body is handled cleanly:
    /// decode yields a (possibly different) frame or an error, no panic.
    #[test]
    fn bit_flipped_frames_never_panic(
        a in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        flip_byte in any::<usize>(),
        flip_bit in 0usize..8,
    ) {
        let frame = Frame::Submit { request_id: a, payload: Bytes::from(payload), trace: None };
        let mut body = frame.encode().to_vec();
        let idx = flip_byte % body.len();
        body[idx] ^= 1 << flip_bit;
        let _ = Frame::decode(Bytes::from(body));
    }
}
