//! Property tests of the transport frame codec: arbitrary frames round-trip
//! bit-exactly through encode/decode, and adversarial byte soup never
//! panics the decoder.

use amalgam_cloud::transport::{Frame, FrameDecoder, FrameOrigin};
use amalgam_cloud::{CloudError, JobResult, ProgressUpdate, TraceId};
use amalgam_nn::metrics::History;
use bytes::Bytes;
use proptest::prelude::*;

/// Builds one of every frame kind from sampled raw material.
#[allow(clippy::too_many_arguments)]
fn build_frame(
    kind: usize,
    a: u64,
    b: u64,
    payload: Vec<u8>,
    text: String,
    floats: Vec<f32>,
    err_kind: usize,
    ok: bool,
) -> Frame {
    match kind % 9 {
        0 => Frame::Hello {
            min_version: a as u32,
            max_version: b as u32,
            api_key: if ok { Some(text) } else { None },
        },
        1 => Frame::Welcome {
            version: a as u32,
            max_in_flight: b as u32,
            max_frame_len: a ^ b,
        },
        2 => Frame::Submit {
            request_id: a,
            payload: Bytes::from(payload),
            trace: (!ok).then(|| TraceId::from_words(a, b)),
        },
        3 => Frame::Reply {
            request_id: a,
            trace: ok.then(|| TraceId::from_words(b, a)),
            result: if ok {
                Ok(JobResult {
                    job_id: b,
                    trained_model: Bytes::from(payload),
                    history: History {
                        train_loss: floats.clone(),
                        train_acc: floats.clone(),
                        val_loss: floats.clone(),
                        val_acc: floats.clone(),
                        epoch_secs: floats,
                    },
                    bytes_received: a as usize,
                    bytes_sent: b as usize,
                    train_seconds: (a % 1000) as f64 * 0.001,
                })
            } else {
                Err(match err_kind % 8 {
                    0 => CloudError::ServiceUnavailable,
                    1 => CloudError::Decode(text),
                    2 => CloudError::BadJob(text),
                    3 => CloudError::Overloaded {
                        queue_depth: a as usize,
                        max_queue_depth: b as usize,
                    },
                    4 => CloudError::Panicked(text),
                    5 => CloudError::Transport(text),
                    6 => CloudError::Unauthorized(text),
                    _ => CloudError::Handshake(text),
                })
            },
        },
        4 => Frame::Ping { nonce: a },
        5 => {
            if ok {
                Frame::Pong { nonce: b }
            } else {
                Frame::Goodbye
            }
        }
        6 => Frame::Cancel { request_id: a },
        7 => Frame::Progress {
            request_id: a,
            update: ProgressUpdate {
                epoch: a % 1_000,
                total_epochs: b % 1_000,
                train_loss: *floats.first().unwrap_or(&0.25),
                train_acc: *floats.last().unwrap_or(&0.75),
            },
        },
        _ => {
            if ok {
                Frame::GetStats { request_id: a }
            } else {
                Frame::Stats {
                    request_id: a,
                    body: if err_kind.is_multiple_of(2) {
                        Ok(Bytes::from(payload))
                    } else {
                        Err(CloudError::Unauthorized(text))
                    },
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// encode → decode is the identity for every frame kind.
    #[test]
    fn framed_messages_roundtrip(
        kind in 0usize..9,
        a in any::<u64>(),
        b in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        text_bytes in proptest::collection::vec(any::<u8>(), 0..64),
        floats in proptest::collection::vec(-1e6f32..1e6, 0..8),
        err_kind in 0usize..8,
        ok in any::<bool>(),
    ) {
        let text = String::from_utf8_lossy(&text_bytes).into_owned();
        let frame = build_frame(kind, a, b, payload, text, floats, err_kind, ok);
        let body = frame.encode();
        let back = Frame::decode(body).expect("own encoding must decode");
        prop_assert_eq!(back, frame);
    }

    /// Arbitrary bodies never panic the decoder: they either decode to a
    /// frame (which must then re-encode to the same bytes) or error.
    #[test]
    fn adversarial_bodies_never_panic(
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let bytes = Bytes::from(body);
        if let Ok(frame) = Frame::decode(bytes.clone()) {
            // Canonical codec: a body that decodes is exactly the encoding
            // of what it decodes to.
            prop_assert_eq!(frame.encode(), bytes);
        }
    }

    /// Flipping any single byte of a valid frame body is handled cleanly:
    /// decode yields a (possibly different) frame or an error, no panic.
    #[test]
    fn bit_flipped_frames_never_panic(
        a in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        flip_byte in any::<usize>(),
        flip_bit in 0usize..8,
    ) {
        let frame = Frame::Submit { request_id: a, payload: Bytes::from(payload), trace: None };
        let mut body = frame.encode().to_vec();
        let idx = flip_byte % body.len();
        body[idx] ^= 1 << flip_bit;
        let _ = Frame::decode(Bytes::from(body));
    }

    /// Unknown extension bodies in the peer's reserved tag range are
    /// skipped whole by a decoder that has never heard of them — with
    /// arbitrary junk bodies, at arbitrary stream positions — and every
    /// surrounding known frame still arrives in order. This is the
    /// property that lets v2 grow Cancel/Progress without desyncing v1.
    #[test]
    fn unknown_extension_bodies_skip_cleanly_for_either_origin(
        from_server in any::<bool>(),
        nonces in proptest::collection::vec(any::<u64>(), 1..5),
        ext_bodies in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64)), 1..4),
        positions in proptest::collection::vec(any::<usize>(), 1..4),
    ) {
        let origin = if from_server { FrameOrigin::Server } else { FrameOrigin::Client };
        let known: Vec<Frame> = nonces.iter().map(|&n| Frame::Ping { nonce: n }).collect();

        // Interleave unknown-tag extension frames at sampled positions.
        let mut wire = Vec::new();
        let mut push = |body: &[u8]| {
            wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
            wire.extend_from_slice(body);
        };
        let mut ext_iter = ext_bodies.iter().zip(&positions);
        for (i, frame) in known.iter().enumerate() {
            if let Some(((raw_tag, junk), pos)) = ext_iter.next() {
                // Map the sampled byte into the *unknown* part of this
                // origin's skip range (known tags 6/134 excluded).
                let tag = match origin {
                    FrameOrigin::Client => 7 + (raw_tag % 121),     // 7..=127
                    FrameOrigin::Server => 135 + (raw_tag % 121),   // 135..=255
                };
                let mut body = vec![tag];
                body.extend_from_slice(junk);
                if pos % known.len() <= i {
                    push(&body);
                }
            }
            push(&frame.encode());
        }

        let mut dec = FrameDecoder::for_peer(origin);
        dec.extend(&wire);
        let mut got = Vec::new();
        while let Some((frame, _)) = dec.next_frame(1 << 20).expect("skip must not error") {
            got.push(frame);
        }
        prop_assert_eq!(got, known);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Damage to an advisory Progress frame is *contained*: however one
    /// bit flips, the surrounding frames decode exactly as before — the
    /// flipped frame either decodes (canonically), skips as an unknown
    /// extension, or errors, but it never desyncs its neighbours.
    #[test]
    fn bit_flipped_progress_frames_are_contained(
        request_id in any::<u64>(),
        epoch in 1u64..1_000,
        loss in -1e3f32..1e3,
        flip_byte in any::<usize>(),
        flip_bit in 0usize..8,
    ) {
        let reply = Frame::Reply {
            request_id,
            trace: None,
            result: Err(CloudError::ServiceUnavailable),
        };
        let progress = Frame::Progress {
            request_id,
            update: ProgressUpdate {
                epoch,
                total_epochs: 1_000,
                train_loss: loss,
                train_acc: 0.5,
            },
        };
        let ping = Frame::Ping { nonce: epoch };

        let mut progress_body = progress.encode().to_vec();
        let idx = flip_byte % progress_body.len();
        progress_body[idx] ^= 1 << flip_bit;

        let mut wire = Vec::new();
        for body in [reply.encode().to_vec(), progress_body, ping.encode().to_vec()] {
            wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
            wire.extend_from_slice(&body);
        }

        let mut dec = FrameDecoder::for_peer(FrameOrigin::Server);
        dec.extend(&wire);
        let mut got = Vec::new();
        let mut failed = false;
        loop {
            match dec.next_frame(1 << 20) {
                Ok(Some((frame, _))) => got.push(frame),
                Ok(None) => break,
                Err(_) => { failed = true; break; }
            }
        }
        // The reply before the damage always lands.
        prop_assert_eq!(got.first(), Some(&reply));
        if failed {
            // Session-fatal damage: detected before the ping, nothing
            // mis-decoded after it.
            prop_assert!(got.len() <= 2);
        } else {
            // Contained damage: the ping still arrives as the last frame,
            // whether the flipped frame decoded to something or skipped.
            prop_assert_eq!(got.last(), Some(&ping));
            prop_assert!(got.len() == 2 || got.len() == 3);
            prop_assert_eq!(dec.buffered(), 0);
        }
    }
}
