//! Property tests of the per-session token bucket: over any submit
//! pattern the bucket never admits more than `rate · elapsed + burst`
//! jobs, and every rejection's advertised retry-after is honest — waiting
//! exactly that long is guaranteed a token.

use amalgam_cloud::TokenBucket;
use proptest::collection;
use proptest::prelude::*;
use std::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Admissions over any window never exceed the sustained rate budget
    /// plus the burst capacity — the defining property of the policy.
    #[test]
    fn never_admits_above_rate_plus_burst(
        rate_tenths in 5u64..500,                       // 0.5 .. 50 jobs/s
        burst in 1u64..10,
        gaps_ms in collection::vec(0u64..400, 1..80),
    ) {
        let rate = rate_tenths as f64 / 10.0;
        let mut bucket = TokenBucket::new(rate, burst as f64);
        let t0 = Instant::now();
        let mut t = t0;
        let mut admitted = 0u64;
        for gap in &gaps_ms {
            t += Duration::from_millis(*gap);
            if bucket.try_acquire_at(t).is_ok() {
                admitted += 1;
            }
        }
        let budget = burst as f64 + rate * (t - t0).as_secs_f64();
        prop_assert!(
            admitted as f64 <= budget + 1e-6,
            "admitted {} jobs against a budget of {:.3} (rate {}, burst {})",
            admitted, budget, rate, burst
        );
    }

    /// Every rejection is (a) positive — there really is no token — and
    /// (b) sufficient: a retry exactly `retry_after` later, with no other
    /// submits on the session, is admitted.
    #[test]
    fn retry_after_is_honest(
        rate_tenths in 5u64..500,
        burst in 1u64..6,
        gaps_ms in collection::vec(0u64..200, 1..60),
    ) {
        let rate = rate_tenths as f64 / 10.0;
        let mut bucket = TokenBucket::new(rate, burst as f64);
        let t0 = Instant::now();
        let mut t = t0;
        let mut rejections = 0u32;
        for gap in &gaps_ms {
            t += Duration::from_millis(*gap);
            if let Err(retry_after) = bucket.try_acquire_at(t) {
                rejections += 1;
                prop_assert!(
                    retry_after > Duration::ZERO,
                    "rejected with a zero retry-after while holding no token"
                );
                let mut patient = bucket.clone();
                prop_assert!(
                    patient.try_acquire_at(t + retry_after).is_ok(),
                    "no token after waiting the advertised {:?} (rate {}, burst {})",
                    retry_after, rate, burst
                );
            }
        }
        // With sub-second gaps and rates this low the sampled schedules
        // must actually exercise the rejection path, not vacuously pass.
        if rate_tenths < 20 && gaps_ms.len() > 20 {
            prop_assert!(rejections > 0, "schedule never tripped the limiter");
        }
    }

    /// A silent session banks at most `burst` tokens, no matter how long
    /// it idles.
    #[test]
    fn idle_refill_caps_at_burst(
        rate_tenths in 5u64..500,
        burst in 1u64..10,
        idle_secs in 1u64..3600,
    ) {
        let mut bucket = TokenBucket::new(rate_tenths as f64 / 10.0, burst as f64);
        let wake = Instant::now() + Duration::from_secs(idle_secs);
        let mut admitted = 0u64;
        // Back-to-back submits at the same instant get no refill help.
        while bucket.try_acquire_at(wake).is_ok() {
            admitted += 1;
            prop_assert!(admitted <= burst, "idle banked more than burst");
        }
        prop_assert_eq!(admitted, burst);
    }
}
