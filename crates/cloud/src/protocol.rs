//! The wire protocol: jobs, results and errors, fully serialized.

use crate::CloudError;
use amalgam_core::TrainConfig;
use amalgam_nn::metrics::History;
use amalgam_tensor::wire::{Reader, Writer};
use amalgam_tensor::Tensor;
use bytes::Bytes;

/// The training payload of a job.
#[derive(Debug, Clone)]
pub enum TaskPayload {
    /// Image or text classification: every head is scored against `labels`.
    Classification {
        /// Input tensor (`[N, C, H, W]` images or `[N, T]` token ids).
        inputs: Tensor,
        /// One label per row of `inputs`.
        labels: Vec<usize>,
        /// Optional held-out inputs for per-epoch validation.
        val_inputs: Option<Tensor>,
        /// Labels for the held-out inputs.
        val_labels: Vec<usize>,
    },
    /// Language modelling on token windows.
    LanguageModel {
        /// Training windows, each `[B, T']`.
        windows: Vec<Tensor>,
        /// Validation windows.
        val_windows: Vec<Tensor>,
        /// Kept positions per output head (also visible inside the masked
        /// embedding specs; shipped explicitly for convenience).
        head_keeps: Vec<Vec<usize>>,
    },
}

/// One cloud training job: a serialized model plus its payload.
#[derive(Debug, Clone)]
pub struct CloudJob {
    /// The augmented model, as produced by `GraphModel::to_bytes`.
    pub model: Bytes,
    /// The training data.
    pub task: TaskPayload,
    /// Hyper-parameters.
    pub train: TrainConfig,
}

impl CloudJob {
    /// Serializes the whole job into one buffer (what "upload" means here).
    pub fn to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&self.model);
        w.put_u64(self.train.epochs as u64);
        w.put_u64(self.train.batch_size as u64);
        w.put_f32(self.train.lr);
        w.put_f32(self.train.momentum);
        w.put_u64(self.train.seed);
        match &self.task {
            TaskPayload::Classification {
                inputs,
                labels,
                val_inputs,
                val_labels,
            } => {
                w.put_u8(0);
                w.put_tensor(inputs);
                w.put_usize_list(labels);
                match val_inputs {
                    Some(v) => {
                        w.put_u8(1);
                        w.put_tensor(v);
                        w.put_usize_list(val_labels);
                    }
                    None => w.put_u8(0),
                }
            }
            TaskPayload::LanguageModel {
                windows,
                val_windows,
                head_keeps,
            } => {
                w.put_u8(1);
                w.put_u32(windows.len() as u32);
                for t in windows {
                    w.put_tensor(t);
                }
                w.put_u32(val_windows.len() as u32);
                for t in val_windows {
                    w.put_tensor(t);
                }
                w.put_u32(head_keeps.len() as u32);
                for k in head_keeps {
                    w.put_usize_list(k);
                }
            }
        }
        w.finish()
    }

    /// Decodes a job uploaded with [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Decode`] on truncated or malformed buffers.
    pub fn from_bytes(buf: Bytes) -> Result<CloudJob, CloudError> {
        let mut r = Reader::new(buf);
        let err = |e: amalgam_tensor::TensorError| CloudError::Decode(e.to_string());
        let model = r.get_bytes().map_err(err)?;
        let train = TrainConfig {
            epochs: r.get_u64().map_err(err)? as usize,
            batch_size: r.get_u64().map_err(err)? as usize,
            lr: r.get_f32().map_err(err)?,
            momentum: r.get_f32().map_err(err)?,
            seed: r.get_u64().map_err(err)?,
        };
        let task = match r.get_u8().map_err(err)? {
            0 => {
                let inputs = r.get_tensor().map_err(err)?;
                let labels = r.get_usize_list().map_err(err)?;
                let (val_inputs, val_labels) = if r.get_u8().map_err(err)? == 1 {
                    (
                        Some(r.get_tensor().map_err(err)?),
                        r.get_usize_list().map_err(err)?,
                    )
                } else {
                    (None, Vec::new())
                };
                TaskPayload::Classification {
                    inputs,
                    labels,
                    val_inputs,
                    val_labels,
                }
            }
            1 => {
                // The three counts below are attacker-chosen u32s; every
                // element they claim occupies at least one buffer byte, so
                // capping the pre-allocation at `remaining()` bounds memory
                // by the frame size while honest decodes still reserve
                // exactly once. A lying count then fails in the element
                // loop with a truncation error instead of a giant alloc.
                let n = r.get_u32().map_err(err)? as usize;
                let mut windows = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    windows.push(r.get_tensor().map_err(err)?);
                }
                let nv = r.get_u32().map_err(err)? as usize;
                let mut val_windows = Vec::with_capacity(nv.min(r.remaining()));
                for _ in 0..nv {
                    val_windows.push(r.get_tensor().map_err(err)?);
                }
                let nk = r.get_u32().map_err(err)? as usize;
                let mut head_keeps = Vec::with_capacity(nk.min(r.remaining()));
                for _ in 0..nk {
                    head_keeps.push(r.get_usize_list().map_err(err)?);
                }
                TaskPayload::LanguageModel {
                    windows,
                    val_windows,
                    head_keeps,
                }
            }
            t => return Err(CloudError::Decode(format!("unknown task tag {t}"))),
        };
        Ok(CloudJob { model, task, train })
    }
}

impl CloudError {
    /// Appends the error's wire encoding (tag byte + fields) to `w` — the
    /// error half of the transport's Reply frame. Every variant
    /// round-trips, so a remote client sees exactly the error an
    /// in-process client would, including [`CloudError::RateLimited`]'s
    /// retry-after.
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        match self {
            CloudError::ServiceUnavailable => w.put_u8(0),
            CloudError::Decode(msg) => {
                w.put_u8(1);
                w.put_str(msg);
            }
            CloudError::BadJob(msg) => {
                w.put_u8(2);
                w.put_str(msg);
            }
            CloudError::Overloaded {
                queue_depth,
                max_queue_depth,
            } => {
                w.put_u8(3);
                w.put_u64(*queue_depth as u64);
                w.put_u64(*max_queue_depth as u64);
            }
            CloudError::Panicked(msg) => {
                w.put_u8(4);
                w.put_str(msg);
            }
            CloudError::Transport(msg) => {
                w.put_u8(5);
                w.put_str(msg);
            }
            CloudError::Unauthorized(msg) => {
                w.put_u8(6);
                w.put_str(msg);
            }
            CloudError::Handshake(msg) => {
                w.put_u8(7);
                w.put_str(msg);
            }
            CloudError::RateLimited { retry_after_ms } => {
                w.put_u8(8);
                w.put_u64(*retry_after_ms);
            }
            CloudError::Cancelled => w.put_u8(9),
        }
    }

    /// Decodes an error written by [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Decode`] on truncated fields or unknown tags
    /// (the outer `Result` — the inner, successfully decoded error is the
    /// `Ok` value).
    pub(crate) fn decode_from(r: &mut Reader) -> Result<CloudError, CloudError> {
        let err = |e: amalgam_tensor::TensorError| CloudError::Decode(e.to_string());
        Ok(match r.get_u8().map_err(err)? {
            0 => CloudError::ServiceUnavailable,
            1 => CloudError::Decode(r.get_str().map_err(err)?),
            2 => CloudError::BadJob(r.get_str().map_err(err)?),
            3 => CloudError::Overloaded {
                queue_depth: r.get_u64().map_err(err)? as usize,
                max_queue_depth: r.get_u64().map_err(err)? as usize,
            },
            4 => CloudError::Panicked(r.get_str().map_err(err)?),
            5 => CloudError::Transport(r.get_str().map_err(err)?),
            6 => CloudError::Unauthorized(r.get_str().map_err(err)?),
            7 => CloudError::Handshake(r.get_str().map_err(err)?),
            8 => CloudError::RateLimited {
                retry_after_ms: r.get_u64().map_err(err)?,
            },
            9 => CloudError::Cancelled,
            t => return Err(CloudError::Decode(format!("unknown error tag {t}"))),
        })
    }
}

/// One per-epoch progress report, streamed while a job trains.
///
/// Progress updates are advisory: they ride the transport's v2 `Progress`
/// extension frame, so v1 peers simply never see them, and a dropped update
/// never affects the job's final [`JobResult`]. The epoch index counts
/// *completed* epochs, so `epoch == total_epochs` on the last update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressUpdate {
    /// Epochs completed so far (1-based; the first update carries 1).
    pub epoch: u64,
    /// Total epochs the job will run.
    pub total_epochs: u64,
    /// Mean training loss of the epoch just completed.
    pub train_loss: f32,
    /// Mean training accuracy of the epoch just completed (0 for language
    /// modelling tasks, which report loss only).
    pub train_acc: f32,
}

impl ProgressUpdate {
    /// Appends the update's wire fields (no tag) to `w`.
    pub(crate) fn encode_into(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        w.put_u64(self.total_epochs);
        w.put_f32(self.train_loss);
        w.put_f32(self.train_acc);
    }

    /// Decodes fields written by [`encode_into`](Self::encode_into).
    pub(crate) fn decode_from(r: &mut Reader) -> Result<ProgressUpdate, CloudError> {
        let err = |e: amalgam_tensor::TensorError| CloudError::Decode(e.to_string());
        Ok(ProgressUpdate {
            epoch: r.get_u64().map_err(err)?,
            total_epochs: r.get_u64().map_err(err)?,
            train_loss: r.get_f32().map_err(err)?,
            train_acc: r.get_f32().map_err(err)?,
        })
    }
}

/// What the cloud returns after training.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Service-assigned id of the job this result answers (matches
    /// `JobHandle::id`).
    pub job_id: u64,
    /// The trained augmented model (serialized).
    pub trained_model: Bytes,
    /// Cloud-side training history (head 0's metrics — the cloud cannot know
    /// which head matters).
    pub history: History,
    /// Bytes the cloud received (the "upload" size).
    pub bytes_received: usize,
    /// Bytes the cloud sent back.
    pub bytes_sent: usize,
    /// Wall-clock training seconds on the cloud.
    pub train_seconds: f64,
}

impl JobResult {
    /// Serializes the result for the return leg of the wire (the transport's
    /// `Reply` frame body).
    pub fn to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_u64(self.job_id);
        w.put_bytes(&self.trained_model);
        w.put_f32_list(&self.history.train_loss);
        w.put_f32_list(&self.history.train_acc);
        w.put_f32_list(&self.history.val_loss);
        w.put_f32_list(&self.history.val_acc);
        w.put_f32_list(&self.history.epoch_secs);
        w.put_u64(self.bytes_received as u64);
        w.put_u64(self.bytes_sent as u64);
        w.put_f64(self.train_seconds);
        w.finish()
    }

    /// Decodes a result written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Decode`] on truncated or malformed buffers.
    pub fn from_bytes(buf: Bytes) -> Result<JobResult, CloudError> {
        let mut r = Reader::new(buf);
        let err = |e: amalgam_tensor::TensorError| CloudError::Decode(e.to_string());
        let job_id = r.get_u64().map_err(err)?;
        let trained_model = r.get_bytes().map_err(err)?;
        let history = History {
            train_loss: r.get_f32_list().map_err(err)?,
            train_acc: r.get_f32_list().map_err(err)?,
            val_loss: r.get_f32_list().map_err(err)?,
            val_acc: r.get_f32_list().map_err(err)?,
            epoch_secs: r.get_f32_list().map_err(err)?,
        };
        let bytes_received = r.get_u64().map_err(err)? as usize;
        let bytes_sent = r.get_u64().map_err(err)? as usize;
        let train_seconds = r.get_f64().map_err(err)?;
        if r.remaining() != 0 {
            return Err(CloudError::Decode(format!(
                "{} trailing bytes after job result",
                r.remaining()
            )));
        }
        Ok(JobResult {
            job_id,
            trained_model,
            history,
            bytes_received,
            bytes_sent,
            train_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalgam_tensor::Rng;

    #[test]
    fn classification_job_roundtrip() {
        let mut rng = Rng::seed_from(0);
        let job = CloudJob {
            model: Bytes::from_static(b"model-bytes"),
            task: TaskPayload::Classification {
                inputs: Tensor::randn(&[4, 1, 2, 2], &mut rng),
                labels: vec![0, 1, 0, 1],
                val_inputs: Some(Tensor::randn(&[2, 1, 2, 2], &mut rng)),
                val_labels: vec![1, 0],
            },
            train: TrainConfig::new(3, 2, 0.1).with_seed(9),
        };
        let back = CloudJob::from_bytes(job.to_bytes()).unwrap();
        assert_eq!(back.model, job.model);
        assert_eq!(back.train.epochs, 3);
        assert_eq!(back.train.seed, 9);
        match back.task {
            TaskPayload::Classification {
                labels, val_labels, ..
            } => {
                assert_eq!(labels, vec![0, 1, 0, 1]);
                assert_eq!(val_labels, vec![1, 0]);
            }
            _ => panic!("wrong task kind"),
        }
    }

    #[test]
    fn lm_job_roundtrip() {
        let mut rng = Rng::seed_from(1);
        let job = CloudJob {
            model: Bytes::from_static(b"m"),
            task: TaskPayload::LanguageModel {
                windows: vec![Tensor::randn(&[2, 5], &mut rng)],
                val_windows: vec![],
                head_keeps: vec![vec![0, 1, 2], vec![1, 3, 4]],
            },
            train: TrainConfig::new(1, 2, 0.1),
        };
        let back = CloudJob::from_bytes(job.to_bytes()).unwrap();
        match back.task {
            TaskPayload::LanguageModel {
                head_keeps,
                windows,
                ..
            } => {
                assert_eq!(head_keeps, vec![vec![0, 1, 2], vec![1, 3, 4]]);
                assert_eq!(windows.len(), 1);
            }
            _ => panic!("wrong task kind"),
        }
    }

    #[test]
    fn job_result_roundtrip() {
        let result = JobResult {
            job_id: 42,
            trained_model: Bytes::from_static(b"trained"),
            history: History {
                train_loss: vec![1.0, 0.5],
                train_acc: vec![0.4, 0.9],
                val_loss: vec![0.7],
                val_acc: vec![0.8],
                epoch_secs: vec![0.01, 0.02],
            },
            bytes_received: 123,
            bytes_sent: 456,
            train_seconds: 1.25,
        };
        let back = JobResult::from_bytes(result.to_bytes()).unwrap();
        assert_eq!(back, result);
    }

    #[test]
    fn truncated_job_result_is_decode_error() {
        let result = JobResult {
            job_id: 1,
            trained_model: Bytes::from_static(b"m"),
            history: History::new(),
            bytes_received: 0,
            bytes_sent: 0,
            train_seconds: 0.0,
        };
        let bytes = result.to_bytes();
        let cut = bytes.slice(0..bytes.len() - 3);
        assert!(matches!(
            JobResult::from_bytes(cut),
            Err(CloudError::Decode(_))
        ));
    }

    /// An LM frame claiming u32::MAX windows must be rejected by the
    /// element loop hitting end-of-buffer, not by a multi-gigabyte
    /// `Vec::with_capacity` — the pre-allocation is capped at the bytes
    /// actually present.
    #[test]
    fn lm_job_with_lying_window_count_errors_without_huge_alloc() {
        let mut w = Writer::new();
        w.put_bytes(b"m"); // model
        w.put_u64(1); // epochs
        w.put_u64(1); // batch_size
        w.put_f32(0.1); // lr
        w.put_f32(0.0); // momentum
        w.put_u64(0); // seed
        w.put_u8(1); // LanguageModel tag
        w.put_u32(u32::MAX); // claimed window count, nothing follows
        assert!(matches!(
            CloudJob::from_bytes(w.finish()),
            Err(CloudError::Decode(_))
        ));
    }

    #[test]
    fn truncated_job_is_decode_error() {
        let mut rng = Rng::seed_from(2);
        let job = CloudJob {
            model: Bytes::from_static(b"abc"),
            task: TaskPayload::Classification {
                inputs: Tensor::randn(&[1, 1, 2, 2], &mut rng),
                labels: vec![0],
                val_inputs: None,
                val_labels: vec![],
            },
            train: TrainConfig::new(1, 1, 0.1),
        };
        let bytes = job.to_bytes();
        let cut = bytes.slice(0..bytes.len() / 2);
        assert!(matches!(
            CloudJob::from_bytes(cut),
            Err(CloudError::Decode(_))
        ));
    }
}
