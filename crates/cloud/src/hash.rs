//! Content addressing: a vendored, dependency-free SipHash-2-4 with
//! 128-bit output, hashed over a job's canonical wire encoding.
//!
//! The dedup subsystem ([`crate::cache`]) needs one property above all:
//! **two submissions are duplicates exactly when their canonical encodings
//! are byte-identical**, whether they were serialized by an in-process
//! [`crate::CloudClient`] or arrived over the transport. Hashing the
//! payload bytes (the output of [`crate::CloudJob::to_bytes`]) with a
//! *fixed-key* SipHash gives a stable 128-bit address: the same bytes hash
//! identically in every process, on every run, on both sides of the wire.
//!
//! SipHash was chosen over a simple FNV/xx-style mixer because cache keys
//! are attacker-influenced (any client can submit any payload): SipHash's
//! keyed ARX construction has no known shortcut for engineering
//! collisions, and at 128 bits accidental collisions are out of reach.
//! The keys are nevertheless *fixed constants* — the address must be a
//! pure function of the bytes, not of a per-service secret, or local and
//! remote submissions of the same job would stop hashing identically.
//!
//! `std::hash::DefaultHasher` is explicitly documented as unstable across
//! releases, and the repo vendors no hashing crate, so the primitive is
//! implemented here against the reference test vectors.

use std::fmt;

/// First half of the fixed SipHash key (`b"amalgam.".LE`).
const KEY0: u64 = u64::from_le_bytes(*b"amalgam.");
/// Second half of the fixed SipHash key (`b"dedup.v1".LE`).
const KEY1: u64 = u64::from_le_bytes(*b"dedup.v1");

/// The canonical 128-bit content address of a job payload.
///
/// Derived by [`ContentAddress::of`] from the job's canonical wire
/// encoding; equal payload bytes yield equal addresses in every process.
/// Displayed as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentAddress(u128);

impl ContentAddress {
    /// Hashes a canonical payload encoding into its content address.
    pub fn of(payload: &[u8]) -> ContentAddress {
        ContentAddress(siphash128(KEY0, KEY1, payload))
    }

    /// The raw 128-bit value (little-endian halves of the SipHash output).
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl fmt::Display for ContentAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 with 128-bit output (the reference `siphash` with
/// `outlen = 16`), keyed by `(k0, k1)`.
///
/// The two 64-bit halves of the result are packed little-endian-first:
/// `out = h1 | (h2 << 64)`, so `out.to_le_bytes()` reproduces the byte
/// order of the reference implementation's test vectors.
pub fn siphash128(k0: u64, k1: u64, data: &[u8]) -> u128 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d ^ 0xee, // 128-bit output variant
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    // Last block: remaining bytes, with the low byte of the total length
    // in the top lane — length extension cannot alias a shorter input.
    let rest = chunks.remainder();
    let mut last = (data.len() as u64) << 56;
    for (i, &b) in rest.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v[3] ^= last;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= last;

    v[2] ^= 0xee;
    for _ in 0..4 {
        sipround(&mut v);
    }
    let h1 = v[0] ^ v[1] ^ v[2] ^ v[3];
    v[1] ^= 0xdd;
    for _ in 0..4 {
        sipround(&mut v);
    }
    let h2 = v[0] ^ v[1] ^ v[2] ^ v[3];
    (h1 as u128) | ((h2 as u128) << 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference implementation's key: bytes `00 01 … 0f`.
    const RK0: u64 = 0x0706_0504_0302_0100;
    const RK1: u64 = 0x0f0e_0d0c_0b0a_0908;

    #[test]
    fn matches_reference_vectors() {
        // `vectors_128` from the SipHash reference implementation, with
        // input = first `len` bytes of `00 01 02 …`.
        let expect_len0: [u8; 16] = [
            0xa3, 0x81, 0x7f, 0x04, 0xba, 0x25, 0xa8, 0xe6, 0x6d, 0xf6, 0x72, 0x14, 0xc7, 0x55,
            0x02, 0x93,
        ];
        let expect_len1: [u8; 16] = [
            0xda, 0x87, 0xc1, 0xd8, 0x6b, 0x99, 0xaf, 0x44, 0x34, 0x76, 0x59, 0x11, 0x9b, 0x22,
            0xfc, 0x45,
        ];
        assert_eq!(siphash128(RK0, RK1, &[]).to_le_bytes(), expect_len0);
        assert_eq!(siphash128(RK0, RK1, &[0x00]).to_le_bytes(), expect_len1);
    }

    #[test]
    fn every_input_length_mod_8_hashes_distinctly() {
        // Exercise all remainder-block sizes; no two prefixes may collide
        // (they differ in content *and* length).
        let data: Vec<u8> = (0u8..32).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(seen.insert(siphash128(RK0, RK1, &data[..len])));
        }
    }

    #[test]
    fn address_is_a_pure_function_of_bytes() {
        let a = ContentAddress::of(b"same bytes");
        let b = ContentAddress::of(b"same bytes");
        assert_eq!(a, b);
        assert_ne!(a, ContentAddress::of(b"same byteS"));
        assert_eq!(format!("{a}").len(), 32);
    }
}
