//! The transport's event loops: each reactor thread owns a poller, a timer
//! wheel and a set of connections, and drives every connection as an
//! explicit state machine over nonblocking sockets.
//!
//! # Connection state machine
//!
//! ```text
//!            accept (round-robin to a reactor)
//!                      │
//!                      ▼
//!               ┌─────────────┐   bad opener / version / timeout
//!               │ Handshaking │ ───────────────────────────┐
//!               └──────┬──────┘  (Reject is flushed first  │
//!                Hello ok │        where one is owed)      │
//!                      ▼                                   │
//!               ┌─────────────┐  Goodbye / EOF / idle /    │
//!               │ Established │  violation / server stop   │
//!               └──────┬──────┘ ───────────┐               │
//!                      │                   ▼               │
//!                      │            ┌──────────┐           │
//!                      │            │ Draining │           │
//!                      │            └────┬─────┘           │
//!                      │   in-flight = 0 │ and queue       │
//!                      │     flushed (or sink broken)      │
//!                      ▼                 ▼                 ▼
//!                  ┌──────────────────────────────────────────┐
//!                  │                 Closed                   │
//!                  └──────────────────────────────────────────┘
//! ```
//!
//! A connection is owned by exactly one reactor thread, so its state needs
//! no locks. Cross-thread signals — new connections from the acceptor,
//! completed jobs from the workers, shutdown — go through each reactor's
//! [`ReactorShared`] inbox/ready-list plus a [`reactor::Waker`].
//!
//! # Backpressure
//!
//! Writes never block: frames the socket won't take queue on the
//! connection's [`WriteQueue`], write interest is registered, and the
//! reactor flushes on writability. The per-connection in-flight cap counts
//! replies from acceptance until their bytes are fully flushed, so a peer
//! that stops reading stops being allowed to submit. A queue that makes no
//! progress for [`TransportConfig::write_timeout`] marks the sink broken:
//! the socket is torn down and remaining replies are drained without
//! writing, so in-flight accounting still reaches zero and drain completes.

use super::frame::{self, Frame, FrameDecoder};
use super::server::ServerShared;
use super::timer::{Fired, TimerKind, TimerWheel};
use super::{MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use crate::metrics::ServiceMetrics;
use crate::middleware::SessionKey;
use crate::protocol::JobResult;
use crate::service::{CancelFlag, CloudClient, RoutedMsg, RoutedSender};
use crate::telemetry::{Stage, TraceId};
use crate::CloudError;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use reactor::{Event, Interest, Poller, WakeReceiver, Waker};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token reserved for the reactor's own wake pipe.
const WAKER_TOKEN: u64 = u64::MAX;

/// Token reserved for the Prometheus exporter's listener (reactor 0 only).
const EXPORTER_TOKEN: u64 = u64::MAX - 1;

/// Cap on one exporter request's header bytes; enough for any scraper's
/// `GET /metrics` preamble, small enough that a hostile peer buys nothing.
const HTTP_REQUEST_CAP: usize = 4096;

/// Timer wheel granularity. Deadlines fire within one tick of their due
/// time, never early.
const WHEEL_TICK: Duration = Duration::from_millis(5);

/// Timer wheel slots (one revolution = `WHEEL_TICK * WHEEL_SLOTS`; longer
/// deadlines lap).
const WHEEL_SLOTS: usize = 512;

/// The cross-thread face of one reactor: everything other threads may touch.
#[derive(Debug)]
pub(super) struct ReactorShared {
    waker: Waker,
    /// Connections accepted but not yet adopted by the reactor thread.
    inbox: Mutex<Vec<TcpStream>>,
    /// Tokens whose reply channel has pending completions.
    ready_replies: Mutex<Vec<u64>>,
}

impl ReactorShared {
    /// Hands an accepted connection to this reactor and wakes it.
    pub(super) fn enqueue_conn(&self, stream: TcpStream, metrics: &ServiceMetrics) {
        self.inbox.lock().push(stream);
        if self.waker.wake() {
            metrics.reactor_wakeup();
        }
    }

    /// Wakes the reactor with nothing attached (shutdown kick).
    pub(super) fn kick(&self, metrics: &ServiceMetrics) {
        if self.waker.wake() {
            metrics.reactor_wakeup();
        }
    }

    /// Flags `token` as having completions to flush and wakes the reactor.
    /// Called from worker threads via each connection's [`RoutedSender`].
    fn notify_replies(&self, token: u64, metrics: &ServiceMetrics) {
        let mut ready = self.ready_replies.lock();
        if !ready.contains(&token) {
            ready.push(token);
        }
        drop(ready);
        if self.waker.wake() {
            metrics.reactor_wakeup();
        }
    }
}

/// Spawns one reactor thread, returning its shared handle and join handle.
pub(super) fn spawn_reactor(
    index: usize,
    shared: Arc<ServerShared>,
    handle: Arc<ReactorShared>,
    wake_rx: WakeReceiver,
    mut poller: Poller,
    exporter: Option<TcpListener>,
) -> std::thread::JoinHandle<()> {
    poller
        .register(wake_rx.fd(), WAKER_TOKEN, Interest::READABLE)
        .expect("register reactor waker");
    shared.metrics.reactor_fd_registered();
    if let Some(listener) = &exporter {
        poller
            .register(listener.as_raw_fd(), EXPORTER_TOKEN, Interest::READABLE)
            .expect("register metrics exporter listener");
        shared.metrics.reactor_fd_registered();
    }
    std::thread::Builder::new()
        .name(format!("cloud-reactor-{index}"))
        .spawn(move || {
            Reactor {
                shared,
                handle,
                poller,
                wake_rx,
                conns: HashMap::new(),
                wheel: TimerWheel::new(WHEEL_TICK, WHEEL_SLOTS),
                next_token: 0,
                events: Vec::new(),
                fired: Vec::new(),
                exporter,
                http_conns: HashMap::new(),
            }
            .run()
        })
        .expect("spawn reactor")
}

/// The reactor-private half of one reactor's plumbing: the read end of
/// its wake pipe and its poller.
pub(super) type ReactorPrivate = (WakeReceiver, Poller);

/// Builds the per-reactor shared handles plus the private halves the
/// threads take with them.
pub(super) fn make_reactor_parts(
    n: usize,
) -> std::io::Result<(Vec<Arc<ReactorShared>>, Vec<ReactorPrivate>)> {
    let mut handles = Vec::with_capacity(n);
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let (waker, wake_rx) = Waker::new()?;
        let poller = Poller::new()?;
        handles.push(Arc::new(ReactorShared {
            waker,
            inbox: Mutex::new(Vec::new()),
            ready_replies: Mutex::new(Vec::new()),
        }));
        parts.push((wake_rx, poller));
    }
    Ok((handles, parts))
}

/// Lifecycle of one connection; see the module diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Handshaking,
    Established,
    Draining,
    Closed,
}

/// One connection's entire state, owned by its reactor thread.
struct Conn {
    stream: TcpStream,
    token: u64,
    state: ConnState,
    decoder: FrameDecoder,
    writes: WriteQueue,
    /// Interest currently registered with the poller.
    interest: Interest,
    replies_rx: Receiver<(u64, RoutedMsg)>,
    routed: RoutedSender,
    /// Shared with every [`RoutedSender`] clone handed to workers; cleared
    /// when the peer is gone for good (abrupt EOF or read error while
    /// established, or the connection closed). Trainers probe it through
    /// progress emission: once it clears, an in-flight job knows nobody
    /// can receive its result and cancels itself at the next epoch
    /// boundary, keeping its checkpoint for a resumed resubmission.
    peer_alive: Arc<AtomicBool>,
    /// Session identity, present once the handshake succeeded.
    session_client: Option<CloudClient>,
    /// Protocol version negotiated at the handshake (0 until then). Trace
    /// extensions and Stats frames are only written when this is ≥ 2.
    version: u32,
    /// Trace id of each accepted submit, echoed onto its Reply frame.
    traces: HashMap<u64, TraceId>,
    /// Cancellation flag of each accepted submit still executing; a Cancel
    /// frame for the request id flips it, the reply retires it.
    cancels: HashMap<u64, CancelFlag>,
    /// Submits accepted but whose reply bytes are not yet fully flushed
    /// (or discarded). Queued replies count: a peer that stops reading
    /// keeps its slots occupied.
    in_flight: usize,
    /// Still counted in [`ServerShared`]'s submitter gauge.
    counts_submitter: bool,
    /// `conn_opened` was recorded (so `conn_closed` is owed).
    counts_session_open: bool,
    /// A write failed or stalled out: never write again (the byte stream
    /// may sit mid-frame), just drain accounting.
    sink_broken: bool,
    last_activity: Instant,
    last_write_progress: Instant,
    /// Generation of the currently-armed Idle timer (stale fires ignored).
    idle_gen: u64,
    /// Generation of the currently-armed WriteStall timer.
    write_gen: u64,
    write_timer_armed: bool,
}

/// How one flush attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushOutcome {
    /// Queue fully flushed.
    Drained,
    /// Socket stopped taking bytes; write interest is needed.
    Blocked,
    /// Write error: the sink is gone.
    Broken,
}

/// One queued chunk of outbound bytes. A frame is one chunk (control
/// frames, error replies) or two (successful replies: prefixed head +
/// uncopied result payload); the last chunk carries the frame accounting.
struct Pending {
    buf: Bytes,
    pos: usize,
    /// `(wire_len, is_reply)` on a frame's final chunk.
    end_of_frame: Option<(usize, bool)>,
}

/// Per-connection outbound queue; only touched by the owning reactor.
#[derive(Default)]
struct WriteQueue {
    q: VecDeque<Pending>,
    /// Unflushed bytes across all chunks (mirrored into the service-wide
    /// backpressure gauge).
    bytes: usize,
}

impl WriteQueue {
    fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    fn push(&mut self, buf: Bytes, end_of_frame: Option<(usize, bool)>, metrics: &ServiceMetrics) {
        self.bytes += buf.len();
        metrics.write_queue_grew(buf.len());
        // The frame counters move at *commit* time, not flush time: once a
        // frame is queued its delivery is ordered before any observer can
        // see the peer react to it, so a client that received a reply is
        // guaranteed to find it already counted in the server's stats.
        // (Counting at flush races: on a busy box the completing write can
        // wake the peer, which reads the stats before the writing thread
        // gets to increment.) Frames discarded unsent are uncounted again.
        // Non-reply frames are protocol overhead (Welcome, Pong, Reject,
        // Stats): counted in the totals *and* the control sub-counter.
        if let Some((wire, is_reply)) = end_of_frame {
            if is_reply {
                metrics.frame_sent(wire);
            } else {
                metrics.control_frame_sent(wire);
            }
        }
        self.q.push_back(Pending {
            buf,
            pos: 0,
            end_of_frame,
        });
    }

    /// Queues a whole frame as one prefixed chunk.
    fn push_frame(&mut self, frame: &Frame, is_reply: bool, metrics: &ServiceMetrics) {
        let body = frame.encode();
        let mut v = Vec::with_capacity(4 + body.len());
        v.extend_from_slice(&(body.len() as u32).to_le_bytes());
        v.extend_from_slice(&body);
        let wire = v.len();
        self.push(Bytes::from(v), Some((wire, is_reply)), metrics);
    }

    /// Queues a successful reply without copying the serialized result into
    /// a frame-body buffer (the wire bytes match `Frame::Reply` exactly,
    /// including the optional protocol-v2 trace extension as a third chunk).
    /// Returns `false` if the frame would overflow the u32 length prefix.
    fn push_reply_ok(
        &mut self,
        request_id: u64,
        result: Bytes,
        trace: Option<TraceId>,
        metrics: &ServiceMetrics,
    ) -> bool {
        let tail = trace.map(frame::trace_tail);
        let tail_len = tail.map_or(0, |t| t.len());
        let head = frame::reply_ok_head(request_id, result.len());
        let total = head.len() + result.len() + tail_len;
        if total > u32::MAX as usize {
            return false;
        }
        let mut v = Vec::with_capacity(4 + head.len());
        v.extend_from_slice(&(total as u32).to_le_bytes());
        v.extend_from_slice(&head);
        self.push(Bytes::from(v), None, metrics);
        match tail {
            Some(t) => {
                self.push(result, None, metrics);
                self.push(Bytes::from(t.to_vec()), Some((4 + total, true)), metrics);
            }
            None => self.push(result, Some((4 + total, true)), metrics),
        }
        true
    }

    /// Writes as much as the socket will take. Returns completed reply
    /// frames (their in-flight slots free up) and how the attempt ended.
    fn flush(&mut self, stream: &mut TcpStream, metrics: &ServiceMetrics) -> (usize, FlushOutcome) {
        let mut replies = 0;
        loop {
            // Pop chunks that are already fully written (including any
            // zero-length ones) before gathering.
            while let Some(front) = self.q.front() {
                if front.pos < front.buf.len() {
                    break;
                }
                if let Some((_, is_reply)) = front.end_of_frame {
                    // Counted at push time; here only the in-flight slot is
                    // released, which genuinely requires the bytes flushed.
                    if is_reply {
                        replies += 1;
                    }
                }
                self.q.pop_front();
            }
            if self.q.is_empty() {
                return (replies, FlushOutcome::Drained);
            }
            // Gather the front chunks into one vectored write: a reply
            // split into prefix/head, payload and trace-tail chunks leaves
            // in a single syscall, not one small TCP segment per chunk.
            let mut iov = [std::io::IoSlice::new(&[]); 8];
            let mut n_iov = 0;
            for p in self.q.iter() {
                if n_iov == iov.len() {
                    break;
                }
                if p.pos < p.buf.len() {
                    iov[n_iov] = std::io::IoSlice::new(&p.buf[p.pos..]);
                    n_iov += 1;
                }
            }
            match stream.write_vectored(&iov[..n_iov]) {
                Ok(0) => return (replies, FlushOutcome::Broken),
                Ok(mut n) => {
                    self.bytes -= n;
                    metrics.write_queue_shrank(n);
                    while n > 0 {
                        let front = self.q.front_mut().expect("wrote beyond queued bytes");
                        let take = n.min(front.buf.len() - front.pos);
                        front.pos += take;
                        n -= take;
                        if front.pos == front.buf.len() {
                            if let Some((_, is_reply)) = front.end_of_frame {
                                if is_reply {
                                    replies += 1;
                                }
                            }
                            self.q.pop_front();
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    return (replies, FlushOutcome::Blocked)
                }
                Err(_) => return (replies, FlushOutcome::Broken),
            }
        }
    }

    /// Drops everything (broken sink), returning how many queued reply
    /// frames were discarded so their in-flight slots free up. Frames that
    /// never fully flushed are uncounted from the sent totals.
    fn discard(&mut self, metrics: &ServiceMetrics) -> usize {
        let mut replies = 0;
        for p in self.q.drain(..) {
            if let Some((wire, is_reply)) = p.end_of_frame {
                metrics.frame_send_aborted(wire);
                if is_reply {
                    replies += 1;
                }
            }
        }
        metrics.write_queue_shrank(self.bytes);
        self.bytes = 0;
        replies
    }
}

/// One event-loop thread: poller + timer wheel + owned connections.
struct Reactor {
    shared: Arc<ServerShared>,
    handle: Arc<ReactorShared>,
    poller: Poller,
    wake_rx: WakeReceiver,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    next_token: u64,
    /// Reused buffers for poll results and fired timers.
    events: Vec<Event>,
    fired: Vec<Fired>,
    /// The Prometheus exporter's listener (reactor 0 only).
    exporter: Option<TcpListener>,
    /// In-progress exporter scrapes, keyed by poller token.
    http_conns: HashMap<u64, HttpConn>,
}

/// One Prometheus scrape in flight: read the request head, write one
/// `HTTP/1.0` response, close. No keep-alive, no routing — every path gets
/// the metrics body.
struct HttpConn {
    stream: TcpStream,
    /// Request bytes read so far (only until the header terminator).
    request: Vec<u8>,
    /// The rendered response once the request head is complete.
    response: Option<Bytes>,
    /// Bytes of `response` already written.
    written: usize,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Reactor {
    fn run(mut self) {
        loop {
            let timeout = self
                .wheel
                .next_deadline()
                .map(|dl| dl.saturating_duration_since(Instant::now()));
            let mut events = std::mem::take(&mut self.events);
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken poller would spin; back off and keep draining via
                // wake-ups and timers.
                std::thread::sleep(Duration::from_millis(1));
            }
            self.shared.metrics.reactor_events(events.len());
            // Read stop *after* wait: the shutdown kick interrupts the wait,
            // and this ordering guarantees the same iteration that drains
            // the kick also observes the flag and applies it.
            let stopped = self.shared.stop.load(Ordering::SeqCst);
            for ev in &events {
                if ev.token == WAKER_TOKEN {
                    self.wake_rx.drain();
                } else if ev.token == EXPORTER_TOKEN {
                    self.accept_http(stopped);
                } else if self.http_conns.contains_key(&ev.token) {
                    self.handle_http_io(ev.token, ev.readable, ev.writable);
                } else {
                    self.handle_io(ev.token, ev.readable, ev.writable);
                }
            }
            self.events = events;

            self.adopt_new_conns(stopped);
            self.flush_ready_replies();
            if stopped {
                self.apply_stop();
            }

            let mut fired = std::mem::take(&mut self.fired);
            self.wheel.advance(Instant::now(), &mut fired);
            for f in fired.drain(..) {
                self.handle_timer(f);
            }
            self.fired = fired;

            self.conns.retain(|_, c| c.state != ConnState::Closed);
            if stopped && self.conns.is_empty() && self.handle.inbox.lock().is_empty() {
                self.poller
                    .deregister(self.wake_rx.fd())
                    .expect("deregister reactor waker");
                self.shared.metrics.reactor_fd_deregistered();
                return;
            }
        }
    }

    /// Registers connections the acceptor handed over. Under stop, new
    /// arrivals are closed immediately instead (the acceptor has already
    /// quit; these raced the flag).
    fn adopt_new_conns(&mut self, stopped: bool) {
        let incoming = std::mem::take(&mut *self.handle.inbox.lock());
        for stream in incoming {
            if stopped {
                self.shared.submitters_dec();
                self.shared.release_conn(false);
                continue;
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                self.shared.submitters_dec();
                self.shared.release_conn(false);
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .register(stream.as_raw_fd(), token, Interest::READABLE)
                .is_err()
            {
                self.shared.submitters_dec();
                self.shared.release_conn(false);
                continue;
            }
            self.shared.metrics.reactor_fd_registered();
            let (tx, rx) = unbounded();
            let notify = {
                let handle = Arc::clone(&self.handle);
                let metrics = Arc::clone(&self.shared.metrics);
                Arc::new(move || handle.notify_replies(token, &metrics))
                    as Arc<dyn Fn() + Send + Sync>
            };
            let now = Instant::now();
            let peer_alive = Arc::new(AtomicBool::new(true));
            let mut conn = Conn {
                stream,
                token,
                state: ConnState::Handshaking,
                decoder: FrameDecoder::new(),
                writes: WriteQueue::default(),
                interest: Interest::READABLE,
                replies_rx: rx,
                routed: RoutedSender::new(tx, notify, Arc::clone(&peer_alive)),
                peer_alive,
                session_client: None,
                version: 0,
                traces: HashMap::new(),
                cancels: HashMap::new(),
                in_flight: 0,
                counts_submitter: true,
                counts_session_open: false,
                sink_broken: false,
                last_activity: now,
                last_write_progress: now,
                idle_gen: 0,
                write_gen: 0,
                write_timer_armed: false,
            };
            conn.idle_gen += 1;
            self.wheel.insert(
                now + self.shared.config.handshake_timeout,
                token,
                TimerKind::Idle,
                conn.idle_gen,
            );
            self.conns.insert(token, conn);
        }
    }

    /// Drains completion channels for every connection the workers flagged.
    fn flush_ready_replies(&mut self) {
        let tokens = std::mem::take(&mut *self.handle.ready_replies.lock());
        for token in tokens {
            let Reactor {
                conns,
                poller,
                wheel,
                shared,
                ..
            } = self;
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            pump_replies(conn, shared, poller, wheel);
        }
    }

    /// Readiness for one connection's socket.
    fn handle_io(&mut self, token: u64, readable: bool, writable: bool) {
        let Reactor {
            conns,
            poller,
            wheel,
            shared,
            ..
        } = self;
        let Some(conn) = conns.get_mut(&token) else {
            return; // stale event for an already-closed token
        };
        if writable && conn.state != ConnState::Closed {
            flush_writes(conn, shared, poller, wheel);
        }
        if readable && matches!(conn.state, ConnState::Handshaking | ConnState::Established) {
            on_readable(conn, shared, poller, wheel);
        }
    }

    /// Accepts pending exporter connections onto this reactor's poller.
    fn accept_http(&mut self, stopped: bool) {
        let Some(listener) = &self.exporter else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stopped || stream.set_nonblocking(true).is_err() {
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READABLE)
                        .is_err()
                    {
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    self.shared.metrics.reactor_fd_registered();
                    self.http_conns.insert(
                        token,
                        HttpConn {
                            stream,
                            request: Vec::new(),
                            response: None,
                            written: 0,
                            interest: Interest::READABLE,
                        },
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Drives one exporter scrape: read until the request head is complete,
    /// render the metrics page once, write it out, close.
    fn handle_http_io(&mut self, token: u64, readable: bool, _writable: bool) {
        let Some(http) = self.http_conns.get_mut(&token) else {
            return;
        };
        let mut dead = false;
        if readable && http.response.is_none() {
            let mut buf = [0u8; 1024];
            loop {
                match http.stream.read(&mut buf) {
                    Ok(0) => {
                        // EOF before the terminator: answer what we have
                        // anyway (curl-with---http0.9-style minimal peers).
                        break;
                    }
                    Ok(n) => {
                        http.request.extend_from_slice(&buf[..n]);
                        if http.request.len() >= HTTP_REQUEST_CAP
                            || http.request.windows(4).any(|w| w == b"\r\n\r\n")
                        {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        if http.request.is_empty()
                            || !http.request.windows(4).any(|w| w == b"\r\n\r\n")
                        {
                            return; // head still incomplete; wait for more
                        }
                        break;
                    }
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                let body = self.shared.metrics.snapshot().to_prometheus();
                let mut resp = Vec::with_capacity(body.len() + 128);
                resp.extend_from_slice(b"HTTP/1.0 200 OK\r\n");
                resp.extend_from_slice(b"Content-Type: text/plain; version=0.0.4\r\n");
                resp.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
                resp.extend_from_slice(b"Connection: close\r\n\r\n");
                resp.extend_from_slice(body.as_bytes());
                http.response = Some(Bytes::from(resp));
            }
        }
        if !dead {
            if let Some(resp) = &http.response {
                let done = loop {
                    if http.written >= resp.len() {
                        break true;
                    }
                    match http.stream.write(&resp[http.written..]) {
                        Ok(0) => break true,
                        Ok(n) => http.written += n,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break false,
                        Err(_) => break true,
                    }
                };
                if !done {
                    let want = Interest {
                        readable: false,
                        writable: true,
                    };
                    if http.interest != want
                        && self
                            .poller
                            .reregister(http.stream.as_raw_fd(), token, want)
                            .is_ok()
                    {
                        http.interest = want;
                    }
                    return; // the write resumes on the next event
                }
                dead = true; // response fully written (or broken): close
            }
        }
        if dead {
            if self.poller.deregister(http.stream.as_raw_fd()).is_ok() {
                self.shared.metrics.reactor_fd_deregistered();
            }
            let _ = http.stream.shutdown(Shutdown::Both);
            self.http_conns.remove(&token);
        }
    }

    /// Stop ordering: every connection that could still submit stops being
    /// able to (handshakes die, established sessions drain), and only then
    /// does the submitter gauge hit zero — which is what lets
    /// `CloudServer::shutdown` drain the service knowing the reply set is
    /// complete.
    fn apply_stop(&mut self) {
        // The exporter dies first: no new scrapes, and in-flight ones are
        // dropped (a scraper retries; a half-written metrics page is junk
        // either way once the server is gone).
        if let Some(listener) = self.exporter.take() {
            if self.poller.deregister(listener.as_raw_fd()).is_ok() {
                self.shared.metrics.reactor_fd_deregistered();
            }
        }
        for (_, http) in self.http_conns.drain() {
            if self.poller.deregister(http.stream.as_raw_fd()).is_ok() {
                self.shared.metrics.reactor_fd_deregistered();
            }
            let _ = http.stream.shutdown(Shutdown::Both);
        }
        let Reactor {
            conns,
            poller,
            wheel,
            shared,
            ..
        } = self;
        for conn in conns.values_mut() {
            match conn.state {
                ConnState::Handshaking => close_conn(conn, shared, poller),
                ConnState::Established => {
                    enter_draining(conn, shared, poller, wheel);
                }
                ConnState::Draining | ConnState::Closed => {}
            }
        }
    }

    /// A deadline fired; stale generations and states that outgrew the
    /// timer are ignored (lazy cancellation).
    fn handle_timer(&mut self, f: Fired) {
        let Reactor {
            conns,
            poller,
            wheel,
            shared,
            ..
        } = self;
        let Some(conn) = conns.get_mut(&f.token) else {
            return;
        };
        match f.kind {
            TimerKind::Idle => {
                if f.generation != conn.idle_gen {
                    return;
                }
                let budget = match conn.state {
                    ConnState::Handshaking => shared.config.handshake_timeout,
                    ConnState::Established => shared.config.idle_timeout,
                    // Draining ignores idleness: it lives until its replies
                    // are settled (the write-stall timer bounds that).
                    ConnState::Draining | ConnState::Closed => return,
                };
                let idle_for = conn.last_activity.elapsed();
                if idle_for >= budget {
                    match conn.state {
                        // A silent opener is not a protocol offense — just
                        // close (parity with the old transport).
                        ConnState::Handshaking => close_conn(conn, shared, poller),
                        _ => enter_draining(conn, shared, poller, wheel),
                    }
                } else {
                    // Activity moved the deadline; re-arm lazily.
                    wheel.insert(
                        conn.last_activity + budget,
                        conn.token,
                        TimerKind::Idle,
                        conn.idle_gen,
                    );
                }
            }
            TimerKind::WriteStall => {
                if f.generation != conn.write_gen {
                    return;
                }
                conn.write_timer_armed = false;
                if conn.writes.is_empty() || conn.sink_broken || conn.state == ConnState::Closed {
                    return;
                }
                if conn.last_write_progress.elapsed() >= shared.config.write_timeout {
                    mark_sink_broken(conn, shared, poller, wheel);
                } else {
                    conn.write_timer_armed = true;
                    conn.write_gen += 1;
                    wheel.insert(
                        conn.last_write_progress + shared.config.write_timeout,
                        conn.token,
                        TimerKind::WriteStall,
                        conn.write_gen,
                    );
                }
            }
        }
    }
}

/// Reads everything the socket has, decoding and dispatching frames as they
/// complete. Exits early if a frame (or error) moves the connection out of
/// a reading state.
fn on_readable(
    conn: &mut Conn,
    shared: &Arc<ServerShared>,
    poller: &mut Poller,
    wheel: &mut TimerWheel,
) {
    loop {
        match conn.decoder.read_from(&mut conn.stream) {
            Ok(0) => {
                // EOF. Mid-frame bytes mean a truncated frame — under the
                // handshake that counts as a rejected connection.
                if conn.state == ConnState::Handshaking {
                    if conn.decoder.buffered() > 0 {
                        shared.metrics.conn_rejected();
                    }
                    close_conn(conn, shared, poller);
                } else {
                    // An abrupt disconnect: this protocol's clients never
                    // half-close — a graceful leave sends Goodbye first —
                    // so EOF here means the peer is gone and its in-flight
                    // jobs are orphaned.
                    conn.peer_alive.store(false, Ordering::SeqCst);
                    enter_draining(conn, shared, poller, wheel);
                }
                return;
            }
            Ok(_) => {
                conn.last_activity = Instant::now();
                if !drain_frames(conn, shared, poller, wheel) {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(_) => {
                if conn.state == ConnState::Handshaking {
                    shared.metrics.conn_rejected();
                    close_conn(conn, shared, poller);
                } else {
                    // A read error (reset, broken pipe): same as EOF — the
                    // peer is unreachable, its jobs are orphaned.
                    conn.peer_alive.store(false, Ordering::SeqCst);
                    enter_draining(conn, shared, poller, wheel);
                }
                return;
            }
        }
    }
}

/// Decodes buffered frames; returns `false` once the connection left a
/// reading state (or errored out).
fn drain_frames(
    conn: &mut Conn,
    shared: &Arc<ServerShared>,
    poller: &mut Poller,
    wheel: &mut TimerWheel,
) -> bool {
    loop {
        if !matches!(conn.state, ConnState::Handshaking | ConnState::Established) {
            return false;
        }
        match conn.decoder.next_frame(shared.config.max_frame_len) {
            Ok(Some((frame, wire_len))) => {
                // Job traffic (Submit) moves only the totals; everything
                // else is protocol overhead and also bumps the control
                // sub-counter.
                match &frame {
                    Frame::Submit { .. } => shared.metrics.frame_received(wire_len),
                    _ => shared.metrics.control_frame_received(wire_len),
                }
                handle_frame(conn, frame, shared, poller, wheel);
            }
            Ok(None) => return true,
            // Oversized or malformed input. Before the handshake that is a
            // rejected connection (close with no reply, like the old
            // transport); afterwards it is a protocol violation that ends
            // the session but still flushes owed replies.
            Err(_) => {
                if conn.state == ConnState::Handshaking {
                    shared.metrics.conn_rejected();
                    close_conn(conn, shared, poller);
                } else {
                    enter_draining(conn, shared, poller, wheel);
                }
                return false;
            }
        }
    }
}

/// One decoded frame against the state machine.
fn handle_frame(
    conn: &mut Conn,
    frame: Frame,
    shared: &Arc<ServerShared>,
    poller: &mut Poller,
    wheel: &mut TimerWheel,
) {
    match (conn.state, frame) {
        (
            ConnState::Handshaking,
            Frame::Hello {
                min_version,
                max_version,
                api_key,
            },
        ) => {
            let version = PROTOCOL_VERSION.min(max_version);
            if version < MIN_PROTOCOL_VERSION.max(min_version) {
                shared.metrics.conn_rejected();
                conn.writes.push_frame(
                    &Frame::Reject {
                        reason: format!(
                            "no common protocol version (server speaks \
                             {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}, \
                             client {min_version}..={max_version})"
                        ),
                    },
                    false,
                    &shared.metrics,
                );
                enter_draining(conn, shared, poller, wheel);
                return;
            }
            let auth: Option<Arc<str>> = api_key.map(|k| Arc::from(k.into_boxed_str()));
            conn.writes.push_frame(
                &Frame::Welcome {
                    version,
                    max_in_flight: shared.config.max_in_flight as u32,
                    max_frame_len: shared.config.max_frame_len as u64,
                },
                false,
                &shared.metrics,
            );
            shared.metrics.conn_opened();
            conn.counts_session_open = true;
            // One scheduling/rate-limiting identity for everything this
            // connection submits: the handshake's key, or a fresh
            // anonymous session.
            conn.session_client = Some(shared.client.for_transport_session(auth));
            conn.version = version;
            conn.state = ConnState::Established;
            // Swap the handshake deadline for the (usually longer, possibly
            // shorter) idle deadline.
            conn.idle_gen += 1;
            wheel.insert(
                conn.last_activity + shared.config.idle_timeout,
                conn.token,
                TimerKind::Idle,
                conn.idle_gen,
            );
            flush_writes(conn, shared, poller, wheel);
        }
        (ConnState::Handshaking, _) => {
            shared.metrics.conn_rejected();
            conn.writes.push_frame(
                &Frame::Reject {
                    reason: "expected Hello".into(),
                },
                false,
                &shared.metrics,
            );
            enter_draining(conn, shared, poller, wheel);
        }
        (
            ConnState::Established,
            Frame::Submit {
                request_id,
                payload,
                trace,
            },
        ) => {
            let session = conn
                .session_client
                .as_ref()
                .expect("established connections have a session");
            let trace = trace.unwrap_or(TraceId::NONE);
            // The cap judges accepted-but-unflushed replies too: submits
            // are shed while earlier replies sit in the write queue.
            let in_flight_before = conn.in_flight;
            conn.in_flight += 1;
            if in_flight_before >= shared.config.max_in_flight {
                shared.metrics.session_shed(session.session_key());
                queue_reply(
                    conn,
                    request_id,
                    Err(CloudError::Overloaded {
                        queue_depth: in_flight_before,
                        max_queue_depth: shared.config.max_in_flight,
                    }),
                    shared,
                );
            } else {
                // Remember the trace for the Reply (including dedup-served
                // replies, which also arrive through the routed channel).
                if !trace.is_none() {
                    conn.traces.insert(request_id, trace);
                }
                match session.submit_routed(payload, request_id, conn.routed.clone(), trace) {
                    Ok(cancel) => {
                        conn.cancels.insert(request_id, cancel);
                    }
                    Err(e) => queue_reply(conn, request_id, Err(e), shared),
                }
            }
            flush_writes(conn, shared, poller, wheel);
        }
        (ConnState::Established, Frame::Ping { nonce }) => {
            conn.writes
                .push_frame(&Frame::Pong { nonce }, false, &shared.metrics);
            flush_writes(conn, shared, poller, wheel);
        }
        (ConnState::Established, Frame::GetStats { request_id }) => {
            // Authorization: with API keys configured only a session keyed
            // by one of them may scrape; otherwise any established session
            // is as trusted as the service gets. The refusal is in-band so
            // callers see *why* instead of a dead connection.
            let session = conn
                .session_client
                .as_ref()
                .expect("established connections have a session");
            let authorized = match &shared.api_keys {
                None => true,
                Some(keys) => match session.session_key() {
                    SessionKey::ApiKey(k) => keys.iter().any(|key| key.as_str() == &**k),
                    SessionKey::Anonymous(_) => false,
                },
            };
            let body = if authorized {
                Ok(shared.metrics.snapshot().to_bytes())
            } else {
                Err(CloudError::Unauthorized(
                    "stats require a recognized API key".into(),
                ))
            };
            conn.writes
                .push_frame(&Frame::Stats { request_id, body }, false, &shared.metrics);
            flush_writes(conn, shared, poller, wheel);
        }
        (ConnState::Established, Frame::Cancel { request_id }) => {
            // Best-effort: flip the job's flag if it is still in flight. An
            // id with no flag means the reply already settled (or the submit
            // never landed) — a benign race, not a protocol offense. The
            // reply still arrives; cancellation surfaces as its payload.
            if let Some(flag) = conn.cancels.get(&request_id) {
                flag.store(true, Ordering::Relaxed);
            }
        }
        (ConnState::Established, Frame::Goodbye) => {
            enter_draining(conn, shared, poller, wheel);
        }
        // A second Hello or a server-side frame is a protocol violation:
        // stop reading, settle what is owed, close.
        (ConnState::Established, _) => {
            enter_draining(conn, shared, poller, wheel);
        }
        // Draining/Closed never reach here (drain_frames gates on state).
        (ConnState::Draining | ConnState::Closed, _) => {}
    }
}

/// Serializes one reply onto the write queue (in-flight slot already held).
fn queue_reply(
    conn: &mut Conn,
    request_id: u64,
    mut result: Result<JobResult, CloudError>,
    shared: &Arc<ServerShared>,
) {
    let stored = conn.traces.remove(&request_id).unwrap_or(TraceId::NONE);
    conn.cancels.remove(&request_id);
    if conn.sink_broken {
        conn.in_flight = conn.in_flight.saturating_sub(1);
        return;
    }
    // Echo the submit's trace id, but only to peers that negotiated the
    // extension (v1 decoders reject trailing bytes).
    let trace = (conn.version >= 2 && !stored.is_none()).then_some(stored);
    if let Ok(r) = &mut result {
        // Parity with in-process handles: the result's id is the id the
        // caller's handle carries (its wire request id), not the server
        // pool's internal one.
        r.job_id = request_id;
        let bytes = r.to_bytes();
        if !conn
            .writes
            .push_reply_ok(request_id, bytes, trace, &shared.metrics)
        {
            // Un-encodable (>4 GiB) reply: the framing cannot carry it.
            conn.sink_broken = true;
            conn.in_flight = conn.in_flight.saturating_sub(1);
        }
        return;
    }
    conn.writes.push_frame(
        &Frame::Reply {
            request_id,
            result,
            trace,
        },
        true,
        &shared.metrics,
    );
}

/// Moves completions from the reply channel onto the wire.
fn pump_replies(
    conn: &mut Conn,
    shared: &Arc<ServerShared>,
    poller: &mut Poller,
    wheel: &mut TimerWheel,
) {
    while let Ok((request_id, msg)) = conn.replies_rx.try_recv() {
        match msg {
            RoutedMsg::Reply(result) => queue_reply(conn, request_id, result, shared),
            RoutedMsg::Progress(update) => queue_progress(conn, request_id, update, shared),
        }
    }
    flush_writes(conn, shared, poller, wheel);
}

/// Serializes one progress frame onto the write queue, or drops it.
/// Progress is advisory: it holds no in-flight slot and is never owed, so a
/// v1 peer, a broken sink or a draining connection just drops it (counted).
fn queue_progress(
    conn: &mut Conn,
    request_id: u64,
    update: crate::ProgressUpdate,
    shared: &Arc<ServerShared>,
) {
    if conn.version >= 2 && !conn.sink_broken && conn.state == ConnState::Established {
        conn.writes.push_frame(
            &Frame::Progress { request_id, update },
            false,
            &shared.metrics,
        );
        shared.metrics.progress_frame_delivered();
    } else {
        shared.metrics.progress_frame_dropped();
    }
}

/// Flushes the write queue, updates interest/timers, and completes a drain
/// when everything owed has been settled.
fn flush_writes(
    conn: &mut Conn,
    shared: &Arc<ServerShared>,
    poller: &mut Poller,
    wheel: &mut TimerWheel,
) {
    if conn.state == ConnState::Closed {
        return;
    }
    if !conn.sink_broken && !conn.writes.is_empty() {
        let tel = shared.metrics.telemetry();
        let flush_started = tel.enabled().then(Instant::now);
        let bytes_before = conn.writes.bytes;
        let (replies, outcome) = conn.writes.flush(&mut conn.stream, &shared.metrics);
        conn.in_flight = conn.in_flight.saturating_sub(replies);
        if conn.writes.bytes < bytes_before {
            // Any bytes accepted count as progress for the stall timer;
            // Blocked with zero bytes written does not.
            conn.last_write_progress = Instant::now();
            if let Some(t0) = flush_started {
                tel.record(Stage::ReactorFlush, t0.elapsed());
            }
        }
        match outcome {
            FlushOutcome::Drained => {}
            FlushOutcome::Blocked => {
                if !conn.write_timer_armed {
                    conn.write_timer_armed = true;
                    conn.write_gen += 1;
                    wheel.insert(
                        conn.last_write_progress + shared.config.write_timeout,
                        conn.token,
                        TimerKind::WriteStall,
                        conn.write_gen,
                    );
                }
            }
            FlushOutcome::Broken => {
                mark_sink_broken(conn, shared, poller, wheel);
                return;
            }
        }
    }
    update_interest(conn, poller);
    maybe_finish_drain(conn, shared, poller);
}

/// The socket can no longer be written: tear it down, discard queued bytes,
/// and keep draining reply accounting without writing.
fn mark_sink_broken(
    conn: &mut Conn,
    shared: &Arc<ServerShared>,
    poller: &mut Poller,
    wheel: &mut TimerWheel,
) {
    if conn.sink_broken {
        return;
    }
    conn.sink_broken = true;
    // Nothing can ever reach the peer again — orphaned jobs may as well
    // find out now instead of at close time.
    conn.peer_alive.store(false, Ordering::SeqCst);
    let discarded = conn.writes.discard(&shared.metrics);
    conn.in_flight = conn.in_flight.saturating_sub(discarded);
    let _ = conn.stream.shutdown(Shutdown::Both);
    if conn.state != ConnState::Draining {
        enter_draining(conn, shared, poller, wheel);
    } else {
        maybe_finish_drain(conn, shared, poller);
    }
}

/// Stops reading and submitting; the connection now exists only to settle
/// its owed replies.
fn enter_draining(
    conn: &mut Conn,
    shared: &Arc<ServerShared>,
    poller: &mut Poller,
    wheel: &mut TimerWheel,
) {
    if !matches!(conn.state, ConnState::Handshaking | ConnState::Established) {
        return;
    }
    conn.state = ConnState::Draining;
    if conn.counts_submitter {
        conn.counts_submitter = false;
        shared.submitters_dec();
    }
    let _ = conn.stream.shutdown(Shutdown::Read);
    // Catch completions that were posted before this transition.
    pump_replies(conn, shared, poller, wheel);
}

/// Draining completes when nothing is owed: no in-flight jobs and either a
/// flushed queue or a broken sink.
fn maybe_finish_drain(conn: &mut Conn, shared: &Arc<ServerShared>, poller: &mut Poller) {
    if conn.state == ConnState::Draining
        && conn.in_flight == 0
        && (conn.writes.is_empty() || conn.sink_broken)
    {
        close_conn(conn, shared, poller);
    }
}

/// Terminal: releases the fd, the session slot and the gauges.
fn close_conn(conn: &mut Conn, shared: &Arc<ServerShared>, poller: &mut Poller) {
    if conn.state == ConnState::Closed {
        return;
    }
    conn.state = ConnState::Closed;
    conn.peer_alive.store(false, Ordering::SeqCst);
    if poller.deregister(conn.stream.as_raw_fd()).is_ok() {
        shared.metrics.reactor_fd_deregistered();
    }
    let _ = conn.stream.shutdown(Shutdown::Both);
    let discarded = conn.writes.discard(&shared.metrics);
    conn.in_flight = conn.in_flight.saturating_sub(discarded);
    // Settle whatever the workers posted that will never reach the wire:
    // replies free their slots, progress frames count as dropped. (Sends
    // that race past this drain fail once the channel's receiver is gone
    // and are counted dropped at the send site.)
    while let Ok((_, msg)) = conn.replies_rx.try_recv() {
        match msg {
            RoutedMsg::Reply(_) => conn.in_flight = conn.in_flight.saturating_sub(1),
            RoutedMsg::Progress(_) => shared.metrics.progress_frame_dropped(),
        }
    }
    conn.traces.clear();
    conn.cancels.clear();
    if conn.counts_submitter {
        conn.counts_submitter = false;
        shared.submitters_dec();
    }
    shared.release_conn(conn.counts_session_open);
    conn.counts_session_open = false;
}

/// Re-registers the socket when the wanted interest changed: reads while
/// the state machine accepts frames, writes while bytes are queued.
fn update_interest(conn: &mut Conn, poller: &mut Poller) {
    if conn.state == ConnState::Closed {
        return;
    }
    let want = Interest {
        readable: matches!(conn.state, ConnState::Handshaking | ConnState::Established),
        writable: !conn.writes.is_empty() && !conn.sink_broken,
    };
    if want != conn.interest
        && poller
            .reregister(conn.stream.as_raw_fd(), conn.token, want)
            .is_ok()
    {
        conn.interest = want;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ServiceMetrics;
    use std::io::Read;
    use std::net::TcpListener;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn write_queue_flushes_split_replies_bitwise_like_whole_frames() {
        use amalgam_nn::metrics::History;
        let metrics = ServiceMetrics::new();
        let (mut server_side, mut client_side) = loopback_pair();
        let result = JobResult {
            job_id: 3,
            trained_model: Bytes::from(vec![9u8; 1000]),
            history: History::new(),
            bytes_received: 1,
            bytes_sent: 2,
            train_seconds: 0.1,
        };
        let mut q = WriteQueue::default();
        assert!(q.push_reply_ok(3, result.to_bytes(), None, &metrics));
        loop {
            let (_, outcome) = q.flush(&mut server_side, &metrics);
            match outcome {
                FlushOutcome::Drained => break,
                FlushOutcome::Blocked => std::thread::sleep(Duration::from_millis(1)),
                FlushOutcome::Broken => panic!("loopback write broke"),
            }
        }
        assert_eq!(q.bytes, 0);

        let mut expect = Vec::new();
        frame::write_frame(
            &mut expect,
            &Frame::Reply {
                request_id: 3,
                result: Ok(result),
                trace: None,
            },
        )
        .unwrap();
        let mut got = vec![0u8; expect.len()];
        client_side.read_exact(&mut got).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn write_queue_survives_one_byte_at_a_time_sinks() {
        // Stuttering sink: accepts one byte, then WouldBlocks, alternating —
        // the slow-loris of the write side. Every boundary must be safe.
        struct Stutter {
            out: Vec<u8>,
            ready: bool,
        }
        impl Write for Stutter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.ready {
                    self.ready = false;
                    self.out.push(buf[0]);
                    Ok(1)
                } else {
                    self.ready = true;
                    Err(std::io::Error::from(ErrorKind::WouldBlock))
                }
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let metrics = ServiceMetrics::new();
        let mut q = WriteQueue::default();
        q.push_frame(&Frame::Pong { nonce: 7 }, false, &metrics);
        q.push_frame(
            &Frame::Reply {
                request_id: 1,
                result: Err(CloudError::ServiceUnavailable),
                trace: None,
            },
            true,
            &metrics,
        );

        let mut sink = Stutter {
            out: Vec::new(),
            ready: false,
        };
        let mut reply_frames = 0;
        // Emulate flush() against a generic Write (flush() itself wants a
        // TcpStream, so drive the queue's chunks directly).
        while let Some(front) = q.q.front_mut() {
            if front.pos < front.buf.len() {
                match sink.write(&front.buf[front.pos..]) {
                    Ok(n) => {
                        front.pos += n;
                        q.bytes -= n;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            if front.pos == front.buf.len() {
                if matches!(front.end_of_frame, Some((_, true))) {
                    reply_frames += 1;
                }
                q.q.pop_front();
            }
        }
        assert_eq!(reply_frames, 1);
        assert_eq!(q.bytes, 0);

        let mut expect = Vec::new();
        frame::write_frame(&mut expect, &Frame::Pong { nonce: 7 }).unwrap();
        frame::write_frame(
            &mut expect,
            &Frame::Reply {
                request_id: 1,
                result: Err(CloudError::ServiceUnavailable),
                trace: None,
            },
        )
        .unwrap();
        assert_eq!(sink.out, expect);
    }

    #[test]
    fn discarding_a_queue_frees_reply_slots_and_the_gauge() {
        let metrics = ServiceMetrics::new();
        let mut q = WriteQueue::default();
        q.push_frame(&Frame::Pong { nonce: 1 }, false, &metrics);
        q.push_reply_ok(2, Bytes::from_static(b"not a real result"), None, &metrics);
        q.push_frame(
            &Frame::Reply {
                request_id: 3,
                result: Err(CloudError::ServiceUnavailable),
                trace: None,
            },
            true,
            &metrics,
        );
        assert!(metrics.snapshot().reactor_write_queue_bytes > 0);
        let replies = q.discard(&metrics);
        assert_eq!(replies, 2);
        assert_eq!(metrics.snapshot().reactor_write_queue_bytes, 0);
        assert!(q.is_empty());
    }
}
