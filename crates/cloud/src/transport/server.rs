//! The TCP front of a [`CloudService`]: bounded acceptor, per-session
//! reader/writer threads, and graceful drain on shutdown.
//!
//! Each accepted connection is one *session*: the reader thread performs
//! the handshake, then feeds framed [`Frame::Submit`]s into the service's
//! shared job queue via the multiplexed reply path
//! (`CloudClient::submit_routed`); the writer thread forwards completions —
//! in whatever order the pool finishes them — back as [`Frame::Reply`]s.
//! The middleware stack sees remote jobs exactly as it sees in-process
//! ones, plus the session's API key and [`crate::SessionKey`] in the job
//! context,
//! so per-session rate limits and DRR fairness apply to remote traffic with
//! no transport-specific code: a QoS rejection (`RateLimited`,
//! `Overloaded`) is just an error outcome riding the same Reply frame,
//! tallied against the session in [`ServiceStats::sessions`].
//!
//! The transport's own per-connection in-flight cap is judged here (it is
//! connection state, not payload state); its sheds are counted per session
//! too.

use super::frame::{self, read_frame_resumable, write_frame, Frame, ServerRead};
use super::{TransportConfig, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use crate::metrics::{ServiceMetrics, ServiceStats};
use crate::protocol::JobResult;
use crate::service::{CloudClient, CloudService};
use crate::CloudError;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use parking_lot::Mutex;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Granularity at which blocked reads/writes re-check stop flags and idle
/// deadlines.
const TICK: Duration = Duration::from_millis(20);

/// Write bound for pre-handshake refusals, where no session config has
/// been negotiated yet (established sessions use
/// [`TransportConfig::write_timeout`]).
const REJECT_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// A [`CloudService`] behind a real TCP listener.
///
/// ```no_run
/// use amalgam_cloud::{CloudServer, CloudService, RemoteCloudClient};
///
/// let service = CloudService::builder().workers(2).build();
/// let server = CloudServer::bind(service, "127.0.0.1:0").unwrap();
/// let client = RemoteCloudClient::connect(server.local_addr()).unwrap();
/// // … client.submit(&job) …
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct CloudServer {
    shared: Arc<ServerShared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    service: Option<CloudService>,
    local_addr: SocketAddr,
}

#[derive(Debug)]
struct ServerShared {
    stop: AtomicBool,
    config: TransportConfig,
    client: CloudClient,
    metrics: Arc<ServiceMetrics>,
    conns: Mutex<Vec<ConnHandle>>,
    /// Sessions whose reader may still submit jobs. Shutdown waits for this
    /// to hit zero before draining the service, so no submission can race
    /// past the drain and strand a request id.
    readers_active: AtomicUsize,
    /// Sessions counted against [`TransportConfig::max_connections`].
    sessions: AtomicUsize,
}

#[derive(Debug)]
struct ConnHandle {
    /// Clone of the session's socket, kept so shutdown can unblock the
    /// reader immediately instead of waiting out a tick.
    stream: TcpStream,
    thread: std::thread::JoinHandle<()>,
}

impl CloudServer {
    /// Binds `addr` (use port 0 for an ephemeral port) in front of
    /// `service` with the default [`TransportConfig`].
    ///
    /// # Errors
    ///
    /// Returns the listener's I/O error; the service is dropped (and thus
    /// cleanly shut down) in that case.
    pub fn bind(service: CloudService, addr: impl ToSocketAddrs) -> std::io::Result<CloudServer> {
        CloudServer::bind_with(service, addr, TransportConfig::default())
    }

    /// [`bind`](Self::bind) with explicit transport tunables.
    ///
    /// # Errors
    ///
    /// Returns the listener's I/O error.
    pub fn bind_with(
        service: CloudService,
        addr: impl ToSocketAddrs,
        config: TransportConfig,
    ) -> std::io::Result<CloudServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            stop: AtomicBool::new(false),
            config,
            client: service.client(),
            metrics: service.metrics_arc(),
            conns: Mutex::new(Vec::new()),
            readers_active: AtomicUsize::new(0),
            sessions: AtomicUsize::new(0),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cloud-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(CloudServer {
            shared,
            acceptor: Some(acceptor),
            service: Some(service),
            local_addr,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Point-in-time service + transport telemetry.
    pub fn stats(&self) -> ServiceStats {
        self.shared.metrics.snapshot()
    }

    /// An in-process client of the same service the listener fronts —
    /// useful for comparing remote and local submissions of one pool.
    pub fn local_client(&self) -> CloudClient {
        self.service
            .as_ref()
            .expect("service present until shutdown")
            .client()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.shared.sessions.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, stop reading, drain every job
    /// already accepted (they train to completion), answer all stranded
    /// request ids, flush the replies, then close the sockets.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        let Some(service) = self.service.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // No new sessions; now unblock every reader mid-read. Readers stop
        // submitting, but their sessions' writers keep forwarding replies.
        let conns: Vec<ConnHandle> = std::mem::take(&mut *self.shared.conns.lock());
        for conn in &conns {
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        while self.shared.readers_active.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // All submissions have happened; the service drain below therefore
        // answers every routed reply — completed jobs with results, jobs it
        // never reached with ServiceUnavailable.
        service.shutdown();
        for conn in conns {
            let _ = conn.thread.join();
        }
    }
}

impl Drop for CloudServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap sessions that already ended (their threads are done;
                // dropping the handle just detaches a finished thread).
                shared.conns.lock().retain(|c| !c.thread.is_finished());
                let _ = stream.set_nonblocking(false);
                if shared.sessions.load(Ordering::SeqCst) >= shared.config.max_connections {
                    shared.metrics.conn_rejected();
                    reject(stream, "server at connection capacity");
                    continue;
                }
                shared.sessions.fetch_add(1, Ordering::SeqCst);
                shared.readers_active.fetch_add(1, Ordering::SeqCst);
                let conn_stream = match stream.try_clone() {
                    Ok(clone) => clone,
                    Err(_) => {
                        shared.sessions.fetch_sub(1, Ordering::SeqCst);
                        shared.readers_active.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                };
                let thread = {
                    let shared = Arc::clone(shared);
                    std::thread::Builder::new()
                        .name("cloud-session".into())
                        .spawn(move || run_session(stream, &shared))
                        .expect("spawn session")
                };
                shared.conns.lock().push(ConnHandle {
                    stream: conn_stream,
                    thread,
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Best-effort pre-handshake refusal.
fn reject(mut stream: TcpStream, reason: &str) {
    let _ = stream.set_write_timeout(Some(REJECT_WRITE_TIMEOUT));
    let _ = write_frame(
        &mut stream,
        &Frame::Reject {
            reason: reason.into(),
        },
    );
}

/// Decrements the reader gauge even if the session path unwinds.
struct ReaderGuard<'a>(&'a ServerShared);

impl Drop for ReaderGuard<'_> {
    fn drop(&mut self) {
        self.0.readers_active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn run_session(mut stream: TcpStream, shared: &Arc<ServerShared>) {
    let config = &shared.config;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_write_timeout(Some(config.write_timeout));

    // ---- Handshake (still under the reader guard: shutdown must wait out
    // a session that is about to start submitting).
    let reader = ReaderGuard(shared);
    let hello = match read_frame_resumable(
        &mut stream,
        config.max_frame_len,
        config.handshake_timeout,
        &shared.stop,
    ) {
        Ok(ServerRead::Frame(frame, wire_len)) => {
            shared.metrics.frame_received(wire_len);
            frame
        }
        // Malformed or oversized openers are rejections; a peer that just
        // disconnects (port scan, health check) or a shutdown mid-handshake
        // is not.
        Err(_) => {
            shared.metrics.conn_rejected();
            shared.sessions.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        Ok(ServerRead::Closed | ServerRead::IdleTimeout | ServerRead::Stopped) => {
            shared.sessions.fetch_sub(1, Ordering::SeqCst);
            return;
        }
    };
    let (auth, version): (Option<Arc<str>>, u32) = match hello {
        Frame::Hello {
            min_version,
            max_version,
            api_key,
        } => {
            let version = PROTOCOL_VERSION.min(max_version);
            if version < MIN_PROTOCOL_VERSION.max(min_version) {
                shared.metrics.conn_rejected();
                shared.sessions.fetch_sub(1, Ordering::SeqCst);
                let _ = write_frame(
                    &mut stream,
                    &Frame::Reject {
                        reason: format!(
                            "no common protocol version (server speaks \
                             {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}, \
                             client {min_version}..={max_version})"
                        ),
                    },
                );
                return;
            }
            (api_key.map(|k| Arc::from(k.into_boxed_str())), version)
        }
        _ => {
            shared.metrics.conn_rejected();
            shared.sessions.fetch_sub(1, Ordering::SeqCst);
            reject(stream, "expected Hello");
            return;
        }
    };
    let welcome = Frame::Welcome {
        version,
        max_in_flight: config.max_in_flight as u32,
        max_frame_len: config.max_frame_len as u64,
    };
    match write_frame(&mut stream, &welcome) {
        Ok(n) => shared.metrics.frame_sent(n),
        Err(_) => {
            shared.metrics.conn_rejected();
            shared.sessions.fetch_sub(1, Ordering::SeqCst);
            return;
        }
    }
    shared.metrics.conn_opened();
    // One scheduling/rate-limiting identity for everything this connection
    // submits: the handshake's API key, or a fresh anonymous session.
    let session_client = shared.client.for_transport_session(auth);

    // ---- Session: reader (this thread) + writer thread, multiplexed over
    // one shared reply channel keyed by request id.
    let write_half = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => {
            shared.metrics.conn_closed();
            shared.sessions.fetch_sub(1, Ordering::SeqCst);
            return;
        }
    };
    let (replies_tx, replies_rx) = unbounded::<(u64, Result<JobResult, CloudError>)>();
    let in_flight = Arc::new(AtomicUsize::new(0));
    let reader_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let write_half = Arc::clone(&write_half);
        let in_flight = Arc::clone(&in_flight);
        let reader_done = Arc::clone(&reader_done);
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("cloud-session-writer".into())
            .spawn(move || writer_loop(&write_half, &replies_rx, &in_flight, &reader_done, &shared))
            .expect("spawn session writer")
    };

    // Malformed/oversized frames, disconnects, idle sessions and server
    // shutdown all end the session (any non-`Frame` read outcome falls out
    // of the loop); in-flight jobs still get their replies flushed by the
    // writer afterwards.
    while let Ok(ServerRead::Frame(frame, wire_len)) = read_frame_resumable(
        &mut stream,
        config.max_frame_len,
        config.idle_timeout,
        &shared.stop,
    ) {
        shared.metrics.frame_received(wire_len);
        match frame {
            Frame::Submit {
                request_id,
                payload,
            } => {
                let now_in_flight = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                if now_in_flight > config.max_in_flight {
                    // Refused submits flow through the same reply channel,
                    // keeping the increment/decrement accounting 1:1, and
                    // are tallied as sheds against this session.
                    shared.metrics.session_shed(session_client.session_key());
                    let _ = replies_tx.send((
                        request_id,
                        Err(CloudError::Overloaded {
                            queue_depth: now_in_flight - 1,
                            max_queue_depth: config.max_in_flight,
                        }),
                    ));
                } else if let Err(e) =
                    session_client.submit_routed(payload, request_id, replies_tx.clone())
                {
                    let _ = replies_tx.send((request_id, Err(e)));
                }
            }
            Frame::Ping { nonce } => {
                let mut w = write_half.lock();
                match write_frame(&mut *w, &Frame::Pong { nonce }) {
                    Ok(n) => shared.metrics.frame_sent(n),
                    Err(_) => {
                        // A failed (possibly partial) Pong leaves the byte
                        // stream at an unknown offset — same hazard the
                        // writer guards against. Kill the socket so the
                        // writer's next write fails into its sink_broken
                        // path instead of desyncing the framing, and stop
                        // accepting submits.
                        let _ = w.shutdown(Shutdown::Both);
                        drop(w);
                        break;
                    }
                }
            }
            Frame::Goodbye => break,
            // A second Hello or a server-side frame is a protocol violation.
            _ => break,
        }
    }
    drop(reader); // shutdown may proceed: this session submits nothing more
    drop(replies_tx);
    reader_done.store(true, Ordering::SeqCst);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
    shared.metrics.conn_closed();
    shared.sessions.fetch_sub(1, Ordering::SeqCst);
}

/// Forwards completions (in completion order, tagged by request id) until
/// the reader is done *and* nothing is left in flight. Every accepted
/// submit is eventually answered — by a worker, by the admission path, or
/// by the service's shutdown drain — so this loop always terminates.
fn writer_loop(
    write_half: &Mutex<TcpStream>,
    replies: &Receiver<(u64, Result<JobResult, CloudError>)>,
    in_flight: &AtomicUsize,
    reader_done: &AtomicBool,
    shared: &ServerShared,
) {
    // Once one frame write fails (stalled peer, timed-out partial write)
    // the byte stream can no longer be trusted to be at a frame boundary:
    // writing anything more would desync the framing. Tear the socket down
    // (which also stops the reader accepting submits) and keep draining
    // replies without writing, so in-flight accounting still reaches zero.
    let mut sink_broken = false;
    loop {
        match replies.recv_timeout(TICK) {
            Ok((request_id, mut result)) => {
                if let Ok(r) = &mut result {
                    // Parity with in-process handles: the result's id is the
                    // id the caller's handle carries (its wire request id),
                    // not the server pool's internal one.
                    r.job_id = request_id;
                }
                if !sink_broken {
                    let written = match result {
                        // The dominant frame is a trained model; split the
                        // write so the result bytes go out without being
                        // copied into a frame-body buffer first.
                        Ok(r) => {
                            let body = r.to_bytes();
                            let head = frame::reply_ok_head(request_id, body.len());
                            let mut w = write_half.lock();
                            frame::write_split(&mut *w, &head, &body)
                        }
                        Err(_) => {
                            let frame = Frame::Reply { request_id, result };
                            let mut w = write_half.lock();
                            write_frame(&mut *w, &frame)
                        }
                    };
                    match written {
                        Ok(n) => shared.metrics.frame_sent(n),
                        Err(_) => {
                            sink_broken = true;
                            let _ = write_half.lock().shutdown(Shutdown::Both);
                        }
                    }
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            Err(RecvTimeoutError::Timeout) => {
                if reader_done.load(Ordering::SeqCst) && in_flight.load(Ordering::SeqCst) == 0 {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_binds_ephemeral_port_and_shuts_down() {
        let service = CloudService::builder().workers(1).build();
        let server = CloudServer::bind(service, "127.0.0.1:0").unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.session_count(), 0);
        server.shutdown();
    }
}
