//! The TCP front of a [`CloudService`]: bounded acceptor, a small pool of
//! reactor (event-loop) threads, and graceful drain on shutdown.
//!
//! Each accepted connection is one *session*, owned by exactly one reactor
//! thread — there are no per-connection threads. The reactor decodes
//! [`Frame::Submit`]s as their bytes arrive and feeds them into the
//! service's shared job queue via the multiplexed reply path
//! (`CloudClient::submit_routed`); completions — in whatever order the pool
//! finishes them — wake the owning reactor, which frames them back as
//! [`Frame::Reply`]s through the connection's write queue. The middleware
//! stack sees remote jobs exactly as it sees in-process ones, plus the
//! session's API key and [`crate::SessionKey`] in the job context, so
//! per-session rate limits and DRR fairness apply to remote traffic with no
//! transport-specific code: a QoS rejection (`RateLimited`, `Overloaded`)
//! is just an error outcome riding the same Reply frame, tallied against
//! the session in [`ServiceStats::sessions`].
//!
//! The transport's own per-connection in-flight cap is judged in the
//! reactor (it is connection state, not payload state); its sheds are
//! counted per session too, and queued-but-unflushed replies hold their
//! in-flight slots so a peer that stops reading stops being allowed to
//! submit. The connection state machine, write-queue backpressure and
//! timer handling live in the sibling `event_loop` module.

use super::event_loop::{make_reactor_parts, spawn_reactor, ReactorShared};
use super::frame::{write_frame, Frame};
use super::TransportConfig;
use crate::metrics::{ServiceMetrics, ServiceStats};
use crate::service::{CloudClient, CloudService};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Write bound for pre-handshake refusals issued by the acceptor itself,
/// where no session config has been negotiated yet (established sessions
/// use [`TransportConfig::write_timeout`] via the reactor's stall timer).
const REJECT_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// A [`CloudService`] behind a real TCP listener.
///
/// ```no_run
/// use amalgam_cloud::{CloudServer, CloudService, RemoteCloudClient};
///
/// let service = CloudService::builder().workers(2).build();
/// let server = CloudServer::bind(service, "127.0.0.1:0").unwrap();
/// let client = RemoteCloudClient::connect(server.local_addr()).unwrap();
/// // … client.submit(&job) …
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct CloudServer {
    shared: Arc<ServerShared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    reactors: Vec<std::thread::JoinHandle<()>>,
    service: Option<CloudService>,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
}

/// State shared by the acceptor, the reactors and the shutdown path.
#[derive(Debug)]
pub(super) struct ServerShared {
    pub(super) stop: AtomicBool,
    pub(super) config: TransportConfig,
    pub(super) client: CloudClient,
    pub(super) metrics: Arc<ServiceMetrics>,
    /// Accepted API keys, for the `GetStats` authorization check (`None`
    /// when the service takes anonymous sessions — then any established
    /// session may ask).
    pub(super) api_keys: Option<Arc<[String]>>,
    /// One handle per reactor thread; connections are dealt round-robin.
    pub(super) reactors: Vec<Arc<ReactorShared>>,
    /// Connections that may still submit jobs (handshaking or established).
    /// Shutdown waits for this to hit zero before draining the service, so
    /// no submission can race past the drain and strand a request id.
    submitters: AtomicUsize,
    /// Connections counted against [`TransportConfig::max_connections`].
    sessions: AtomicUsize,
}

impl ServerShared {
    /// A connection left the states that can submit.
    pub(super) fn submitters_dec(&self) {
        self.submitters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Releases a connection's session slot; `session_open` says whether
    /// its handshake succeeded (so a `conn_closed` is owed).
    pub(super) fn release_conn(&self, session_open: bool) {
        if session_open {
            self.metrics.conn_closed();
        }
        self.sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

impl CloudServer {
    /// Binds `addr` (use port 0 for an ephemeral port) in front of
    /// `service` with the default [`TransportConfig`].
    ///
    /// # Errors
    ///
    /// Returns the listener's I/O error; the service is dropped (and thus
    /// cleanly shut down) in that case.
    pub fn bind(service: CloudService, addr: impl ToSocketAddrs) -> std::io::Result<CloudServer> {
        CloudServer::bind_with(service, addr, TransportConfig::default())
    }

    /// [`bind`](Self::bind) with explicit transport tunables.
    ///
    /// # Errors
    ///
    /// Returns the listener's (or reactor setup's) I/O error.
    pub fn bind_with(
        service: CloudService,
        addr: impl ToSocketAddrs,
        config: TransportConfig,
    ) -> std::io::Result<CloudServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        // The Prometheus exporter is served by reactor 0's poller — a second
        // nonblocking listener, not a second thread.
        let exporter = match service.metrics_exporter_addr() {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = match &exporter {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let io_threads = config.effective_io_threads();
        let (handles, parts) = make_reactor_parts(io_threads)?;
        let shared = Arc::new(ServerShared {
            stop: AtomicBool::new(false),
            config,
            client: service.client(),
            metrics: service.metrics_arc(),
            api_keys: service.api_keys(),
            reactors: handles,
            submitters: AtomicUsize::new(0),
            sessions: AtomicUsize::new(0),
        });
        let mut reactors = Vec::with_capacity(io_threads);
        let mut exporter = exporter;
        for (i, (wake_rx, poller)) in parts.into_iter().enumerate() {
            reactors.push(spawn_reactor(
                i,
                Arc::clone(&shared),
                Arc::clone(&shared.reactors[i]),
                wake_rx,
                poller,
                exporter.take(),
            ));
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cloud-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(CloudServer {
            shared,
            acceptor: Some(acceptor),
            reactors,
            service: Some(service),
            local_addr,
            metrics_addr,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Where the Prometheus exporter listens (ephemeral port resolved), if
    /// [`crate::CloudServiceBuilder::metrics_exporter`] configured one.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Point-in-time service + transport telemetry.
    pub fn stats(&self) -> ServiceStats {
        self.shared.metrics.snapshot()
    }

    /// The fronted service's telemetry plane: per-stage histograms and the
    /// flight recorder holding the backend tier's view of each trace.
    pub fn telemetry(&self) -> &crate::telemetry::Telemetry {
        self.shared.metrics.telemetry()
    }

    /// An in-process client of the same service the listener fronts —
    /// useful for comparing remote and local submissions of one pool.
    pub fn local_client(&self) -> CloudClient {
        self.service
            .as_ref()
            .expect("service present until shutdown")
            .client()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.shared.sessions.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, stop reading, drain every job
    /// already accepted (they train to completion), answer all stranded
    /// request ids, flush the replies, then close the sockets.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        let Some(service) = self.service.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // No new connections; wake every reactor so it observes the stop
        // flag, kills handshakes and moves established sessions to
        // Draining — after which the submitter gauge can only fall.
        for reactor in &self.shared.reactors {
            reactor.kick(&self.shared.metrics);
        }
        while self.shared.submitters.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // All submissions have happened; the service drain below therefore
        // answers every routed reply — completed jobs with results, jobs it
        // never reached with ServiceUnavailable. Each answer wakes its
        // owning reactor, which flushes it and closes the connection once
        // nothing is owed; reactors exit when their last connection closes.
        service.shutdown();
        for reactor in self.reactors.drain(..) {
            let _ = reactor.join();
        }
    }
}

impl Drop for CloudServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut next_reactor = 0usize;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.sessions.load(Ordering::SeqCst) >= shared.config.max_connections {
                    shared.metrics.conn_rejected();
                    reject(stream, "server at connection capacity");
                    continue;
                }
                shared.sessions.fetch_add(1, Ordering::SeqCst);
                shared.submitters.fetch_add(1, Ordering::SeqCst);
                shared.reactors[next_reactor % shared.reactors.len()]
                    .enqueue_conn(stream, &shared.metrics);
                next_reactor = next_reactor.wrapping_add(1);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5))
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Best-effort capacity refusal, written synchronously from the acceptor
/// (the connection never reaches a reactor).
fn reject(mut stream: TcpStream, reason: &str) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(REJECT_WRITE_TIMEOUT));
    let _ = write_frame(
        &mut stream,
        &Frame::Reject {
            reason: reason.into(),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_binds_ephemeral_port_and_shuts_down() {
        let service = CloudService::builder().workers(1).build();
        let server = CloudServer::bind(service, "127.0.0.1:0").unwrap();
        assert_ne!(server.local_addr().port(), 0);
        assert_eq!(server.session_count(), 0);
        server.shutdown();
    }
}
