//! The real wire: length-prefixed TCP framing, sessions and multiplexed
//! remote clients in front of the in-process middleware stack.
//!
//! The paper's trust boundary is a network — clients upload augmented
//! models and tensors to an untrusted provider. This module puts the
//! [`crate::CloudService`] behind an actual socket: a [`CloudServer`] binds
//! a listener and feeds framed jobs into the same queue in-process clients
//! use, and a [`RemoteCloudClient`] offers the familiar
//! submit/[`RemoteJobHandle`] API over one multiplexed connection. The same
//! job submitted over loopback and in-process produces bitwise-identical
//! trained-model bytes.
//!
//! # Framing
//!
//! Every message is one *frame*:
//!
//! ```text
//! frame := len: u32 LE | body (len bytes)
//! body  := tag: u8 | fields (wire::Writer encoding: LE scalars,
//!                            u32-length-prefixed strings/blobs/lists)
//! ```
//!
//! `len` is capped by [`TransportConfig::max_frame_len`] **before** any
//! allocation, so an adversarial length prefix cannot OOM either peer.
//! Frame bodies, client → server:
//!
//! | tag | frame | fields |
//! |-----|----------|---------------------------------------------------|
//! | 1 | `Hello`   | `min_version: u32`, `max_version: u32`, `has_key: u8`, `api_key: str?` |
//! | 2 | `Submit`  | `request_id: u64`, `payload: bytes` (a serialized [`crate::CloudJob`]), `[trace]` |
//! | 3 | `Ping`    | `nonce: u64` |
//! | 4 | `Goodbye` | — |
//! | 5 | `GetStats`| `request_id: u64` (protocol ≥ 2) |
//! | 6 | `Cancel`  | `request_id: u64` (protocol ≥ 2) |
//!
//! and server → client:
//!
//! | tag | frame | fields |
//! |-----|-----------|--------------------------------------------------|
//! | 129 | `Welcome` | `version: u32`, `max_in_flight: u32`, `max_frame_len: u64` |
//! | 130 | `Reject`  | `reason: str` |
//! | 131 | `Reply`   | `request_id: u64`, `ok: u8`, then a [`crate::JobResult`] or an encoded [`crate::CloudError`], `[trace]` |
//! | 132 | `Pong`    | `nonce: u64` |
//! | 133 | `Stats`   | `request_id: u64`, `ok: u8`, then snapshot `bytes` ([`crate::ServiceStats`] encoding) or an encoded [`crate::CloudError`] (protocol ≥ 2) |
//! | 134 | `Progress`| `request_id: u64`, `epoch: u64`, `total_epochs: u64`, `train_loss: f32`, `train_acc: f32` (protocol ≥ 2) |
//!
//! Unused tags `6..=127` (client → server) and `134..=255` (server →
//! client) are *reserved extension ranges*: a decoder that meets an
//! unknown tag there skips the whole frame (its length prefix bounds it)
//! instead of failing the connection. `Cancel` and `Progress` were added
//! through exactly this rule, and peers that negotiated protocol 1 are
//! additionally never sent either frame.
//!
//! `[trace]` is the protocol-v2 trace-id extension: 16 optional trailing
//! bytes (`trace_hi: u64 LE`, `trace_lo: u64 LE`) after the v1 body. A
//! body ending exactly where a v1 body ends carries no trace; a body with
//! exactly 16 extra bytes carries one. The extension is only sent to
//! peers that negotiated protocol ≥ 2, so v1 decoders — which reject
//! trailing bytes — never see it. The same [`crate::TraceId`] minted at
//! submit time rides the Submit through the proxy to the backend and back
//! on the Reply, indexing flight-recorder spans at every tier.
//!
//! # Handshake and sessions
//!
//! A session starts with exactly one `Hello`, carrying the client's
//! supported protocol-version range and (optionally) its API key. The
//! server negotiates `version = min(server_max, client_max)` and answers
//! `Welcome` if that version is inside both ranges, `Reject` otherwise.
//! The `Welcome` also tells the client the session limits it must respect:
//! the per-connection in-flight cap and the server's frame-length cap.
//!
//! After the handshake the client may pipeline any number of `Submit`
//! frames; replies are matched by `request_id` and may arrive **out of
//! order** (the pool schedules jobs FIFO across workers, but jobs finish
//! whenever they finish). More than
//! [`TransportConfig::max_in_flight`] unanswered submits on one connection
//! are refused immediately with [`crate::CloudError::Overloaded`]. A
//! connection silent for longer than [`TransportConfig::idle_timeout`] is
//! closed; [`RemoteCloudClient`] sends keep-alive `Ping`s (answered with
//! `Pong`) so an idle but live session stays up. The session's API key is
//! *session* state: it is stamped onto every job the connection submits and
//! judged by the [`crate::ApiKeyLayer`] middleware, never re-sent per job.
//!
//! Sessions are also the service's QoS unit: each connection (or the API
//! key it presented) is one [`crate::SessionKey`], jobs are queued per
//! session and drained by weighted deficit round robin, and the optional
//! per-session token bucket ([`crate::CloudServiceBuilder::rate_limit`])
//! answers over-budget submits with [`crate::CloudError::RateLimited`] —
//! the `retry_after_ms` rides the Reply frame back to the remote handle.
//!
//! [`CloudServer::shutdown`] is graceful: the acceptor stops, sessions stop
//! reading, the service drains its queue (already-accepted jobs train to
//! completion), and every stranded request id is answered — a
//! [`RemoteJobHandle`] never hangs.

mod client;
mod event_loop;
mod frame;
mod reconnect;
mod server;
mod timer;

pub use client::{RemoteCloudClient, RemoteJobHandle};
pub use frame::{
    read_frame_blocking, write_encoded, write_frame, Frame, FrameDecoder, FrameOrigin,
};
pub use reconnect::{ClientStats, DecorrelatedJitter, ReconnectPolicy, RetryQueue};
pub use server::CloudServer;

use std::time::Duration;

/// Newest protocol version this build speaks. Version 2 adds the trace-id
/// extension on `Submit`/`Reply`, the `GetStats`/`Stats` admin frames, and
/// the streamed-lifecycle extension frames `Progress` (server → client,
/// per-epoch training progress) and `Cancel` (client → server, abandon an
/// unanswered submit); v1 peers are still accepted and simply never see
/// any of them.
pub const PROTOCOL_VERSION: u32 = 2;

/// Oldest protocol version this build still accepts.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Tunables shared by [`CloudServer`] and [`RemoteCloudClient`].
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Hard cap on one frame's body length; bigger length prefixes are
    /// rejected before any allocation (default 256 MiB).
    pub max_frame_len: usize,
    /// Unanswered submits allowed per connection before the server refuses
    /// further ones with [`crate::CloudError::Overloaded`] (default 32).
    pub max_in_flight: usize,
    /// Concurrent sessions the acceptor admits (default 64).
    pub max_connections: usize,
    /// A server-side session silent for this long is closed (default 30 s).
    pub idle_timeout: Duration,
    /// How often an otherwise-idle [`RemoteCloudClient`] pings (default
    /// 10 s; keep it under the server's `idle_timeout`).
    pub keepalive_interval: Duration,
    /// How long each side waits for the other's half of the handshake
    /// (default 5 s).
    pub handshake_timeout: Duration,
    /// Deadline on the client's TCP connect itself (default 5 s). Without
    /// it a black-holed address — a dead host, a dropped route — blocks in
    /// the OS connect for minutes before failing.
    pub connect_timeout: Duration,
    /// Self-healing policy for a [`RemoteCloudClient`]: with a policy set,
    /// a lost connection is re-dialed with decorrelated-jitter backoff and
    /// in-flight jobs are resubmitted instead of failed (default `None`,
    /// the historical fail-fast behavior). Ignored by the server.
    pub reconnect: Option<ReconnectPolicy>,
    /// Upper bound on one frame write to a stalled peer, on either side; a
    /// connection that cannot make write progress for this long is treated
    /// as broken (default 10 s).
    pub write_timeout: Duration,
    /// The API key a [`RemoteCloudClient`] presents in its `Hello`.
    pub api_key: Option<String>,
    /// Event-loop (reactor) threads the server runs; every connection is
    /// owned by exactly one of them. `0` means auto: `min(cores, 4)`
    /// (default).
    pub io_threads: usize,
}

impl Default for TransportConfig {
    fn default() -> TransportConfig {
        TransportConfig {
            max_frame_len: 256 << 20,
            max_in_flight: 32,
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            keepalive_interval: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(5),
            reconnect: None,
            write_timeout: Duration::from_secs(10),
            api_key: None,
            io_threads: 0,
        }
    }
}

impl TransportConfig {
    /// Sets the frame-length cap.
    #[must_use]
    pub fn max_frame_len(mut self, len: usize) -> TransportConfig {
        self.max_frame_len = len;
        self
    }

    /// Sets the per-connection in-flight cap.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (a session that can never submit is a bug).
    #[must_use]
    pub fn max_in_flight(mut self, n: usize) -> TransportConfig {
        assert!(n > 0, "a session needs at least one in-flight slot");
        self.max_in_flight = n;
        self
    }

    /// Sets the concurrent-session cap.
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> TransportConfig {
        self.max_connections = n;
        self
    }

    /// Sets the server-side idle timeout.
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Duration) -> TransportConfig {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the client keep-alive interval.
    #[must_use]
    pub fn keepalive_interval(mut self, interval: Duration) -> TransportConfig {
        self.keepalive_interval = interval;
        self
    }

    /// Sets the handshake timeout.
    #[must_use]
    pub fn handshake_timeout(mut self, timeout: Duration) -> TransportConfig {
        self.handshake_timeout = timeout;
        self
    }

    /// Sets the stalled-peer write timeout.
    #[must_use]
    pub fn write_timeout(mut self, timeout: Duration) -> TransportConfig {
        self.write_timeout = timeout;
        self
    }

    /// Sets the client's TCP connect deadline.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> TransportConfig {
        self.connect_timeout = timeout;
        self
    }

    /// Makes a [`RemoteCloudClient`] self-healing: see [`ReconnectPolicy`].
    #[must_use]
    pub fn reconnect(mut self, policy: ReconnectPolicy) -> TransportConfig {
        self.reconnect = Some(policy);
        self
    }

    /// Sets the API key a client presents at its handshake.
    #[must_use]
    pub fn api_key(mut self, key: impl Into<String>) -> TransportConfig {
        self.api_key = Some(key.into());
        self
    }

    /// Sets the number of server event-loop threads (`0` = auto:
    /// `min(cores, 4)`).
    #[must_use]
    pub fn io_threads(mut self, n: usize) -> TransportConfig {
        self.io_threads = n;
        self
    }

    /// The configured [`io_threads`](Self::io_threads) with `0` resolved to
    /// the auto default.
    pub fn effective_io_threads(&self) -> usize {
        if self.io_threads > 0 {
            return self.io_threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    }
}
