//! Self-healing client policy: decorrelated-jitter backoff, a monotonic
//! retry schedule, and the counters that make recovery observable.
//!
//! A [`crate::RemoteCloudClient`] given a [`ReconnectPolicy`] stops
//! treating a dead connection as the end of the session: a supervisor
//! thread re-dials and re-handshakes with [`DecorrelatedJitter`] delays,
//! resubmits every in-flight job (jobs are content-addressed, so a replay
//! dedups server-side instead of training twice), and turns
//! [`crate::CloudError::RateLimited`] replies into retries scheduled
//! *at* `retry_after` through a [`RetryQueue`] — never before it, and
//! never in a hot loop.
//!
//! The backoff is the "decorrelated jitter" scheme (Brooker, AWS
//! Architecture Blog, 2015): each delay is drawn uniformly from
//! `[base, min(cap, prev * 3)]`. Compared with plain exponential backoff
//! it keeps the fleet de-synchronized — two clients that died in the same
//! instant do not re-dial in the same instant forever after — while still
//! growing toward `cap` under sustained failure. The properties the
//! proptests pin down: every delay is inside `[base, cap]`, and a delay
//! never regresses to zero.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// How a [`crate::RemoteCloudClient`] heals a lost connection.
///
/// Passed via [`crate::TransportConfig::reconnect`]; without one the
/// client keeps its historical behavior (a dead connection fails every
/// pending and future submit with
/// [`crate::CloudError::ServiceUnavailable`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Shortest backoff between redial attempts, and the floor of every
    /// jittered delay (default 50 ms; clamped to at least 1 ms so delays
    /// can never regress to zero).
    pub base: Duration,
    /// Longest backoff between redial attempts (default 5 s; raised to
    /// `base` if configured below it).
    pub cap: Duration,
    /// Consecutive failed dials before the client gives up and fails all
    /// pending jobs; `0` means retry forever (default).
    pub max_dial_attempts: usize,
    /// Per-job budget of automatic resubmissions (after reconnects,
    /// `RateLimited` backoffs, or `ServiceUnavailable` replies) before the
    /// error is surfaced to the caller's handle (default 8).
    pub max_resubmits: u32,
    /// Seed for the jitter stream, making a client's backoff sequence
    /// deterministic and testable (default 0).
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> ReconnectPolicy {
        ReconnectPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(5),
            max_dial_attempts: 0,
            max_resubmits: 8,
            seed: 0,
        }
    }
}

impl ReconnectPolicy {
    /// Sets the backoff floor.
    #[must_use]
    pub fn base(mut self, base: Duration) -> ReconnectPolicy {
        self.base = base;
        self
    }

    /// Sets the backoff ceiling.
    #[must_use]
    pub fn cap(mut self, cap: Duration) -> ReconnectPolicy {
        self.cap = cap;
        self
    }

    /// Sets the dial-attempt budget (`0` = unlimited).
    #[must_use]
    pub fn max_dial_attempts(mut self, n: usize) -> ReconnectPolicy {
        self.max_dial_attempts = n;
        self
    }

    /// Sets the per-job resubmission budget.
    #[must_use]
    pub fn max_resubmits(mut self, n: u32) -> ReconnectPolicy {
        self.max_resubmits = n;
        self
    }

    /// Sets the jitter seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> ReconnectPolicy {
        self.seed = seed;
        self
    }

    /// The jitter stream this policy prescribes, from its first delay.
    pub fn jitter(&self) -> DecorrelatedJitter {
        DecorrelatedJitter::new(self.base, self.cap, self.seed)
    }
}

/// One step of splitmix64: a cheap, well-mixed 64-bit generator (the same
/// finalizer the client's keep-alive jitter uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Decorrelated-jitter backoff: each delay is uniform in
/// `[base, min(cap, prev * 3)]`.
///
/// Deterministic for a given seed, so tests can replay a whole sequence.
/// Guarantees for every yielded delay `d`: `base <= d <= cap`, and since
/// `base` is clamped to at least 1 ms, `d` is never zero.
#[derive(Debug, Clone)]
pub struct DecorrelatedJitter {
    base: Duration,
    cap: Duration,
    prev: Duration,
    state: u64,
}

impl DecorrelatedJitter {
    /// A fresh stream. `base` is clamped to at least 1 ms and `cap` to at
    /// least `base`, so the `[base, cap]` band is never empty or zero.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> DecorrelatedJitter {
        let base = base.max(Duration::from_millis(1));
        let cap = cap.max(base);
        DecorrelatedJitter {
            base,
            cap,
            prev: base,
            state: seed,
        }
    }

    /// Draws the next delay and advances the stream.
    pub fn next_delay(&mut self) -> Duration {
        // Upper bound: three times the previous delay, clamped into the
        // configured band. `prev` starts at `base`, so the first draw is
        // uniform in `[base, 3 * base]` (or exactly `base` if cap bites).
        let hi = self.cap.min(self.prev.saturating_mul(3)).max(self.base);
        let span = hi - self.base;
        let frac = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        let delay = self.base + span.mul_f64(frac);
        // Float rounding must not push the draw outside the band.
        let delay = delay.clamp(self.base, self.cap);
        self.prev = delay;
        delay
    }

    /// Restarts the stream at `base` (called after a successful reconnect
    /// so the next incident starts from short delays again).
    pub fn reset(&mut self) {
        self.prev = self.base;
    }

    /// The configured floor.
    pub fn base(&self) -> Duration {
        self.base
    }

    /// The configured ceiling.
    pub fn cap(&self) -> Duration {
        self.cap
    }
}

/// A min-heap of `(due, request id)` pairs: the client's schedule of
/// `retry_after`-delayed resubmissions.
///
/// The single invariant — pinned by proptests — is that
/// [`pop_due`](Self::pop_due) never yields an entry before its due
/// instant: a `RateLimited` job is retried *at or after* the server's
/// advertised `retry_after`, never early.
#[derive(Debug, Default)]
pub struct RetryQueue {
    heap: BinaryHeap<Reverse<(Instant, u64)>>,
}

impl RetryQueue {
    /// An empty schedule.
    pub fn new() -> RetryQueue {
        RetryQueue::default()
    }

    /// Schedules `id` to become due at `at`.
    pub fn schedule(&mut self, id: u64, at: Instant) {
        self.heap.push(Reverse((at, id)));
    }

    /// The earliest due instant, if anything is scheduled.
    pub fn next_due(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Pops every entry whose due instant is at or before `now`, in due
    /// order. Entries due later stay queued.
    pub fn pop_due(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        while let Some(Reverse((at, _))) = self.heap.peek() {
            if *at > now {
                break;
            }
            let Reverse((_, id)) = self.heap.pop().expect("peeked entry");
            due.push(id);
        }
        due
    }

    /// Scheduled entries not yet popped.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A point-in-time view of one client's self-healing activity and its
/// submit-to-reply round-trip latency.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Connections re-established after a loss (the first connect is not
    /// counted).
    pub reconnects: u64,
    /// Jobs written to the server more than once (after a reconnect or a
    /// scheduled retry).
    pub jobs_resubmitted: u64,
    /// Retries scheduled against a server-advertised `retry_after` or a
    /// retryable error reply.
    pub retries_scheduled: u64,
    /// Submit-to-reply round trips ([`crate::Stage::Rpc`]), microseconds.
    pub rtt: crate::telemetry::HistogramSnapshot,
}

impl std::fmt::Display for ClientStats {
    /// An aligned operator-facing table, matching the
    /// [`crate::ServiceStats`] style.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<10} reconnects {:<6} resubmitted {:<6} retries {}",
            "healing", self.reconnects, self.jobs_resubmitted, self.retries_scheduled
        )?;
        write!(
            f,
            "{:<10} n {:<8} p50 {:<8} p95 {:<8} p99 {:<8} max {} µs",
            "rpc rtt",
            self.rtt.count,
            self.rtt.quantile(0.50),
            self.rtt.quantile(0.95),
            self.rtt.quantile(0.99),
            self.rtt.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_banded() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut a = DecorrelatedJitter::new(base, cap, 7);
        let mut b = DecorrelatedJitter::new(base, cap, 7);
        for _ in 0..256 {
            let d = a.next_delay();
            assert_eq!(d, b.next_delay(), "same seed, same stream");
            assert!(d >= base && d <= cap, "delay {d:?} escaped [base, cap]");
        }
    }

    #[test]
    fn jitter_reset_restarts_from_short_delays() {
        let base = Duration::from_millis(10);
        let mut j = DecorrelatedJitter::new(base, Duration::from_secs(10), 3);
        for _ in 0..32 {
            j.next_delay();
        }
        j.reset();
        // First post-reset draw is bounded by 3 * base again.
        assert!(j.next_delay() <= base * 3);
    }

    #[test]
    fn zero_base_is_clamped_so_delays_never_vanish() {
        let mut j = DecorrelatedJitter::new(Duration::ZERO, Duration::ZERO, 0);
        for _ in 0..16 {
            assert!(j.next_delay() >= Duration::from_millis(1));
        }
    }

    #[test]
    fn retry_queue_pops_in_due_order_and_never_early() {
        let t0 = Instant::now();
        let mut q = RetryQueue::new();
        q.schedule(1, t0 + Duration::from_millis(30));
        q.schedule(2, t0 + Duration::from_millis(10));
        q.schedule(3, t0 + Duration::from_millis(20));
        assert_eq!(q.pop_due(t0), Vec::<u64>::new());
        assert_eq!(q.next_due(), Some(t0 + Duration::from_millis(10)));
        assert_eq!(q.pop_due(t0 + Duration::from_millis(20)), vec![2, 3]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(t0 + Duration::from_millis(30)), vec![1]);
        assert!(q.is_empty());
    }
}
