//! Hashed timer wheel for connection deadlines.
//!
//! The reactor arms two kinds of per-connection deadline — [`TimerKind::Idle`]
//! (handshake timeout before the session is established, keep-alive idle
//! timeout after) and [`TimerKind::WriteStall`] (no forward progress flushing
//! the write queue). Instead of one thread-per-connection `read_timeout`
//! tick, all deadlines live in one wheel per reactor thread; the wheel's
//! [`TimerWheel::next_deadline`] bounds the `epoll_wait` timeout, so an idle
//! reactor sleeps until the earliest deadline and a busy one never pays more
//! than an O(slots) scan per wake.
//!
//! Cancellation is lazy: timers carry a generation counter, and the owner
//! bumps its generation whenever the deadline moves (activity on the
//! connection, queue progress). A fired entry whose generation is stale is
//! simply dropped — no lookup or removal on the hot path.

use std::time::{Duration, Instant};

/// What a deadline means to the connection that armed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum TimerKind {
    /// Handshake deadline (pre-session) or keep-alive idle timeout
    /// (post-handshake): no bytes arrived from the peer for too long.
    Idle,
    /// The write queue is non-empty and no bytes could be flushed for the
    /// configured `write_timeout` — the peer has stopped reading.
    WriteStall,
}

/// A deadline that fell due, returned by [`TimerWheel::advance`].
#[derive(Debug, Clone, Copy)]
pub(super) struct Fired {
    /// Connection token the timer was armed for.
    pub token: u64,
    /// Which deadline fired.
    pub kind: TimerKind,
    /// Generation the timer was armed with; stale generations are ignored by
    /// the owner.
    pub generation: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    fire_tick: u64,
    token: u64,
    kind: TimerKind,
    generation: u64,
}

/// Hashed timer wheel: `slots` buckets of `tick`-sized time, entries hashed
/// by `fire_tick % slots`. Deadlines beyond one wheel revolution simply stay
/// in their bucket for extra laps (each entry records its absolute tick).
#[derive(Debug)]
pub(super) struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    base: Instant,
    /// Next tick index to sweep; every tick below this has been processed.
    cursor: u64,
    /// Entries armed for ticks the sweep already passed; they fire on the
    /// very next [`TimerWheel::advance`], whatever `now` it is given.
    overdue: Vec<Entry>,
    len: usize,
}

impl TimerWheel {
    pub(super) fn new(tick: Duration, slots: usize) -> TimerWheel {
        assert!(!tick.is_zero() && slots > 0);
        TimerWheel {
            slots: vec![Vec::new(); slots],
            tick,
            base: Instant::now(),
            cursor: 0,
            overdue: Vec::new(),
            len: 0,
        }
    }

    /// Tick index containing `at` (saturating at 0 before `base`).
    fn tick_of(&self, at: Instant) -> u64 {
        let dt = at.saturating_duration_since(self.base);
        (dt.as_nanos() / self.tick.as_nanos()) as u64
    }

    /// Arms a deadline. A deadline in the past (or inside the current tick)
    /// fires on the next [`TimerWheel::advance`].
    pub(super) fn insert(&mut self, at: Instant, token: u64, kind: TimerKind, generation: u64) {
        let fire_tick = self.tick_of(at);
        let entry = Entry {
            fire_tick,
            token,
            kind,
            generation,
        };
        if fire_tick < self.cursor {
            // The sweep already passed that tick; park it where the next
            // advance is guaranteed to see it.
            self.overdue.push(entry);
        } else {
            let slot = (fire_tick % self.slots.len() as u64) as usize;
            self.slots[slot].push(entry);
        }
        self.len += 1;
    }

    /// Sweeps every tick up to `now`, appending due entries to `fired`.
    pub(super) fn advance(&mut self, now: Instant, fired: &mut Vec<Fired>) {
        for e in self.overdue.drain(..) {
            self.len -= 1;
            fired.push(Fired {
                token: e.token,
                kind: e.kind,
                generation: e.generation,
            });
        }
        let target = self.tick_of(now);
        if target < self.cursor {
            return;
        }
        let nslots = self.slots.len() as u64;
        // Sweeping more ticks than slots revisits buckets; one full lap
        // covers them all.
        let sweeps = (target - self.cursor + 1).min(nslots);
        for i in 0..sweeps {
            let slot = ((self.cursor + i) % nslots) as usize;
            let bucket = &mut self.slots[slot];
            let mut j = 0;
            while j < bucket.len() {
                if bucket[j].fire_tick <= target {
                    let e = bucket.swap_remove(j);
                    self.len -= 1;
                    fired.push(Fired {
                        token: e.token,
                        kind: e.kind,
                        generation: e.generation,
                    });
                } else {
                    j += 1;
                }
            }
        }
        self.cursor = target + 1;
    }

    /// Earliest armed deadline, if any — the bound for the poller timeout.
    pub(super) fn next_deadline(&self) -> Option<Instant> {
        if !self.overdue.is_empty() {
            // Already due: the caller should not sleep at all.
            return Some(self.base + self.tick * self.cursor.min(u32::MAX as u64) as u32);
        }
        let mut min_tick = None;
        for bucket in &self.slots {
            for e in bucket {
                min_tick = Some(match min_tick {
                    None => e.fire_tick,
                    Some(m) if e.fire_tick < m => e.fire_tick,
                    Some(m) => m,
                });
            }
        }
        // Fire at the *end* of the tick so deadlines are never early.
        min_tick.map(|t| self.base + self.tick * (t as u32 + 1))
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(5);

    fn drain(wheel: &mut TimerWheel, now: Instant) -> Vec<Fired> {
        let mut fired = Vec::new();
        wheel.advance(now, &mut fired);
        fired
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let mut wheel = TimerWheel::new(TICK, 64);
        let base = wheel.base;
        wheel.insert(base + Duration::from_millis(50), 1, TimerKind::Idle, 0);

        assert!(drain(&mut wheel, base + Duration::from_millis(40)).is_empty());
        let fired = drain(&mut wheel, base + Duration::from_millis(55));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].token, 1);
        assert_eq!(fired[0].kind, TimerKind::Idle);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn past_deadline_fires_on_next_advance() {
        let mut wheel = TimerWheel::new(TICK, 64);
        let base = wheel.base;
        // Move the cursor forward first.
        drain(&mut wheel, base + Duration::from_millis(100));
        // Then arm something "in the past".
        wheel.insert(
            base + Duration::from_millis(20),
            2,
            TimerKind::WriteStall,
            7,
        );
        let fired = drain(&mut wheel, base + Duration::from_millis(101));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].generation, 7);
    }

    #[test]
    fn deadline_beyond_one_revolution_waits_extra_laps() {
        let mut wheel = TimerWheel::new(TICK, 8); // revolution = 40ms
        let base = wheel.base;
        wheel.insert(base + Duration::from_millis(100), 3, TimerKind::Idle, 0);
        // Sweep a full revolution early: must not fire.
        assert!(drain(&mut wheel, base + Duration::from_millis(45)).is_empty());
        assert!(drain(&mut wheel, base + Duration::from_millis(90)).is_empty());
        assert_eq!(
            drain(&mut wheel, base + Duration::from_millis(110)).len(),
            1
        );
    }

    #[test]
    fn advance_after_long_sleep_fires_everything_due() {
        let mut wheel = TimerWheel::new(TICK, 8);
        let base = wheel.base;
        for t in 0..20u64 {
            wheel.insert(base + Duration::from_millis(t * 7), t, TimerKind::Idle, t);
        }
        let fired = drain(&mut wheel, base + Duration::from_secs(1));
        assert_eq!(fired.len(), 20);
        let mut tokens: Vec<u64> = fired.iter().map(|f| f.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn next_deadline_bounds_the_sleep() {
        let mut wheel = TimerWheel::new(TICK, 64);
        let base = wheel.base;
        assert!(wheel.next_deadline().is_none());
        wheel.insert(base + Duration::from_millis(30), 1, TimerKind::Idle, 0);
        wheel.insert(base + Duration::from_millis(10), 2, TimerKind::Idle, 0);
        let next = wheel.next_deadline().unwrap();
        // Earliest deadline, rounded up to a tick boundary.
        assert!(next >= base + Duration::from_millis(10));
        assert!(next <= base + Duration::from_millis(15 + 5));
        drain(&mut wheel, next);
        // Only the 30ms entry remains.
        assert!(wheel.next_deadline().unwrap() >= base + Duration::from_millis(30));
    }
}
