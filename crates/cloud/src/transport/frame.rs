//! Frame codec: the length-prefixed messages both transport peers speak.
//!
//! See the [module docs](crate::transport) for the wire format tables. The
//! codec is deliberately symmetric with the job protocol: frame bodies are
//! `wire::Writer`/`wire::Reader` encodings, so everything that crosses the
//! socket is the same dumb little-endian format the adversary model
//! already assumes.

use crate::protocol::JobResult;
use crate::CloudError;
use amalgam_tensor::wire::{Reader, Writer};
use amalgam_tensor::TensorError;
use bytes::Bytes;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const TAG_HELLO: u8 = 1;
const TAG_SUBMIT: u8 = 2;
const TAG_PING: u8 = 3;
const TAG_GOODBYE: u8 = 4;
const TAG_WELCOME: u8 = 129;
const TAG_REJECT: u8 = 130;
const TAG_REPLY: u8 = 131;
const TAG_PONG: u8 = 132;

/// One framed transport message (either direction).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client opener: supported protocol-version range plus optional key.
    Hello {
        /// Oldest protocol version the client accepts.
        min_version: u32,
        /// Newest protocol version the client speaks.
        max_version: u32,
        /// API key to bind to the session, if any.
        api_key: Option<String>,
    },
    /// Server accepts the session.
    Welcome {
        /// Negotiated protocol version.
        version: u32,
        /// Unanswered submits the session may keep in flight.
        max_in_flight: u32,
        /// The server's frame-length cap (clients must stay under it).
        max_frame_len: u64,
    },
    /// Server refuses the session (version mismatch, capacity, bad opener).
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// One job upload; `payload` is a serialized [`crate::CloudJob`].
    Submit {
        /// Client-chosen id echoed back in the matching [`Frame::Reply`].
        request_id: u64,
        /// The serialized job.
        payload: Bytes,
    },
    /// The outcome of one submit; replies may arrive out of order.
    Reply {
        /// The id of the [`Frame::Submit`] this answers.
        request_id: u64,
        /// What the service produced.
        result: Result<JobResult, CloudError>,
    },
    /// Keep-alive probe.
    Ping {
        /// Echoed back in the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Keep-alive answer.
    Pong {
        /// The probe's nonce.
        nonce: u64,
    },
    /// Polite client hang-up.
    Goodbye,
}

fn wire_err(e: TensorError) -> CloudError {
    CloudError::Decode(e.to_string())
}

impl Frame {
    /// Serializes the frame *body* (tag + fields, no length prefix).
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            Frame::Hello {
                min_version,
                max_version,
                api_key,
            } => {
                w.put_u8(TAG_HELLO);
                w.put_u32(*min_version);
                w.put_u32(*max_version);
                match api_key {
                    Some(key) => {
                        w.put_u8(1);
                        w.put_str(key);
                    }
                    None => w.put_u8(0),
                }
            }
            Frame::Welcome {
                version,
                max_in_flight,
                max_frame_len,
            } => {
                w.put_u8(TAG_WELCOME);
                w.put_u32(*version);
                w.put_u32(*max_in_flight);
                w.put_u64(*max_frame_len);
            }
            Frame::Reject { reason } => {
                w.put_u8(TAG_REJECT);
                w.put_str(reason);
            }
            Frame::Submit {
                request_id,
                payload,
            } => {
                w.put_u8(TAG_SUBMIT);
                w.put_u64(*request_id);
                w.put_bytes(payload);
            }
            Frame::Reply { request_id, result } => {
                w.put_u8(TAG_REPLY);
                w.put_u64(*request_id);
                match result {
                    Ok(r) => {
                        w.put_u8(1);
                        w.put_bytes(&r.to_bytes());
                    }
                    Err(e) => {
                        w.put_u8(0);
                        e.encode_into(&mut w);
                    }
                }
            }
            Frame::Ping { nonce } => {
                w.put_u8(TAG_PING);
                w.put_u64(*nonce);
            }
            Frame::Pong { nonce } => {
                w.put_u8(TAG_PONG);
                w.put_u64(*nonce);
            }
            Frame::Goodbye => w.put_u8(TAG_GOODBYE),
        }
        w.finish()
    }

    /// Decodes a frame body produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Decode`] on truncated bodies or unknown tags.
    pub fn decode(body: Bytes) -> Result<Frame, CloudError> {
        let mut r = Reader::new(body);
        let frame = match r.get_u8().map_err(wire_err)? {
            TAG_HELLO => {
                let min_version = r.get_u32().map_err(wire_err)?;
                let max_version = r.get_u32().map_err(wire_err)?;
                let api_key = match r.get_u8().map_err(wire_err)? {
                    0 => None,
                    1 => Some(r.get_str().map_err(wire_err)?),
                    t => return Err(CloudError::Decode(format!("bad api-key marker {t}"))),
                };
                Frame::Hello {
                    min_version,
                    max_version,
                    api_key,
                }
            }
            TAG_WELCOME => Frame::Welcome {
                version: r.get_u32().map_err(wire_err)?,
                max_in_flight: r.get_u32().map_err(wire_err)?,
                max_frame_len: r.get_u64().map_err(wire_err)?,
            },
            TAG_REJECT => Frame::Reject {
                reason: r.get_str().map_err(wire_err)?,
            },
            TAG_SUBMIT => Frame::Submit {
                request_id: r.get_u64().map_err(wire_err)?,
                payload: r.get_bytes().map_err(wire_err)?,
            },
            TAG_REPLY => {
                let request_id = r.get_u64().map_err(wire_err)?;
                let result = match r.get_u8().map_err(wire_err)? {
                    1 => Ok(JobResult::from_bytes(r.get_bytes().map_err(wire_err)?)?),
                    0 => Err(CloudError::decode_from(&mut r)?),
                    t => return Err(CloudError::Decode(format!("bad outcome marker {t}"))),
                };
                Frame::Reply { request_id, result }
            }
            TAG_PING => Frame::Ping {
                nonce: r.get_u64().map_err(wire_err)?,
            },
            TAG_PONG => Frame::Pong {
                nonce: r.get_u64().map_err(wire_err)?,
            },
            TAG_GOODBYE => Frame::Goodbye,
            t => return Err(CloudError::Decode(format!("unknown frame tag {t}"))),
        };
        if r.remaining() != 0 {
            return Err(CloudError::Decode(format!(
                "{} trailing bytes after frame",
                r.remaining()
            )));
        }
        Ok(frame)
    }
}

/// Writes one length-prefixed frame, returning the wire bytes written.
///
/// # Errors
///
/// Propagates the sink's I/O errors.
pub(crate) fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<usize> {
    write_encoded(w, &frame.encode())
}

/// Writes an already-encoded frame body with its length prefix, returning
/// the wire bytes written.
///
/// # Errors
///
/// Propagates the sink's I/O errors.
pub(crate) fn write_encoded(w: &mut impl Write, body: &Bytes) -> std::io::Result<usize> {
    if body.len() > u32::MAX as usize {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "frame body over 4 GiB",
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(4 + body.len())
}

/// Writes a frame whose body is `head` followed by `payload`, without ever
/// copying `payload` into a body buffer — the zero-copy path for the two
/// bulk frames (`Submit` uploads, successful `Reply` downloads), whose
/// payloads dominate the wire. `head` must already end with the `u32`
/// length prefix of `payload` (see [`submit_head`] / [`reply_ok_head`]),
/// so the bytes on the wire are identical to [`write_frame`] of the
/// equivalent [`Frame`].
///
/// # Errors
///
/// Propagates the sink's I/O errors.
pub(crate) fn write_split(
    w: &mut impl Write,
    head: &[u8],
    payload: &[u8],
) -> std::io::Result<usize> {
    let total = head.len() + payload.len();
    // A hard error, not a debug_assert: a wrapped u32 length prefix would
    // put an undecodable frame on the wire in release builds too.
    if total > u32::MAX as usize {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "frame body over 4 GiB",
        ));
    }
    w.write_all(&(total as u32).to_le_bytes())?;
    w.write_all(head)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(4 + total)
}

/// The fixed head of a [`Frame::Submit`] body, for [`write_split`].
pub(crate) fn submit_head(request_id: u64, payload_len: usize) -> Bytes {
    let mut w = Writer::new();
    w.put_u8(TAG_SUBMIT);
    w.put_u64(request_id);
    w.put_u32(payload_len as u32);
    w.finish()
}

/// The fixed head of a successful [`Frame::Reply`] body, for
/// [`write_split`]; `result_len` is the length of the serialized
/// [`JobResult`] that follows.
pub(crate) fn reply_ok_head(request_id: u64, result_len: usize) -> Bytes {
    let mut w = Writer::new();
    w.put_u8(TAG_REPLY);
    w.put_u64(request_id);
    w.put_u8(1);
    w.put_u32(result_len as u32);
    w.finish()
}

/// Reads exactly `buf.len()` bytes from a blocking stream.
///
/// Returns `Ok(false)` on a clean EOF *before the first byte* when
/// `at_boundary`; EOF anywhere else is a truncated frame.
fn read_full(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<bool, CloudError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && at_boundary {
                    return Ok(false);
                }
                return Err(CloudError::Transport("connection closed mid-frame".into()));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(CloudError::Transport(format!("read failed: {e}"))),
        }
    }
    Ok(true)
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary, and the decoded
/// frame plus its wire length otherwise.
///
/// # Errors
///
/// Returns [`CloudError::Transport`] on I/O failure, truncation or a length
/// prefix over `max_frame_len` (checked before allocating), and
/// [`CloudError::Decode`] on a malformed body.
pub(crate) fn read_frame_blocking(
    r: &mut impl Read,
    max_frame_len: usize,
) -> Result<Option<(Frame, usize)>, CloudError> {
    let mut header = [0u8; 4];
    if !read_full(r, &mut header, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_frame_len {
        return Err(CloudError::Transport(format!(
            "frame length {len} exceeds cap {max_frame_len}"
        )));
    }
    let mut body = vec![0u8; len];
    read_full(r, &mut body, false)?;
    Ok(Some((Frame::decode(Bytes::from(body))?, 4 + len)))
}

/// Outcome of one resumable server-side read.
pub(crate) enum ServerRead {
    /// A whole frame arrived (with its wire length).
    Frame(Frame, usize),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// No bytes for longer than the idle timeout.
    IdleTimeout,
    /// The server is shutting down.
    Stopped,
}

/// Reads one frame from a stream whose read timeout is set to a short tick,
/// so the loop can observe `stop` and the idle deadline between partial
/// reads without losing frame sync.
///
/// # Errors
///
/// Same error surface as [`read_frame_blocking`].
pub(crate) fn read_frame_resumable(
    stream: &mut TcpStream,
    max_frame_len: usize,
    idle_timeout: Duration,
    stop: &AtomicBool,
) -> Result<ServerRead, CloudError> {
    /// One tick-bounded read; the non-`Data` outcomes abort the frame.
    enum Step {
        Data(usize),
        Eof,
        Stopped,
        Idle,
    }
    fn tick_read(
        stream: &mut TcpStream,
        buf: &mut [u8],
        stop: &AtomicBool,
        idle_timeout: Duration,
        last_byte: &Instant,
    ) -> Result<Step, CloudError> {
        match stream.read(buf) {
            Ok(0) => Ok(Step::Eof),
            Ok(n) => Ok(Step::Data(n)),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(Step::Data(0)),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    Ok(Step::Stopped)
                } else if last_byte.elapsed() >= idle_timeout {
                    Ok(Step::Idle)
                } else {
                    Ok(Step::Data(0))
                }
            }
            Err(e) => Err(CloudError::Transport(format!("read failed: {e}"))),
        }
    }

    let mut last_byte = Instant::now();
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match tick_read(stream, &mut header[got..], stop, idle_timeout, &last_byte)? {
            Step::Data(0) => {}
            Step::Data(n) => {
                got += n;
                last_byte = Instant::now();
            }
            Step::Eof if got == 0 => return Ok(ServerRead::Closed),
            Step::Eof => {
                return Err(CloudError::Transport("connection closed mid-frame".into()));
            }
            Step::Stopped => return Ok(ServerRead::Stopped),
            Step::Idle => return Ok(ServerRead::IdleTimeout),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_frame_len {
        return Err(CloudError::Transport(format!(
            "frame length {len} exceeds cap {max_frame_len}"
        )));
    }
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match tick_read(stream, &mut body[got..], stop, idle_timeout, &last_byte)? {
            Step::Data(0) => {}
            Step::Data(n) => {
                got += n;
                last_byte = Instant::now();
            }
            Step::Eof => {
                return Err(CloudError::Transport("connection closed mid-frame".into()));
            }
            Step::Stopped => return Ok(ServerRead::Stopped),
            Step::Idle => return Ok(ServerRead::IdleTimeout),
        }
    }
    Ok(ServerRead::Frame(
        Frame::decode(Bytes::from(body))?,
        4 + len,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalgam_nn::metrics::History;

    fn roundtrip(frame: Frame) {
        let mut wire = Vec::new();
        let wrote = write_frame(&mut wire, &frame).unwrap();
        assert_eq!(wrote, wire.len());
        let mut cursor = std::io::Cursor::new(wire);
        let (back, len) = read_frame_blocking(&mut cursor, 1 << 30).unwrap().unwrap();
        assert_eq!(len, wrote);
        assert_eq!(back, frame);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(Frame::Hello {
            min_version: 1,
            max_version: 3,
            api_key: Some("key".into()),
        });
        roundtrip(Frame::Hello {
            min_version: 1,
            max_version: 1,
            api_key: None,
        });
        roundtrip(Frame::Welcome {
            version: 1,
            max_in_flight: 32,
            max_frame_len: 256 << 20,
        });
        roundtrip(Frame::Reject {
            reason: "unsupported protocol version".into(),
        });
        roundtrip(Frame::Submit {
            request_id: 9,
            payload: Bytes::from_static(b"job bytes"),
        });
        roundtrip(Frame::Reply {
            request_id: 9,
            result: Ok(JobResult {
                job_id: 9,
                trained_model: Bytes::from_static(b"weights"),
                history: History {
                    train_loss: vec![0.5],
                    train_acc: vec![0.75],
                    val_loss: vec![],
                    val_acc: vec![],
                    epoch_secs: vec![0.1],
                },
                bytes_received: 11,
                bytes_sent: 7,
                train_seconds: 0.25,
            }),
        });
        roundtrip(Frame::Reply {
            request_id: 10,
            result: Err(CloudError::Overloaded {
                queue_depth: 5,
                max_queue_depth: 2,
            }),
        });
        roundtrip(Frame::Ping { nonce: 77 });
        roundtrip(Frame::Pong { nonce: 77 });
        roundtrip(Frame::Goodbye);
    }

    #[test]
    fn every_error_variant_roundtrips() {
        for err in [
            CloudError::ServiceUnavailable,
            CloudError::Decode("d".into()),
            CloudError::BadJob("b".into()),
            CloudError::Overloaded {
                queue_depth: 1,
                max_queue_depth: 0,
            },
            CloudError::RateLimited {
                retry_after_ms: 1234,
            },
            CloudError::Panicked("p".into()),
            CloudError::Transport("t".into()),
            CloudError::Unauthorized("u".into()),
            CloudError::Handshake("h".into()),
        ] {
            roundtrip(Frame::Reply {
                request_id: 0,
                result: Err(err),
            });
        }
    }

    #[test]
    fn split_writes_are_bitwise_identical_to_whole_frame_writes() {
        // The zero-copy bulk path must put exactly the same bytes on the
        // wire as encoding the whole frame.
        let payload = Bytes::from_static(b"serialized job payload");
        let mut whole = Vec::new();
        write_frame(
            &mut whole,
            &Frame::Submit {
                request_id: 42,
                payload: payload.clone(),
            },
        )
        .unwrap();
        let mut split = Vec::new();
        let n = write_split(&mut split, &submit_head(42, payload.len()), &payload).unwrap();
        assert_eq!(split, whole);
        assert_eq!(n, whole.len());

        let result = JobResult {
            job_id: 7,
            trained_model: Bytes::from_static(b"weights"),
            history: History::new(),
            bytes_received: 3,
            bytes_sent: 9,
            train_seconds: 0.5,
        };
        let body = result.to_bytes();
        let mut whole = Vec::new();
        write_frame(
            &mut whole,
            &Frame::Reply {
                request_id: 7,
                result: Ok(result),
            },
        )
        .unwrap();
        let mut split = Vec::new();
        let n = write_split(&mut split, &reply_ok_head(7, body.len()), &body).unwrap();
        assert_eq!(split, whole);
        assert_eq!(n, whole.len());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(b"whatever");
        let mut cursor = std::io::Cursor::new(wire);
        match read_frame_blocking(&mut cursor, 1 << 20) {
            Err(CloudError::Transport(msg)) => assert!(msg.contains("exceeds cap"), "{msg}"),
            other => panic!("expected Transport error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_a_transport_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Ping { nonce: 1 }).unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame_blocking(&mut cursor, 1 << 20),
            Err(CloudError::Transport(_))
        ));
    }

    #[test]
    fn clean_eof_at_boundary_is_none() {
        let mut cursor = std::io::Cursor::new(Vec::new());
        assert!(read_frame_blocking(&mut cursor, 1 << 20).unwrap().is_none());
    }

    #[test]
    fn garbage_body_is_a_decode_error() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(&[0xEE, 0xFF, 0x00]);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame_blocking(&mut cursor, 1 << 20),
            Err(CloudError::Decode(_))
        ));
    }

    #[test]
    fn trailing_bytes_after_body_are_rejected() {
        let mut body = Frame::Ping { nonce: 5 }.encode().to_vec();
        body.push(0);
        assert!(matches!(
            Frame::decode(Bytes::from(body)),
            Err(CloudError::Decode(_))
        ));
    }
}
