//! Frame codec: the length-prefixed messages both transport peers speak.
//!
//! See the [module docs](crate::transport) for the wire format tables. The
//! codec is deliberately symmetric with the job protocol: frame bodies are
//! `wire::Writer`/`wire::Reader` encodings, so everything that crosses the
//! socket is the same dumb little-endian format the adversary model
//! already assumes.

use crate::protocol::{JobResult, ProgressUpdate};
use crate::telemetry::TraceId;
use crate::CloudError;
use amalgam_tensor::wire::{Reader, Writer};
use amalgam_tensor::TensorError;
use bytes::Bytes;
use std::io::{ErrorKind, Read, Write};

const TAG_HELLO: u8 = 1;
const TAG_SUBMIT: u8 = 2;
const TAG_PING: u8 = 3;
const TAG_GOODBYE: u8 = 4;
const TAG_GETSTATS: u8 = 5;
const TAG_CANCEL: u8 = 6;
const TAG_WELCOME: u8 = 129;
const TAG_REJECT: u8 = 130;
const TAG_REPLY: u8 = 131;
const TAG_PONG: u8 = 132;
const TAG_STATS: u8 = 133;
const TAG_PROGRESS: u8 = 134;

/// Tags this codec's frame grammar defines.
fn is_known_tag(tag: u8) -> bool {
    matches!(
        tag,
        TAG_HELLO
            | TAG_SUBMIT
            | TAG_PING
            | TAG_GOODBYE
            | TAG_GETSTATS
            | TAG_CANCEL
            | TAG_WELCOME
            | TAG_REJECT
            | TAG_REPLY
            | TAG_PONG
            | TAG_STATS
            | TAG_PROGRESS
    )
}

/// Which peer a reader is decoding frames *from*. The reserved extension
/// ranges are directional (`6..=127` client→server, `134..=255`
/// server→client), so the skip rule is too: a reader only forgives unknown
/// tags its peer is entitled to invent. An unknown tag from the *wrong*
/// range cannot be a newer peer's extension — it can only be corruption —
/// and stays a hard decode error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameOrigin {
    /// The peer is a client (a server or proxy front door reading
    /// submissions): unknown tags in `6..=127` are skippable.
    #[default]
    Client,
    /// The peer is a server (a client or proxy backend link reading
    /// replies): unknown tags in `134..=255` are skippable.
    Server,
}

/// True when an *unknown* tag sits in `origin`'s reserved extension range
/// and the whole frame should be skipped rather than fail the connection.
/// This is the rule that lets newer peers grow extension frames (`Cancel`,
/// `Progress`, and whatever comes after) without desyncing older ones: the
/// length prefix bounds the unknown body, so a decoder that has never heard
/// of the tag drops exactly one frame and picks up cleanly at the next
/// boundary.
pub(crate) fn skippable_tag(tag: u8, origin: FrameOrigin) -> bool {
    if is_known_tag(tag) {
        return false;
    }
    match origin {
        FrameOrigin::Client => matches!(tag, 6..=127),
        FrameOrigin::Server => matches!(tag, 134..=255),
    }
}

/// Wire size of the optional trailing trace-id extension on `Submit` and
/// `Reply` bodies: two raw `u64` words, no length prefix. Peers that
/// negotiated protocol v1 never send or expect it.
pub(crate) const TRACE_EXT_LEN: usize = 16;

/// One framed transport message (either direction).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client opener: supported protocol-version range plus optional key.
    Hello {
        /// Oldest protocol version the client accepts.
        min_version: u32,
        /// Newest protocol version the client speaks.
        max_version: u32,
        /// API key to bind to the session, if any.
        api_key: Option<String>,
    },
    /// Server accepts the session.
    Welcome {
        /// Negotiated protocol version.
        version: u32,
        /// Unanswered submits the session may keep in flight.
        max_in_flight: u32,
        /// The server's frame-length cap (clients must stay under it).
        max_frame_len: u64,
    },
    /// Server refuses the session (version mismatch, capacity, bad opener).
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// One job upload; `payload` is a serialized [`crate::CloudJob`].
    Submit {
        /// Client-chosen id echoed back in the matching [`Frame::Reply`].
        request_id: u64,
        /// The serialized job.
        payload: Bytes,
        /// End-to-end trace id (protocol ≥ 2 extension; `None` from v1
        /// peers).
        trace: Option<TraceId>,
    },
    /// The outcome of one submit; replies may arrive out of order.
    Reply {
        /// The id of the [`Frame::Submit`] this answers.
        request_id: u64,
        /// What the service produced.
        result: Result<JobResult, CloudError>,
        /// The submit's trace id echoed back (protocol ≥ 2 extension).
        trace: Option<TraceId>,
    },
    /// Authenticated request for the peer's full telemetry snapshot
    /// (protocol ≥ 2).
    GetStats {
        /// Client-chosen id echoed back in the matching [`Frame::Stats`].
        request_id: u64,
    },
    /// Answer to [`Frame::GetStats`]: a wire-encoded
    /// [`crate::ServiceStats`] snapshot, or an in-band refusal (e.g.
    /// [`CloudError::Unauthorized`]).
    Stats {
        /// The id of the [`Frame::GetStats`] this answers.
        request_id: u64,
        /// Encoded snapshot bytes, or why the peer refused.
        body: Result<Bytes, CloudError>,
    },
    /// Client asks the server to abandon an unanswered submit (protocol ≥ 2
    /// extension). Best-effort: the job resolves with
    /// [`CloudError::Cancelled`] if the flag lands before it finishes, and
    /// with its normal outcome otherwise — either way exactly one
    /// [`Frame::Reply`] still answers the submit.
    Cancel {
        /// The id of the [`Frame::Submit`] to abandon.
        request_id: u64,
    },
    /// Streamed per-epoch progress for an unanswered submit (protocol ≥ 2
    /// extension; v1 peers never receive it). Advisory and unacknowledged:
    /// progress frames may be dropped without affecting the final reply.
    Progress {
        /// The id of the [`Frame::Submit`] this reports on.
        request_id: u64,
        /// The epoch snapshot.
        update: ProgressUpdate,
    },
    /// Keep-alive probe.
    Ping {
        /// Echoed back in the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Keep-alive answer.
    Pong {
        /// The probe's nonce.
        nonce: u64,
    },
    /// Polite client hang-up.
    Goodbye,
}

fn wire_err(e: TensorError) -> CloudError {
    CloudError::Decode(e.to_string())
}

/// Appends the optional trace-id extension: two raw `u64` words at the end
/// of the body, no marker byte — v1 peers simply never emit them, and the
/// decoder distinguishes "absent" by the body ending exactly where v1
/// bodies end.
fn encode_trace_tail(w: &mut Writer, trace: Option<TraceId>) {
    if let Some(t) = trace {
        let (hi, lo) = t.to_words();
        w.put_u64(hi);
        w.put_u64(lo);
    }
}

/// Reads the optional trace tail: exactly [`TRACE_EXT_LEN`] bytes left
/// means a trace is present, zero means absent; any other residue is left
/// for the caller's trailing-bytes check to reject.
fn decode_trace_tail(r: &mut Reader) -> Result<Option<TraceId>, CloudError> {
    if r.remaining() != TRACE_EXT_LEN {
        return Ok(None);
    }
    let hi = r.get_u64().map_err(wire_err)?;
    let lo = r.get_u64().map_err(wire_err)?;
    Ok(Some(TraceId::from_words(hi, lo)))
}

/// The trace extension's raw wire bytes, for the zero-copy split writers.
pub(crate) fn trace_tail(trace: TraceId) -> [u8; TRACE_EXT_LEN] {
    let (hi, lo) = trace.to_words();
    let mut buf = [0u8; TRACE_EXT_LEN];
    buf[..8].copy_from_slice(&hi.to_le_bytes());
    buf[8..].copy_from_slice(&lo.to_le_bytes());
    buf
}

impl Frame {
    /// Serializes the frame *body* (tag + fields, no length prefix).
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            Frame::Hello {
                min_version,
                max_version,
                api_key,
            } => {
                w.put_u8(TAG_HELLO);
                w.put_u32(*min_version);
                w.put_u32(*max_version);
                match api_key {
                    Some(key) => {
                        w.put_u8(1);
                        w.put_str(key);
                    }
                    None => w.put_u8(0),
                }
            }
            Frame::Welcome {
                version,
                max_in_flight,
                max_frame_len,
            } => {
                w.put_u8(TAG_WELCOME);
                w.put_u32(*version);
                w.put_u32(*max_in_flight);
                w.put_u64(*max_frame_len);
            }
            Frame::Reject { reason } => {
                w.put_u8(TAG_REJECT);
                w.put_str(reason);
            }
            Frame::Submit {
                request_id,
                payload,
                trace,
            } => {
                w.put_u8(TAG_SUBMIT);
                w.put_u64(*request_id);
                w.put_bytes(payload);
                encode_trace_tail(&mut w, *trace);
            }
            Frame::Reply {
                request_id,
                result,
                trace,
            } => {
                w.put_u8(TAG_REPLY);
                w.put_u64(*request_id);
                match result {
                    Ok(r) => {
                        w.put_u8(1);
                        w.put_bytes(&r.to_bytes());
                    }
                    Err(e) => {
                        w.put_u8(0);
                        e.encode_into(&mut w);
                    }
                }
                encode_trace_tail(&mut w, *trace);
            }
            Frame::GetStats { request_id } => {
                w.put_u8(TAG_GETSTATS);
                w.put_u64(*request_id);
            }
            Frame::Stats { request_id, body } => {
                w.put_u8(TAG_STATS);
                w.put_u64(*request_id);
                match body {
                    Ok(stats) => {
                        w.put_u8(1);
                        w.put_bytes(stats);
                    }
                    Err(e) => {
                        w.put_u8(0);
                        e.encode_into(&mut w);
                    }
                }
            }
            Frame::Cancel { request_id } => {
                w.put_u8(TAG_CANCEL);
                w.put_u64(*request_id);
            }
            Frame::Progress { request_id, update } => {
                w.put_u8(TAG_PROGRESS);
                w.put_u64(*request_id);
                update.encode_into(&mut w);
            }
            Frame::Ping { nonce } => {
                w.put_u8(TAG_PING);
                w.put_u64(*nonce);
            }
            Frame::Pong { nonce } => {
                w.put_u8(TAG_PONG);
                w.put_u64(*nonce);
            }
            Frame::Goodbye => w.put_u8(TAG_GOODBYE),
        }
        w.finish()
    }

    /// Decodes a frame body produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Decode`] on truncated bodies or unknown tags.
    pub fn decode(body: Bytes) -> Result<Frame, CloudError> {
        let mut r = Reader::new(body);
        let frame = match r.get_u8().map_err(wire_err)? {
            TAG_HELLO => {
                let min_version = r.get_u32().map_err(wire_err)?;
                let max_version = r.get_u32().map_err(wire_err)?;
                let api_key = match r.get_u8().map_err(wire_err)? {
                    0 => None,
                    1 => Some(r.get_str().map_err(wire_err)?),
                    t => return Err(CloudError::Decode(format!("bad api-key marker {t}"))),
                };
                Frame::Hello {
                    min_version,
                    max_version,
                    api_key,
                }
            }
            TAG_WELCOME => Frame::Welcome {
                version: r.get_u32().map_err(wire_err)?,
                max_in_flight: r.get_u32().map_err(wire_err)?,
                max_frame_len: r.get_u64().map_err(wire_err)?,
            },
            TAG_REJECT => Frame::Reject {
                reason: r.get_str().map_err(wire_err)?,
            },
            TAG_SUBMIT => {
                let request_id = r.get_u64().map_err(wire_err)?;
                let payload = r.get_bytes().map_err(wire_err)?;
                let trace = decode_trace_tail(&mut r)?;
                Frame::Submit {
                    request_id,
                    payload,
                    trace,
                }
            }
            TAG_REPLY => {
                let request_id = r.get_u64().map_err(wire_err)?;
                let result = match r.get_u8().map_err(wire_err)? {
                    1 => Ok(JobResult::from_bytes(r.get_bytes().map_err(wire_err)?)?),
                    0 => Err(CloudError::decode_from(&mut r)?),
                    t => return Err(CloudError::Decode(format!("bad outcome marker {t}"))),
                };
                let trace = decode_trace_tail(&mut r)?;
                Frame::Reply {
                    request_id,
                    result,
                    trace,
                }
            }
            TAG_GETSTATS => Frame::GetStats {
                request_id: r.get_u64().map_err(wire_err)?,
            },
            TAG_STATS => {
                let request_id = r.get_u64().map_err(wire_err)?;
                let body = match r.get_u8().map_err(wire_err)? {
                    1 => Ok(r.get_bytes().map_err(wire_err)?),
                    0 => Err(CloudError::decode_from(&mut r)?),
                    t => return Err(CloudError::Decode(format!("bad outcome marker {t}"))),
                };
                Frame::Stats { request_id, body }
            }
            TAG_CANCEL => Frame::Cancel {
                request_id: r.get_u64().map_err(wire_err)?,
            },
            TAG_PROGRESS => {
                let request_id = r.get_u64().map_err(wire_err)?;
                let update = ProgressUpdate::decode_from(&mut r)?;
                Frame::Progress { request_id, update }
            }
            TAG_PING => Frame::Ping {
                nonce: r.get_u64().map_err(wire_err)?,
            },
            TAG_PONG => Frame::Pong {
                nonce: r.get_u64().map_err(wire_err)?,
            },
            TAG_GOODBYE => Frame::Goodbye,
            t => return Err(CloudError::Decode(format!("unknown frame tag {t}"))),
        };
        if r.remaining() != 0 {
            return Err(CloudError::Decode(format!(
                "{} trailing bytes after frame",
                r.remaining()
            )));
        }
        Ok(frame)
    }
}

/// Writes one length-prefixed frame, returning the wire bytes written.
///
/// Public so transport intermediaries (the `amalgam-proxy` front door, its
/// health probes and fault-injection harness) can speak the wire format
/// without re-implementing the codec.
///
/// # Errors
///
/// Propagates the sink's I/O errors.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<usize> {
    write_encoded(w, &frame.encode())
}

/// Writes an already-encoded frame body with its length prefix, returning
/// the wire bytes written.
///
/// # Errors
///
/// Propagates the sink's I/O errors.
pub fn write_encoded(w: &mut impl Write, body: &Bytes) -> std::io::Result<usize> {
    if body.len() > u32::MAX as usize {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "frame body over 4 GiB",
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(4 + body.len())
}

/// Writes a frame whose body is `head`, then `payload`, then `tail`,
/// without ever copying `payload` into a body buffer — the zero-copy path
/// for the two bulk frames (`Submit` uploads, successful `Reply`
/// downloads), whose payloads dominate the wire. `head` must already end
/// with the `u32` length prefix of `payload` (see [`submit_head`] /
/// [`reply_ok_head`]); `tail` is the raw trace extension (or empty), so
/// the bytes on the wire are identical to [`write_frame`] of the
/// equivalent [`Frame`].
///
/// # Errors
///
/// Propagates the sink's I/O errors.
pub(crate) fn write_split(
    w: &mut impl Write,
    head: &[u8],
    payload: &[u8],
    tail: &[u8],
) -> std::io::Result<usize> {
    let total = head.len() + payload.len() + tail.len();
    // A hard error, not a debug_assert: a wrapped u32 length prefix would
    // put an undecodable frame on the wire in release builds too.
    if total > u32::MAX as usize {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            "frame body over 4 GiB",
        ));
    }
    // One vectored write for the whole frame: on a raw socket the prefix,
    // head, payload and trace tail leave as a single syscall instead of one
    // small segment each — the peer's reactor sees the frame arrive whole
    // and never burns an extra wakeup waiting for a straggling 16-byte tail.
    let len = (total as u32).to_le_bytes();
    let parts: [&[u8]; 4] = [&len, head, payload, tail];
    let mut done = 0usize;
    while done < 4 + total {
        let mut skip = done;
        let mut iov = [std::io::IoSlice::new(&[]); 4];
        let mut n_iov = 0;
        for part in parts {
            if skip >= part.len() {
                skip -= part.len();
                continue;
            }
            iov[n_iov] = std::io::IoSlice::new(&part[skip..]);
            skip = 0;
            n_iov += 1;
        }
        match w.write_vectored(&iov[..n_iov]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "sink accepted no bytes mid-frame",
                ));
            }
            Ok(n) => done += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    w.flush()?;
    Ok(4 + total)
}

/// The fixed head of a [`Frame::Submit`] body, for [`write_split`].
pub(crate) fn submit_head(request_id: u64, payload_len: usize) -> Bytes {
    let mut w = Writer::new();
    w.put_u8(TAG_SUBMIT);
    w.put_u64(request_id);
    w.put_u32(payload_len as u32);
    w.finish()
}

/// The fixed head of a successful [`Frame::Reply`] body, for
/// [`write_split`]; `result_len` is the length of the serialized
/// [`JobResult`] that follows.
pub(crate) fn reply_ok_head(request_id: u64, result_len: usize) -> Bytes {
    let mut w = Writer::new();
    w.put_u8(TAG_REPLY);
    w.put_u64(request_id);
    w.put_u8(1);
    w.put_u32(result_len as u32);
    w.finish()
}

/// Reads exactly `buf.len()` bytes from a blocking stream.
///
/// Returns `Ok(false)` on a clean EOF *before the first byte* when
/// `at_boundary`; EOF anywhere else is a truncated frame.
fn read_full(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<bool, CloudError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && at_boundary {
                    return Ok(false);
                }
                return Err(CloudError::Transport("connection closed mid-frame".into()));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(CloudError::Transport(format!("read failed: {e}"))),
        }
    }
    Ok(true)
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary, and the decoded
/// frame plus its wire length otherwise. Frames carrying an unknown tag in
/// `origin`'s reserved extension range (see the wire tables in
/// [`crate::transport`]) are skipped whole — the reader keeps going and
/// returns the next frame it understands, so older peers survive newer
/// ones' extension frames. Public for the same transport intermediaries as
/// [`write_frame`].
///
/// # Errors
///
/// Returns [`CloudError::Transport`] on I/O failure, truncation or a length
/// prefix over `max_frame_len` (checked before allocating), and
/// [`CloudError::Decode`] on a malformed body.
pub fn read_frame_blocking(
    r: &mut impl Read,
    max_frame_len: usize,
    origin: FrameOrigin,
) -> Result<Option<(Frame, usize)>, CloudError> {
    loop {
        let mut header = [0u8; 4];
        if !read_full(r, &mut header, true)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(header) as usize;
        if len > max_frame_len {
            return Err(CloudError::Transport(format!(
                "frame length {len} exceeds cap {max_frame_len}"
            )));
        }
        let mut body = vec![0u8; len];
        read_full(r, &mut body, false)?;
        if body.first().is_some_and(|&t| skippable_tag(t, origin)) {
            continue;
        }
        return Ok(Some((Frame::decode(Bytes::from(body))?, 4 + len)));
    }
}

/// One kernel read per readiness event asks for this much.
const READ_CHUNK: usize = 64 * 1024;
/// Scratch capacity a connection keeps once its buffer drains; a one-off
/// oversized frame hands its memory back instead of pinning it forever.
const RETAIN_CAP: usize = 256 * 1024;
/// A `Submit` payload at least this big is handed out zero-copy: the whole
/// scratch becomes the payload's backing [`Bytes`] and a fresh scratch
/// takes over the undecoded tail. One read chunk is the break-even point:
/// a frame this size spans multiple reads, so the tail left behind when it
/// completes is at most one chunk and usually far less, while the copy
/// avoided is the whole payload. Below it, copying the payload out is
/// cheaper than retiring the scratch allocation.
const SPLIT_THRESHOLD: usize = READ_CHUNK;

/// Incremental frame decoder over a reusable per-connection scratch buffer.
///
/// The reactor's read path: every readiness event appends whatever bytes the
/// kernel has ([`FrameDecoder::read_from`]) into one growable buffer, then
/// drains complete frames with [`FrameDecoder::next_frame`]. Unlike the old
/// blocking reader — which allocated a fresh zeroed `Vec` per inbound frame —
/// the scratch is reused across frames: control frames (`Ping`, `Pong`,
/// `Goodbye`) and `Submit` heads decode straight out of the buffer with no
/// allocation. A small `Submit`'s payload is copied out (it has to outlive
/// the buffer and cross a thread); a large one is handed out zero-copy by
/// retiring the scratch into the payload's backing [`Bytes`]. Partial frames
/// are fine at any byte offset; the decoder just waits for more input.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before `start` are consumed; `start..end` is undecoded input.
    start: usize,
    end: usize,
    /// Which peer's frames this decoder reads — fixes the skippable
    /// extension range (see [`FrameOrigin`]).
    origin: FrameOrigin,
}

impl FrameDecoder {
    /// Creates an empty decoder reading frames from a client — the
    /// server-side default (no scratch allocated until first input).
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Creates an empty decoder reading frames from `origin`'s side of the
    /// connection.
    pub fn for_peer(origin: FrameOrigin) -> FrameDecoder {
        FrameDecoder {
            origin,
            ..FrameDecoder::default()
        }
    }

    /// Undecoded bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Appends raw bytes (test/bench entry point; the server reads straight
    /// from the socket via [`FrameDecoder::read_from`]).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.make_room(bytes.len());
        self.buf[self.end..self.end + bytes.len()].copy_from_slice(bytes);
        self.end += bytes.len();
    }

    /// Performs one read from `r` into the scratch buffer.
    ///
    /// Returns `Ok(0)` on EOF. `WouldBlock` propagates to the caller (the
    /// reactor re-arms read interest); `Interrupted` is retried internally.
    ///
    /// # Errors
    ///
    /// Propagates the source's I/O errors.
    pub fn read_from(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        self.make_room(READ_CHUNK);
        loop {
            match r.read(&mut self.buf[self.end..]) {
                Ok(n) => {
                    self.end += n;
                    return Ok(n);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Ensures at least `spare` writable bytes after `end`, compacting the
    /// consumed prefix first so the buffer only grows for genuinely large
    /// frames.
    fn make_room(&mut self, spare: usize) {
        if self.buf.len() - self.end >= spare {
            return;
        }
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() - self.end < spare {
            self.buf.resize(self.end + spare, 0);
        }
    }

    /// Pops the next complete frame, or `Ok(None)` if more bytes are needed.
    ///
    /// Returns the frame plus its wire length (prefix + body). Frames with
    /// an unknown tag in the reserved extension ranges are skipped whole,
    /// exactly like [`read_frame_blocking`] — no desync, no error.
    ///
    /// # Errors
    ///
    /// [`CloudError::Transport`] for a length prefix over `max_frame_len`
    /// (checked before buffering the body), [`CloudError::Decode`] for a
    /// malformed body — both identical to the blocking reader's behavior.
    pub fn next_frame(
        &mut self,
        max_frame_len: usize,
    ) -> Result<Option<(Frame, usize)>, CloudError> {
        loop {
            let avail = self.end - self.start;
            if avail < 4 {
                return Ok(None);
            }
            let len = u32::from_le_bytes(
                self.buf[self.start..self.start + 4]
                    .try_into()
                    .expect("4-byte slice"),
            ) as usize;
            if len > max_frame_len {
                return Err(CloudError::Transport(format!(
                    "frame length {len} exceeds cap {max_frame_len}"
                )));
            }
            if avail < 4 + len {
                return Ok(None);
            }
            if len > 0 && skippable_tag(self.buf[self.start + 4], self.origin) {
                self.consume(4 + len);
                continue;
            }
            if let Some(frame) = self.try_split_large_submit(len) {
                return Ok(Some((frame, 4 + len)));
            }
            let body = &self.buf[self.start + 4..self.start + 4 + len];
            let frame = decode_body(body);
            self.consume(4 + len);
            return Ok(Some((frame?, 4 + len)));
        }
    }

    /// Advances past `n` decoded (or skipped) bytes, recycling the scratch
    /// when it fully drains.
    fn consume(&mut self, n: usize) {
        self.start += n;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
            if self.buf.len() > RETAIN_CAP {
                self.buf.truncate(RETAIN_CAP);
                self.buf.shrink_to_fit();
            }
        }
    }

    /// Zero-copy fast path for the dominant inbound frame: a well-formed
    /// `Submit` whose payload clears [`SPLIT_THRESHOLD`]. The scratch `Vec`
    /// is converted (not copied) into the payload's backing [`Bytes`]; the
    /// undecoded tail moves into a fresh scratch. Returns `None` — meaning
    /// "decode normally" — for every other shape.
    fn try_split_large_submit(&mut self, len: usize) -> Option<Frame> {
        let body_start = self.start + 4;
        let body = &self.buf[body_start..body_start + len];
        if len < 13 + SPLIT_THRESHOLD || body[0] != TAG_SUBMIT {
            return None;
        }
        let payload_len =
            u32::from_le_bytes(body[9..13].try_into().expect("4-byte slice")) as usize;
        // Two well-formed shapes: v1 (payload ends the body) and v2 with
        // the 16-byte trace extension after the payload.
        let trace = if payload_len == len - 13 {
            None
        } else if payload_len == len - 13 - TRACE_EXT_LEN {
            let t = &body[13 + payload_len..];
            Some(TraceId::from_words(
                u64::from_le_bytes(t[..8].try_into().expect("8-byte slice")),
                u64::from_le_bytes(t[8..].try_into().expect("8-byte slice")),
            ))
        } else {
            return None; // malformed: let the canonical decoder report it
        };
        let request_id = u64::from_le_bytes(body[1..9].try_into().expect("8-byte slice"));
        let frame_end = body_start + len;
        let tail_len = self.end - frame_end;
        let mut fresh = Vec::with_capacity(READ_CHUNK.max(tail_len));
        fresh.extend_from_slice(&self.buf[frame_end..self.end]);
        let retired = std::mem::replace(&mut self.buf, fresh);
        let backing = Bytes::from(retired);
        let payload = backing.slice(body_start + 13..body_start + 13 + payload_len);
        self.start = 0;
        self.end = tail_len;
        Some(Frame::Submit {
            request_id,
            payload,
            trace,
        })
    }
}

/// Decodes a frame body from a borrowed slice. The hot frames (`Submit`,
/// `Ping`, `Pong`, `Goodbye`) parse in place with no intermediate body
/// allocation; anything else — and any malformed hot frame — falls back to
/// the canonical [`Frame::decode`], which also produces the canonical error.
fn decode_body(body: &[u8]) -> Result<Frame, CloudError> {
    match body.first() {
        Some(&TAG_SUBMIT) if body.len() >= 13 => {
            let payload_len =
                u32::from_le_bytes(body[9..13].try_into().expect("4-byte slice")) as usize;
            let trace = if body.len() - 13 == payload_len {
                Some(None)
            } else if body.len() >= 13 + TRACE_EXT_LEN
                && body.len() - 13 - TRACE_EXT_LEN == payload_len
            {
                let t = &body[13 + payload_len..];
                Some(Some(TraceId::from_words(
                    u64::from_le_bytes(t[..8].try_into().expect("8-byte slice")),
                    u64::from_le_bytes(t[8..].try_into().expect("8-byte slice")),
                )))
            } else {
                None // malformed: canonical decoder reports it
            };
            if let Some(trace) = trace {
                return Ok(Frame::Submit {
                    request_id: u64::from_le_bytes(body[1..9].try_into().expect("8-byte slice")),
                    payload: Bytes::from(body[13..13 + payload_len].to_vec()),
                    trace,
                });
            }
        }
        Some(&TAG_PING) if body.len() == 9 => {
            return Ok(Frame::Ping {
                nonce: u64::from_le_bytes(body[1..9].try_into().expect("8-byte slice")),
            });
        }
        Some(&TAG_PONG) if body.len() == 9 => {
            return Ok(Frame::Pong {
                nonce: u64::from_le_bytes(body[1..9].try_into().expect("8-byte slice")),
            });
        }
        Some(&TAG_GOODBYE) if body.len() == 1 => return Ok(Frame::Goodbye),
        _ => {}
    }
    Frame::decode(Bytes::from(body.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalgam_nn::metrics::History;

    fn roundtrip(frame: Frame) {
        // Known tags decode under either reader direction; the origin only
        // governs which *unknown* tags are forgiven.
        for origin in [FrameOrigin::Client, FrameOrigin::Server] {
            let mut wire = Vec::new();
            let wrote = write_frame(&mut wire, &frame).unwrap();
            assert_eq!(wrote, wire.len());
            let mut cursor = std::io::Cursor::new(wire);
            let (back, len) = read_frame_blocking(&mut cursor, 1 << 30, origin)
                .unwrap()
                .unwrap();
            assert_eq!(len, wrote);
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(Frame::Hello {
            min_version: 1,
            max_version: 3,
            api_key: Some("key".into()),
        });
        roundtrip(Frame::Hello {
            min_version: 1,
            max_version: 1,
            api_key: None,
        });
        roundtrip(Frame::Welcome {
            version: 1,
            max_in_flight: 32,
            max_frame_len: 256 << 20,
        });
        roundtrip(Frame::Reject {
            reason: "unsupported protocol version".into(),
        });
        roundtrip(Frame::Submit {
            request_id: 9,
            payload: Bytes::from_static(b"job bytes"),
            trace: None,
        });
        roundtrip(Frame::Submit {
            request_id: 9,
            payload: Bytes::from_static(b"job bytes"),
            trace: Some(TraceId::from_words(0xdead_beef, 0xcafe)),
        });
        roundtrip(Frame::GetStats { request_id: 5 });
        roundtrip(Frame::Stats {
            request_id: 5,
            body: Ok(Bytes::from_static(b"snapshot bytes")),
        });
        roundtrip(Frame::Stats {
            request_id: 6,
            body: Err(CloudError::Unauthorized("no key".into())),
        });
        roundtrip(Frame::Reply {
            request_id: 11,
            result: Err(CloudError::ServiceUnavailable),
            trace: Some(TraceId::mint()),
        });
        roundtrip(Frame::Reply {
            request_id: 9,
            trace: None,
            result: Ok(JobResult {
                job_id: 9,
                trained_model: Bytes::from_static(b"weights"),
                history: History {
                    train_loss: vec![0.5],
                    train_acc: vec![0.75],
                    val_loss: vec![],
                    val_acc: vec![],
                    epoch_secs: vec![0.1],
                },
                bytes_received: 11,
                bytes_sent: 7,
                train_seconds: 0.25,
            }),
        });
        roundtrip(Frame::Reply {
            request_id: 10,
            result: Err(CloudError::Overloaded {
                queue_depth: 5,
                max_queue_depth: 2,
            }),
            trace: None,
        });
        roundtrip(Frame::Ping { nonce: 77 });
        roundtrip(Frame::Pong { nonce: 77 });
        roundtrip(Frame::Cancel { request_id: 44 });
        roundtrip(Frame::Progress {
            request_id: 44,
            update: ProgressUpdate {
                epoch: 3,
                total_epochs: 10,
                train_loss: 0.5,
                train_acc: 0.875,
            },
        });
        roundtrip(Frame::Goodbye);
    }

    #[test]
    fn unknown_extension_tags_are_skipped_without_desync() {
        // A frame with an unknown tag from the peer's own extension range,
        // sandwiched between known frames: both readers must drop it whole
        // and keep decoding.
        for (unknown_tag, origin) in [
            (7u8, FrameOrigin::Client),
            (127, FrameOrigin::Client),
            (135, FrameOrigin::Server),
            (255, FrameOrigin::Server),
        ] {
            let mut wire = Vec::new();
            write_frame(&mut wire, &Frame::Ping { nonce: 1 }).unwrap();
            let mut body = vec![unknown_tag];
            body.extend_from_slice(&[0xAB; 21]); // arbitrary extension fields
            write_encoded(&mut wire, &Bytes::from(body)).unwrap();
            write_frame(&mut wire, &Frame::Pong { nonce: 2 }).unwrap();

            let mut cursor = std::io::Cursor::new(wire.clone());
            let (a, _) = read_frame_blocking(&mut cursor, 1 << 20, origin)
                .unwrap()
                .unwrap();
            let (b, _) = read_frame_blocking(&mut cursor, 1 << 20, origin)
                .unwrap()
                .unwrap();
            assert_eq!(a, Frame::Ping { nonce: 1 });
            assert_eq!(b, Frame::Pong { nonce: 2 });
            assert!(read_frame_blocking(&mut cursor, 1 << 20, origin)
                .unwrap()
                .is_none());

            let mut dec = FrameDecoder::for_peer(origin);
            dec.extend(&wire);
            let mut out = Vec::new();
            while let Some((f, _)) = dec.next_frame(1 << 20).unwrap() {
                out.push(f);
            }
            assert_eq!(
                out,
                vec![Frame::Ping { nonce: 1 }, Frame::Pong { nonce: 2 }]
            );
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn unknown_tags_from_the_wrong_range_stay_errors() {
        // An unknown tag from the *other* side's extension range cannot be
        // a newer peer's frame — a client never legitimately invents
        // server-range tags — so it stays a hard decode error (this is what
        // keeps garbage-flinging peers rejected rather than ignored).
        for (unknown_tag, origin) in [(135u8, FrameOrigin::Client), (7, FrameOrigin::Server)] {
            let mut wire = Vec::new();
            write_encoded(&mut wire, &Bytes::from(vec![unknown_tag, 1, 2])).unwrap();
            let mut cursor = std::io::Cursor::new(wire.clone());
            assert!(matches!(
                read_frame_blocking(&mut cursor, 1 << 20, origin),
                Err(CloudError::Decode(_))
            ));
            let mut dec = FrameDecoder::for_peer(origin);
            dec.extend(&wire);
            assert!(matches!(
                dec.next_frame(1 << 20),
                Err(CloudError::Decode(_))
            ));
        }
    }

    #[test]
    fn non_extension_unknown_tags_still_error() {
        // Tag 0 and the 128 gap stay hard errors for both directions: they
        // sit outside the reserved extension ranges, so they can only mean
        // a corrupt stream, not a newer peer.
        for bad_tag in [0u8, 128] {
            for origin in [FrameOrigin::Client, FrameOrigin::Server] {
                let mut wire = Vec::new();
                write_encoded(&mut wire, &Bytes::from(vec![bad_tag, 1, 2])).unwrap();
                let mut cursor = std::io::Cursor::new(wire);
                assert!(matches!(
                    read_frame_blocking(&mut cursor, 1 << 20, origin),
                    Err(CloudError::Decode(_))
                ));
            }
        }
    }

    #[test]
    fn every_error_variant_roundtrips() {
        for err in [
            CloudError::ServiceUnavailable,
            CloudError::Decode("d".into()),
            CloudError::BadJob("b".into()),
            CloudError::Overloaded {
                queue_depth: 1,
                max_queue_depth: 0,
            },
            CloudError::RateLimited {
                retry_after_ms: 1234,
            },
            CloudError::Panicked("p".into()),
            CloudError::Transport("t".into()),
            CloudError::Unauthorized("u".into()),
            CloudError::Handshake("h".into()),
        ] {
            roundtrip(Frame::Reply {
                request_id: 0,
                result: Err(err),
                trace: None,
            });
        }
    }

    #[test]
    fn split_writes_are_bitwise_identical_to_whole_frame_writes() {
        // The zero-copy bulk path must put exactly the same bytes on the
        // wire as encoding the whole frame.
        let payload = Bytes::from_static(b"serialized job payload");
        let mut whole = Vec::new();
        write_frame(
            &mut whole,
            &Frame::Submit {
                request_id: 42,
                payload: payload.clone(),
                trace: None,
            },
        )
        .unwrap();
        let mut split = Vec::new();
        let n = write_split(&mut split, &submit_head(42, payload.len()), &payload, &[]).unwrap();
        assert_eq!(split, whole);
        assert_eq!(n, whole.len());

        // ...including when the trace extension rides the tail.
        let id = TraceId::from_words(7, 0x0102_0304_0506_0708);
        let mut whole = Vec::new();
        write_frame(
            &mut whole,
            &Frame::Submit {
                request_id: 42,
                payload: payload.clone(),
                trace: Some(id),
            },
        )
        .unwrap();
        let mut split = Vec::new();
        let n = write_split(
            &mut split,
            &submit_head(42, payload.len()),
            &payload,
            &trace_tail(id),
        )
        .unwrap();
        assert_eq!(split, whole);
        assert_eq!(n, whole.len());

        let result = JobResult {
            job_id: 7,
            trained_model: Bytes::from_static(b"weights"),
            history: History::new(),
            bytes_received: 3,
            bytes_sent: 9,
            train_seconds: 0.5,
        };
        let body = result.to_bytes();
        let mut whole = Vec::new();
        write_frame(
            &mut whole,
            &Frame::Reply {
                request_id: 7,
                result: Ok(result.clone()),
                trace: None,
            },
        )
        .unwrap();
        let mut split = Vec::new();
        let n = write_split(&mut split, &reply_ok_head(7, body.len()), &body, &[]).unwrap();
        assert_eq!(split, whole);
        assert_eq!(n, whole.len());

        let mut whole = Vec::new();
        write_frame(
            &mut whole,
            &Frame::Reply {
                request_id: 7,
                result: Ok(result),
                trace: Some(id),
            },
        )
        .unwrap();
        let mut split = Vec::new();
        let n = write_split(
            &mut split,
            &reply_ok_head(7, body.len()),
            &body,
            &trace_tail(id),
        )
        .unwrap();
        assert_eq!(split, whole);
        assert_eq!(n, whole.len());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(b"whatever");
        let mut cursor = std::io::Cursor::new(wire);
        match read_frame_blocking(&mut cursor, 1 << 20, FrameOrigin::Client) {
            Err(CloudError::Transport(msg)) => assert!(msg.contains("exceeds cap"), "{msg}"),
            other => panic!("expected Transport error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_a_transport_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Ping { nonce: 1 }).unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame_blocking(&mut cursor, 1 << 20, FrameOrigin::Client),
            Err(CloudError::Transport(_))
        ));
    }

    #[test]
    fn clean_eof_at_boundary_is_none() {
        let mut cursor = std::io::Cursor::new(Vec::new());
        assert!(
            read_frame_blocking(&mut cursor, 1 << 20, FrameOrigin::Client)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn garbage_body_is_a_decode_error() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(&[0xEE, 0xFF, 0x00]);
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame_blocking(&mut cursor, 1 << 20, FrameOrigin::Client),
            Err(CloudError::Decode(_))
        ));
    }

    #[test]
    fn trailing_bytes_after_body_are_rejected() {
        let mut body = Frame::Ping { nonce: 5 }.encode().to_vec();
        body.push(0);
        assert!(matches!(
            Frame::decode(Bytes::from(body)),
            Err(CloudError::Decode(_))
        ));
    }

    #[test]
    fn incremental_decoder_matches_blocking_reader_byte_at_a_time() {
        let frames = vec![
            Frame::Hello {
                min_version: 1,
                max_version: 1,
                api_key: Some("k".into()),
            },
            Frame::Submit {
                request_id: 3,
                payload: Bytes::from_static(b"payload bytes"),
                trace: None,
            },
            Frame::Submit {
                request_id: 4,
                payload: Bytes::from_static(b"traced payload"),
                trace: Some(TraceId::from_words(1, 2)),
            },
            Frame::GetStats { request_id: 1 },
            Frame::Ping { nonce: 11 },
            Frame::Goodbye,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for &b in &wire {
            dec.extend(&[b]);
            while let Some((frame, _)) = dec.next_frame(1 << 20).unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out, frames);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn incremental_decoder_enforces_length_cap_before_buffering() {
        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_le_bytes());
        match dec.next_frame(1 << 20) {
            Err(CloudError::Transport(msg)) => assert!(msg.contains("exceeds cap"), "{msg}"),
            other => panic!("expected Transport error, got {other:?}"),
        }
    }

    #[test]
    fn incremental_decoder_reads_from_stream_until_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Ping { nonce: 1 }).unwrap();
        write_frame(&mut wire, &Frame::Pong { nonce: 1 }).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut dec = FrameDecoder::new();
        let mut got = 0;
        loop {
            let n = dec.read_from(&mut cursor).unwrap();
            while let Some((_, _)) = dec.next_frame(1 << 20).unwrap() {
                got += 1;
            }
            if n == 0 {
                break;
            }
        }
        assert_eq!(got, 2);
    }

    #[test]
    fn zero_copy_split_path_preserves_trace_extension() {
        // Large enough to take try_split_large_submit, with the trace tail.
        let id = TraceId::from_words(0xaaaa, 0xbbbb);
        let frame = Frame::Submit {
            request_id: 21,
            payload: Bytes::from(vec![3u8; SPLIT_THRESHOLD + 64]),
            trace: Some(id),
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        // Trailing extra frame proves the tail handoff keeps undecoded bytes.
        write_frame(&mut wire, &Frame::Ping { nonce: 9 }).unwrap();
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        let (got, _) = dec.next_frame(1 << 30).unwrap().unwrap();
        assert_eq!(got, frame);
        let (ping, _) = dec.next_frame(1 << 30).unwrap().unwrap();
        assert_eq!(ping, Frame::Ping { nonce: 9 });
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_scratch_is_reused_and_shrinks_after_huge_frames() {
        let mut dec = FrameDecoder::new();
        // A frame bigger than the retain cap...
        let big = Frame::Submit {
            request_id: 1,
            payload: Bytes::from(vec![7u8; RETAIN_CAP * 2]),
            trace: None,
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &big).unwrap();
        dec.extend(&wire);
        assert!(dec.next_frame(1 << 30).unwrap().is_some());
        // ...must not pin its memory once drained.
        assert!(dec.buf.len() <= RETAIN_CAP);
        assert_eq!(dec.buffered(), 0);
    }
}
