//! The remote counterpart of [`crate::CloudClient`]: the same
//! submit/handle API, but every job crosses a real socket.
//!
//! One connection carries any number of concurrent jobs: submissions are
//! tagged with a client-chosen request id, replies are matched back by that
//! id (they arrive in *completion* order, not submission order), and a
//! background reader thread routes each one to its waiting
//! [`RemoteJobHandle`]. A keep-alive thread pings whenever the connection
//! has been quiet, so the server's idle timeout only ends sessions whose
//! client is actually gone.

use super::frame::{self, read_frame_blocking, write_frame, Frame};
use super::{TransportConfig, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use crate::protocol::{CloudJob, JobResult};
use crate::CloudError;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// A client of a [`crate::CloudServer`] over one multiplexed TCP
/// connection. Cloneable: clones share the connection and its session.
#[derive(Debug, Clone)]
pub struct RemoteCloudClient {
    shared: Arc<ClientShared>,
}

#[derive(Debug)]
struct ClientShared {
    /// Write half; every frame is written whole under this lock.
    writer: Mutex<TcpStream>,
    /// In-flight request ids → the channel their reply is routed to.
    pending: Mutex<HashMap<u64, Sender<Result<JobResult, CloudError>>>>,
    next_request: AtomicU64,
    closed: AtomicBool,
    /// The server's advertised frame cap: oversized submits are refused
    /// locally instead of poisoning the shared connection.
    server_max_frame_len: usize,
    /// Negotiated protocol version.
    version: u32,
    /// In-flight cap the server advertised for this session.
    server_max_in_flight: usize,
    last_write: Mutex<Instant>,
}

impl ClientShared {
    /// Marks the connection dead, tears the socket down (so the reader
    /// thread unblocks and exits instead of parking on a timeout-less read
    /// forever) and answers every outstanding handle. Callers must not hold
    /// the writer lock.
    fn fail_pending(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _ = self.writer.lock().shutdown(Shutdown::Both);
        let pending: Vec<_> = {
            let mut map = self.pending.lock();
            map.drain().collect()
        };
        for (_, tx) in pending {
            let _ = tx.send(Err(CloudError::ServiceUnavailable));
        }
    }
}

impl Drop for ClientShared {
    fn drop(&mut self) {
        // Unblocks the reader (it holds only a `Weak` to this state) and
        // lets the keep-alive thread retire on its next tick.
        self.closed.store(true, Ordering::SeqCst);
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

impl RemoteCloudClient {
    /// Connects and handshakes with the default [`TransportConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Transport`] on connect/I-O failure and
    /// [`CloudError::Handshake`] if the server refuses the session.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteCloudClient, CloudError> {
        RemoteCloudClient::connect_with(addr, TransportConfig::default())
    }

    /// [`connect`](Self::connect) with explicit tunables (API key,
    /// keep-alive cadence, frame cap).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Transport`] on connect/I-O failure and
    /// [`CloudError::Handshake`] if the server refuses the session.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: TransportConfig,
    ) -> Result<RemoteCloudClient, CloudError> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| CloudError::Transport(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(config.handshake_timeout));
        // A peer that stops reading must not wedge submit/keepalive/close
        // behind the writer lock forever; a timed-out write marks the
        // connection broken (symmetric with the server's session policy).
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        write_frame(
            &mut stream,
            &Frame::Hello {
                min_version: MIN_PROTOCOL_VERSION,
                max_version: PROTOCOL_VERSION,
                api_key: config.api_key.clone(),
            },
        )
        .map_err(|e| CloudError::Transport(format!("handshake write failed: {e}")))?;
        let (frame, _) = read_frame_blocking(&mut stream, config.max_frame_len)?
            .ok_or_else(|| CloudError::Handshake("server closed during handshake".into()))?;
        let (version, max_in_flight, server_max_frame_len) = match frame {
            Frame::Welcome {
                version,
                max_in_flight,
                max_frame_len,
            } => (version, max_in_flight, max_frame_len),
            Frame::Reject { reason } => return Err(CloudError::Handshake(reason)),
            other => {
                return Err(CloudError::Handshake(format!(
                    "expected Welcome, got {other:?}"
                )))
            }
        };
        let _ = stream.set_read_timeout(None);
        let read_half = stream
            .try_clone()
            .map_err(|e| CloudError::Transport(format!("socket clone failed: {e}")))?;
        let shared = Arc::new(ClientShared {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_request: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            server_max_frame_len: usize::try_from(server_max_frame_len).unwrap_or(usize::MAX),
            version,
            server_max_in_flight: max_in_flight as usize,
            last_write: Mutex::new(Instant::now()),
        });
        spawn_reader(Arc::downgrade(&shared), read_half, config.max_frame_len);
        let seed = shared
            .writer
            .lock()
            .local_addr()
            .map(|a| u64::from(a.port()))
            .unwrap_or(0);
        spawn_keepalive(
            Arc::downgrade(&shared),
            jittered_interval(config.keepalive_interval, seed),
        );
        Ok(RemoteCloudClient { shared })
    }

    /// The protocol version negotiated at the handshake.
    pub fn protocol_version(&self) -> u32 {
        self.shared.version
    }

    /// The per-connection in-flight cap the server advertised.
    pub fn max_in_flight(&self) -> usize {
        self.shared.server_max_in_flight
    }

    /// Uploads a job (serializing it — this *is* the trust boundary now)
    /// and returns a handle to the in-flight work.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Transport`] if the connection is broken and
    /// [`CloudError::ServiceUnavailable`] if it was already closed.
    pub fn submit(&self, job: &CloudJob) -> Result<RemoteJobHandle, CloudError> {
        self.submit_payload(job.to_bytes())
    }

    /// Uploads an already-serialized payload.
    ///
    /// # Errors
    ///
    /// Same surface as [`submit`](Self::submit).
    pub fn submit_payload(&self, payload: Bytes) -> Result<RemoteJobHandle, CloudError> {
        let shared = &*self.shared;
        if shared.closed.load(Ordering::SeqCst) {
            return Err(CloudError::ServiceUnavailable);
        }
        let id = shared.next_request.fetch_add(1, Ordering::Relaxed);
        // Zero-copy upload: the payload goes straight from the caller's
        // buffer to the socket, after only the small frame head is built.
        let head = frame::submit_head(id, payload.len());
        let body_len = head.len() + payload.len();
        // The wire cap is the smaller of the server's advertised limit and
        // what a u32 length prefix can carry at all; refusing here keeps an
        // oversized job from killing the shared connection.
        let cap = shared.server_max_frame_len.min(u32::MAX as usize);
        if body_len > cap {
            return Err(CloudError::Transport(format!(
                "job frame of {body_len} bytes exceeds the connection's cap of {cap} bytes"
            )));
        }
        let (tx, rx) = unbounded();
        shared.pending.lock().insert(id, tx);
        let written = {
            let mut w = shared.writer.lock();
            frame::write_split(&mut *w, &head, &payload)
        };
        if let Err(e) = written {
            shared.pending.lock().remove(&id);
            shared.fail_pending();
            return Err(CloudError::Transport(format!("submit write failed: {e}")));
        }
        *shared.last_write.lock() = Instant::now();
        if shared.closed.load(Ordering::SeqCst) {
            // The reader died between our first check and the write. Either
            // it already failed this entry (rx holds an error), or we remove
            // it here — both ways no handle can hang.
            shared.pending.lock().remove(&id);
            return Err(CloudError::ServiceUnavailable);
        }
        Ok(RemoteJobHandle { id, rx, done: None })
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// Propagates submission, transport, decode, validation and training
    /// errors.
    pub fn train(&self, job: &CloudJob) -> Result<JobResult, CloudError> {
        self.submit(job)?.wait()
    }

    /// Polite hang-up: sends `Goodbye`, closes the socket, and answers any
    /// still-pending handles with [`CloudError::ServiceUnavailable`].
    pub fn close(self) {
        let shared = &*self.shared;
        if !shared.closed.swap(true, Ordering::SeqCst) {
            let mut w = shared.writer.lock();
            let _ = write_frame(&mut *w, &Frame::Goodbye);
            let _ = w.shutdown(Shutdown::Both);
        }
        shared.fail_pending();
    }
}

/// Routes replies to their pending handles until the connection ends.
fn spawn_reader(weak: Weak<ClientShared>, mut stream: TcpStream, max_frame_len: usize) {
    std::thread::Builder::new()
        .name("cloud-remote-reader".into())
        .spawn(move || loop {
            match read_frame_blocking(&mut stream, max_frame_len) {
                Ok(Some((Frame::Reply { request_id, result }, _))) => {
                    let Some(shared) = weak.upgrade() else { return };
                    let tx = shared.pending.lock().remove(&request_id);
                    if let Some(tx) = tx {
                        let _ = tx.send(result);
                    }
                }
                Ok(Some((Frame::Pong { .. }, _))) => {}
                // Anything else from the server — or EOF, or a transport/
                // decode error — ends the session.
                Ok(Some(_)) | Ok(None) | Err(_) => {
                    if let Some(shared) = weak.upgrade() {
                        shared.fail_pending();
                    }
                    return;
                }
            }
        })
        .expect("spawn remote reader");
}

/// De-synchronizes keep-alives across a fleet of clients. A batch of
/// connections created together (worker pools, scale-out restarts) would
/// otherwise all go write-idle at the same moment and ping in the same
/// tick — a periodic thundering herd on the server's reactors. Each
/// connection instead pings at a deterministic point in
/// `[0.75, 1.0] × interval`, keyed by its local port; the result is never
/// *longer* than the configured interval, so a jittered client still
/// outruns any server idle timeout the plain interval would.
fn jittered_interval(interval: Duration, seed: u64) -> Duration {
    // splitmix64 finalizer: a cheap, well-mixed hash of the seed.
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
    interval.mul_f64(0.75 + 0.25 * frac)
}

/// Pings whenever the connection has been write-idle for a full interval.
fn spawn_keepalive(weak: Weak<ClientShared>, interval: Duration) {
    std::thread::Builder::new()
        .name("cloud-remote-keepalive".into())
        .spawn(move || {
            let tick = (interval / 4).max(Duration::from_millis(10));
            let mut nonce = 0u64;
            loop {
                std::thread::sleep(tick);
                let Some(shared) = weak.upgrade() else { return };
                if shared.closed.load(Ordering::SeqCst) {
                    return;
                }
                if shared.last_write.lock().elapsed() >= interval {
                    nonce += 1;
                    let sent = {
                        let mut w = shared.writer.lock();
                        write_frame(&mut *w, &Frame::Ping { nonce })
                    };
                    match sent {
                        Ok(_) => *shared.last_write.lock() = Instant::now(),
                        Err(_) => {
                            shared.fail_pending();
                            return;
                        }
                    }
                }
            }
        })
        .expect("spawn remote keepalive");
}

/// An in-flight remote job — API parity with [`crate::JobHandle`],
/// including the result-id match: `wait().unwrap().job_id == handle.id()`.
///
/// Error parity holds too, because every [`crate::CloudError`] variant
/// round-trips the Reply frame. In particular a job refused by the
/// server's per-session rate limiter resolves to
/// [`crate::CloudError::RateLimited`], whose
/// [`retry_after`](crate::CloudError::retry_after) tells this client how
/// long to back off before resubmitting — same as an in-process handle
/// would see:
///
/// ```no_run
/// # use amalgam_cloud::{CloudJob, RemoteCloudClient};
/// # fn demo(client: &RemoteCloudClient, job: &CloudJob) {
/// match client.submit(job).unwrap().wait() {
///     Ok(result) => println!("trained: {} bytes", result.bytes_sent),
///     Err(e) => {
///         if let Some(backoff) = e.retry_after() {
///             std::thread::sleep(backoff); // then resubmit
///         }
///     }
/// }
/// # }
/// ```
#[derive(Debug)]
pub struct RemoteJobHandle {
    id: u64,
    rx: Receiver<Result<JobResult, CloudError>>,
    done: Option<Result<JobResult, CloudError>>,
}

impl RemoteJobHandle {
    /// The request id this connection assigned (matches
    /// [`JobResult::job_id`] in the reply).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the job finishes.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::ServiceUnavailable`] if the connection died
    /// with the job still unanswered.
    pub fn wait(self) -> Result<JobResult, CloudError> {
        if let Some(done) = self.done {
            return done;
        }
        self.rx.recv().map_err(|_| CloudError::ServiceUnavailable)?
    }

    /// Non-blocking poll: `None` while the job is still running. Once the
    /// outcome is known it is cached, so polling again keeps returning it.
    pub fn try_wait(&mut self) -> Option<Result<JobResult, CloudError>> {
        if self.done.is_none() {
            match self.rx.try_recv() {
                Ok(result) => self.done = Some(result),
                Err(TryRecvError::Empty) => return None,
                Err(TryRecvError::Disconnected) => {
                    self.done = Some(Err(CloudError::ServiceUnavailable));
                }
            }
        }
        self.done.clone()
    }

    /// Blocks at most `timeout`; `None` on timeout, the (cached) outcome
    /// otherwise.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<JobResult, CloudError>> {
        if self.done.is_none() {
            match self.rx.recv_timeout(timeout) {
                Ok(result) => self.done = Some(result),
                Err(RecvTimeoutError::Timeout) => return None,
                Err(RecvTimeoutError::Disconnected) => {
                    self.done = Some(Err(CloudError::ServiceUnavailable));
                }
            }
        }
        self.done.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keepalive_jitter_stays_within_band_and_spreads_out() {
        let interval = Duration::from_secs(10);
        let lo = interval.mul_f64(0.75);
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..2048u64 {
            let j = jittered_interval(interval, seed);
            assert!(j >= lo, "seed {seed}: {j:?} under the 0.75x floor");
            assert!(j <= interval, "seed {seed}: {j:?} over the interval");
            assert_eq!(
                j,
                jittered_interval(interval, seed),
                "must be deterministic"
            );
            distinct.insert(j.as_nanos());
        }
        // Adjacent ports must not collapse onto the same phase.
        assert!(
            distinct.len() > 1024,
            "only {} distinct phases",
            distinct.len()
        );
    }
}
