//! The remote counterpart of [`crate::CloudClient`]: the same
//! submit/handle API, but every job crosses a real socket.
//!
//! One connection carries any number of concurrent jobs: submissions are
//! tagged with a client-chosen request id, replies are matched back by that
//! id (they arrive in *completion* order, not submission order), and a
//! background reader thread routes each one to its waiting
//! [`RemoteJobHandle`]. A keep-alive thread pings whenever the connection
//! has been quiet, so the server's idle timeout only ends sessions whose
//! client is actually gone.
//!
//! # Self-healing mode
//!
//! With [`TransportConfig::reconnect`] set, a lost connection no longer
//! fails the session. The connection lives in a *slot* guarded by a
//! generation counter; when a reader, writer or keep-alive observes the
//! link die, a supervisor thread empties the slot, re-dials with
//! [`super::DecorrelatedJitter`] backoff, re-handshakes, and resubmits
//! every pending job verbatim — same request id, same payload bytes.
//! Resubmission is safe because jobs are content-addressed: a replay of an
//! already-executing job coalesces server-side instead of training twice,
//! and seeded training makes any re-execution bitwise identical. Replies
//! carrying [`CloudError::RateLimited`] are not surfaced either: the job
//! is rescheduled through a [`super::RetryQueue`] at the server's
//! `retry_after` — never earlier — until its resubmission budget runs out.

use super::frame::{self, read_frame_blocking, write_frame, Frame, FrameOrigin};
use super::{
    ClientStats, ReconnectPolicy, TransportConfig, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::metrics::ServiceStats;
use crate::middleware::duration_us;
use crate::protocol::{CloudJob, JobResult, ProgressUpdate};
use crate::telemetry::{JobTrace, SpanRecord, Stage, Telemetry, TelemetryConfig, TraceId};
use crate::CloudError;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// A client of a [`crate::CloudServer`] over one multiplexed TCP
/// connection. Cloneable: clones share the connection and its session.
#[derive(Debug, Clone)]
pub struct RemoteCloudClient {
    shared: Arc<ClientShared>,
}

/// One live, handshaken connection. Replaceable in reconnect mode: the
/// generation stamps every thread reading from it, so a stale reader's
/// death notice cannot tear down its successor.
#[derive(Debug)]
struct Conn {
    /// Write half; every frame is written whole under this lock.
    writer: Mutex<TcpStream>,
    last_write: Mutex<Instant>,
    generation: u64,
    /// The server's advertised frame cap: oversized submits are refused
    /// locally instead of poisoning the shared connection.
    max_frame_len: usize,
}

/// One unanswered job: where its reply goes, plus everything needed to
/// submit it again after a reconnect or a scheduled retry.
#[derive(Debug)]
struct PendingJob {
    tx: Sender<Result<JobResult, CloudError>>,
    /// Where mid-job Progress frames land; dropping the entry (reply
    /// delivered, session failed) disconnects the handle's progress
    /// iterator.
    progress_tx: Sender<ProgressUpdate>,
    /// The handle asked for cancellation. Blocks retry rescheduling and
    /// reconnect resubmission: a cancelled job must never be revived.
    cancelled: bool,
    payload: Bytes,
    /// End-to-end trace id minted at submit; rides the Submit frame's
    /// trace extension when the server speaks protocol v2.
    trace: TraceId,
    /// When this job's Submit frame last hit the socket (reset on
    /// resubmission), so the reply can be scored as a round-trip.
    sent_at: Instant,
    /// Automatic resubmissions left before errors surface to the handle.
    resubmits_left: u32,
    /// While `Some`, a scheduled retry owns this job: it must not be
    /// rewritten before this instant (the `retry_after` contract), and the
    /// reconnect path leaves it to the retry schedule.
    not_before: Option<Instant>,
}

/// What link maintenance tells the supervisor thread.
#[derive(Debug)]
enum SupervisorMsg {
    /// The connection of this generation died; redial and resubmit.
    LinkDown { generation: u64 },
    /// Resubmit job `id` at `at` (a `retry_after` or error backoff).
    RetryAt { id: u64, at: Instant },
}

#[derive(Debug)]
struct ClientShared {
    config: TransportConfig,
    /// Resolved dial targets, kept for re-dials.
    addrs: Vec<SocketAddr>,
    /// The live connection, if any; `None` while down or reconnecting.
    conn: Mutex<Option<Arc<Conn>>>,
    /// Generation of the newest connection ever installed in the slot.
    generation: AtomicU64,
    /// In-flight request ids → reply routing and resubmission state.
    pending: Mutex<HashMap<u64, PendingJob>>,
    /// In-flight `GetStats` request ids → where the decoded snapshot goes.
    stats_waiters: Mutex<HashMap<u64, Sender<Result<ServiceStats, CloudError>>>>,
    /// Client-side telemetry: the submit-to-reply RTT histogram
    /// ([`Stage::Rpc`]) and a flight recorder holding the client's view of
    /// each trace — the first of the three tiers a trace id is visible at.
    telemetry: Telemetry,
    next_request: AtomicU64,
    closed: AtomicBool,
    /// Negotiated protocol version (first handshake).
    version: u32,
    /// In-flight cap the server advertised for this session (first
    /// handshake).
    server_max_in_flight: usize,
    /// Present iff a reconnect policy is set; link failures route here
    /// instead of failing the session.
    supervisor: Option<Sender<SupervisorMsg>>,
    reconnects: AtomicU64,
    jobs_resubmitted: AtomicU64,
    retries_scheduled: AtomicU64,
}

impl ClientShared {
    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Marks the connection dead, tears the socket down (so the reader
    /// thread unblocks and exits instead of parking on a timeout-less read
    /// forever) and answers every outstanding handle.
    fn fail_pending(&self) {
        self.closed.store(true, Ordering::SeqCst);
        if let Some(conn) = self.conn.lock().take() {
            let _ = conn.writer.lock().shutdown(Shutdown::Both);
        }
        let pending: Vec<_> = {
            let mut map = self.pending.lock();
            map.drain().collect()
        };
        for (_, job) in pending {
            let _ = job.tx.send(Err(CloudError::ServiceUnavailable));
        }
        self.fail_stats_waiters();
    }

    /// Answers every outstanding `GetStats` request with
    /// [`CloudError::ServiceUnavailable`]. Stats requests are not
    /// resubmitted across reconnects (a snapshot of a connection that died
    /// is not worth healing), so this runs on every link loss.
    fn fail_stats_waiters(&self) {
        let waiters: Vec<_> = {
            let mut map = self.stats_waiters.lock();
            map.drain().collect()
        };
        for (_, tx) in waiters {
            let _ = tx.send(Err(CloudError::ServiceUnavailable));
        }
    }

    /// A link of `generation` stopped working. In reconnect mode this
    /// hands the incident to the supervisor; otherwise it ends the session.
    fn link_down(&self, generation: u64) {
        if self.is_closed() {
            return;
        }
        match &self.supervisor {
            Some(tx) => {
                let _ = tx.send(SupervisorMsg::LinkDown { generation });
            }
            None => self.fail_pending(),
        }
    }

    /// Routes one reply. In reconnect mode, retryable outcomes
    /// (`RateLimited` with its honest `retry_after`, and the
    /// `ServiceUnavailable` a failing-over proxy answers with) are turned
    /// into scheduled resubmissions while the job still has budget.
    fn handle_reply(&self, id: u64, result: Result<JobResult, CloudError>) {
        let retry_delay = match (&self.supervisor, &result) {
            (Some(_), Err(e @ CloudError::RateLimited { .. })) => e.retry_after(),
            (Some(_), Err(CloudError::ServiceUnavailable)) => Some(
                self.config
                    .reconnect
                    .as_ref()
                    .map(|p| p.base)
                    .unwrap_or(Duration::from_millis(50)),
            ),
            _ => None,
        };
        if let (Some(delay), Some(tx)) = (retry_delay, &self.supervisor) {
            let mut pending = self.pending.lock();
            if let Some(job) = pending.get_mut(&id) {
                if job.resubmits_left > 0 && !job.cancelled && !self.is_closed() {
                    job.resubmits_left -= 1;
                    let at = Instant::now() + delay;
                    job.not_before = Some(at);
                    drop(pending);
                    self.retries_scheduled.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(SupervisorMsg::RetryAt { id, at });
                    return;
                }
            }
        }
        let job = self.pending.lock().remove(&id);
        if let Some(job) = job {
            self.record_rpc(id, &job, result.is_ok());
            let _ = job.tx.send(result);
        }
    }

    /// Routes one mid-job progress frame to its pending handle. A miss is
    /// benign: the frame raced the reply that retired the entry.
    fn handle_progress(&self, id: u64, update: ProgressUpdate) {
        let pending = self.pending.lock();
        if let Some(job) = pending.get(&id) {
            let _ = job.progress_tx.send(update);
        }
    }

    /// Marks job `id` cancelled and (best effort) tells the server. The
    /// Cancel frame is a protocol-v2 extension; against a v1 server the
    /// local mark still blocks client-side revival, but the server runs
    /// the job to completion and the handle sees its ordinary outcome.
    fn cancel_job(&self, id: u64) {
        {
            let mut pending = self.pending.lock();
            match pending.get_mut(&id) {
                Some(job) => job.cancelled = true,
                None => return, // already answered
            }
        }
        if self.version < 2 {
            return;
        }
        let Some(conn) = self.conn.lock().clone() else {
            return; // link down: the reconnect path settles the job
        };
        let written = {
            let mut w = conn.writer.lock();
            write_frame(&mut *w, &Frame::Cancel { request_id: id })
        };
        match written {
            Ok(_) => *conn.last_write.lock() = Instant::now(),
            Err(_) => self.link_down(conn.generation),
        }
    }

    /// Scores one answered job into the client telemetry plane: the
    /// submit-to-reply round trip lands in the [`Stage::Rpc`] histogram and
    /// the flight recorder gains this tier's view of the trace.
    fn record_rpc(&self, id: u64, job: &PendingJob, ok: bool) {
        if !self.telemetry.enabled() {
            return;
        }
        let rtt = job.sent_at.elapsed();
        self.telemetry.record(Stage::Rpc, rtt);
        let dur_us = duration_us(rtt);
        self.telemetry.recorder().push(JobTrace {
            trace: job.trace,
            job_id: id,
            total_us: dur_us,
            ok,
            spans: vec![SpanRecord {
                stage: Stage::Rpc,
                start_us: 0,
                dur_us,
                ok,
            }],
        });
    }

    /// Writes one pending job's Submit frame to `conn`. Returns `false`
    /// when the link broke (and reports it), `true` otherwise — including
    /// the job-local failure of an oversized payload, which is answered on
    /// its own handle without condemning the link.
    /// The Submit frame's trace-extension bytes, or `None` when the trace
    /// must stay off the wire (v1 server, or no trace minted).
    fn trace_tail(&self, trace: TraceId) -> Option<[u8; frame::TRACE_EXT_LEN]> {
        (self.version >= 2 && !trace.is_none()).then(|| frame::trace_tail(trace))
    }

    fn write_pending(&self, conn: &Conn, id: u64, payload: &Bytes, trace: TraceId) -> bool {
        let head = frame::submit_head(id, payload.len());
        let tail = self.trace_tail(trace);
        let tail: &[u8] = tail.as_ref().map_or(&[], |t| &t[..]);
        let cap = conn.max_frame_len.min(u32::MAX as usize);
        if head.len() + payload.len() + tail.len() > cap {
            if let Some(job) = self.pending.lock().remove(&id) {
                let _ = job.tx.send(Err(CloudError::Transport(format!(
                    "job frame of {} bytes exceeds the connection's cap of {cap} bytes",
                    head.len() + payload.len() + tail.len()
                ))));
            }
            return true;
        }
        let written = {
            let mut w = conn.writer.lock();
            frame::write_split(&mut *w, &head, payload, tail)
        };
        match written {
            Ok(_) => {
                *conn.last_write.lock() = Instant::now();
                if let Some(job) = self.pending.lock().get_mut(&id) {
                    job.sent_at = Instant::now();
                }
                true
            }
            Err(_) => {
                self.link_down(conn.generation);
                false
            }
        }
    }
}

impl Drop for ClientShared {
    fn drop(&mut self) {
        // Unblocks the reader (it holds only a `Weak` to this state) and
        // lets the keep-alive and supervisor threads retire on their next
        // tick.
        self.closed.store(true, Ordering::SeqCst);
        if let Some(conn) = self.conn.lock().take() {
            let _ = conn.writer.lock().shutdown(Shutdown::Both);
        }
    }
}

/// Dials `addrs` in order — each attempt bounded by
/// [`TransportConfig::connect_timeout`] — and performs the handshake on
/// the first address that accepts the TCP connection.
fn dial(
    addrs: &[SocketAddr],
    config: &TransportConfig,
) -> Result<(TcpStream, u32, u32, u64), CloudError> {
    let mut last_err = CloudError::Transport("no address to connect to".into());
    for addr in addrs {
        match TcpStream::connect_timeout(addr, config.connect_timeout) {
            Ok(stream) => return handshake(stream, config),
            Err(e) => last_err = CloudError::Transport(format!("connect to {addr} failed: {e}")),
        }
    }
    Err(last_err)
}

/// Client half of the handshake: `Hello` out, `Welcome` (or `Reject`) in.
fn handshake(
    mut stream: TcpStream,
    config: &TransportConfig,
) -> Result<(TcpStream, u32, u32, u64), CloudError> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.handshake_timeout));
    // A peer that stops reading must not wedge submit/keepalive/close
    // behind the writer lock forever; a timed-out write marks the
    // connection broken (symmetric with the server's session policy).
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    write_frame(
        &mut stream,
        &Frame::Hello {
            min_version: MIN_PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION,
            api_key: config.api_key.clone(),
        },
    )
    .map_err(|e| CloudError::Transport(format!("handshake write failed: {e}")))?;
    let (frame, _) =
        read_frame_blocking(&mut stream, config.max_frame_len, FrameOrigin::Server)?
            .ok_or_else(|| CloudError::Handshake("server closed during handshake".into()))?;
    let (version, max_in_flight, server_max_frame_len) = match frame {
        Frame::Welcome {
            version,
            max_in_flight,
            max_frame_len,
        } => (version, max_in_flight, max_frame_len),
        Frame::Reject { reason } => return Err(CloudError::Handshake(reason)),
        other => {
            return Err(CloudError::Handshake(format!(
                "expected Welcome, got {other:?}"
            )))
        }
    };
    let _ = stream.set_read_timeout(None);
    Ok((stream, version, max_in_flight, server_max_frame_len))
}

impl RemoteCloudClient {
    /// Connects and handshakes with the default [`TransportConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Transport`] on connect/I-O failure and
    /// [`CloudError::Handshake`] if the server refuses the session.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteCloudClient, CloudError> {
        RemoteCloudClient::connect_with(addr, TransportConfig::default())
    }

    /// [`connect`](Self::connect) with explicit tunables (API key,
    /// keep-alive cadence, frame cap, connect deadline, reconnect policy).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Transport`] on connect/I-O failure and
    /// [`CloudError::Handshake`] if the server refuses the session.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: TransportConfig,
    ) -> Result<RemoteCloudClient, CloudError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| CloudError::Transport(format!("address resolution failed: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(CloudError::Transport("address resolved to nothing".into()));
        }
        let (stream, version, max_in_flight, server_max_frame_len) = dial(&addrs, &config)?;
        let read_half = stream
            .try_clone()
            .map_err(|e| CloudError::Transport(format!("socket clone failed: {e}")))?;
        let keepalive_seed = stream
            .local_addr()
            .map(|a| u64::from(a.port()))
            .unwrap_or(0);
        let conn = Arc::new(Conn {
            writer: Mutex::new(stream),
            last_write: Mutex::new(Instant::now()),
            generation: 0,
            max_frame_len: usize::try_from(server_max_frame_len).unwrap_or(usize::MAX),
        });
        let (supervisor, supervisor_rx) = match config.reconnect {
            Some(_) => {
                let (tx, rx) = unbounded();
                (Some(tx), Some(rx))
            }
            None => (None, None),
        };
        let max_frame_len = config.max_frame_len;
        let keepalive_interval = jittered_interval(config.keepalive_interval, keepalive_seed);
        let shared = Arc::new(ClientShared {
            config,
            addrs,
            conn: Mutex::new(Some(conn)),
            generation: AtomicU64::new(0),
            pending: Mutex::new(HashMap::new()),
            stats_waiters: Mutex::new(HashMap::new()),
            telemetry: Telemetry::new(&TelemetryConfig::default()),
            next_request: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            version,
            server_max_in_flight: max_in_flight as usize,
            supervisor,
            reconnects: AtomicU64::new(0),
            jobs_resubmitted: AtomicU64::new(0),
            retries_scheduled: AtomicU64::new(0),
        });
        spawn_reader(Arc::downgrade(&shared), read_half, max_frame_len, 0);
        spawn_keepalive(Arc::downgrade(&shared), keepalive_interval);
        if let Some(rx) = supervisor_rx {
            spawn_supervisor(Arc::downgrade(&shared), rx);
        }
        Ok(RemoteCloudClient { shared })
    }

    /// The protocol version negotiated at the handshake.
    pub fn protocol_version(&self) -> u32 {
        self.shared.version
    }

    /// The per-connection in-flight cap the server advertised.
    pub fn max_in_flight(&self) -> usize {
        self.shared.server_max_in_flight
    }

    /// This client's self-healing tallies (all zero without a
    /// [`ReconnectPolicy`]) plus its submit-to-reply round-trip histogram.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            reconnects: self.shared.reconnects.load(Ordering::Relaxed),
            jobs_resubmitted: self.shared.jobs_resubmitted.load(Ordering::Relaxed),
            retries_scheduled: self.shared.retries_scheduled.load(Ordering::Relaxed),
            rtt: self.shared.telemetry.hist(Stage::Rpc).snapshot(),
        }
    }

    /// The client-side telemetry plane: the [`Stage::Rpc`] round-trip
    /// histogram and a flight recorder holding this tier's view of every
    /// answered trace (look a job up by the trace id the server echoed).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Fetches the **server's** full [`ServiceStats`] snapshot over this
    /// session — the wire twin of [`crate::CloudServer::stats`], available
    /// to remote operators without a listener-side handle.
    ///
    /// # Errors
    ///
    /// [`CloudError::Handshake`] if the server predates protocol v2,
    /// [`CloudError::Unauthorized`] if the service requires API keys and
    /// this session's key is not among them, plus the usual transport
    /// surface ([`CloudError::ServiceUnavailable`] on a dead session).
    pub fn fetch_stats(&self) -> Result<ServiceStats, CloudError> {
        let shared = &*self.shared;
        if shared.is_closed() {
            return Err(CloudError::ServiceUnavailable);
        }
        if shared.version < 2 {
            return Err(CloudError::Handshake(
                "server protocol predates GetStats (needs v2)".into(),
            ));
        }
        let id = shared.next_request.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        shared.stats_waiters.lock().insert(id, tx);
        let Some(conn) = shared.conn.lock().clone() else {
            shared.stats_waiters.lock().remove(&id);
            return Err(CloudError::ServiceUnavailable);
        };
        let written = {
            let mut w = conn.writer.lock();
            write_frame(&mut *w, &Frame::GetStats { request_id: id })
        };
        match written {
            Ok(_) => *conn.last_write.lock() = Instant::now(),
            Err(e) => {
                shared.stats_waiters.lock().remove(&id);
                shared.link_down(conn.generation);
                return Err(CloudError::Transport(format!(
                    "stats request write failed: {e}"
                )));
            }
        }
        rx.recv().map_err(|_| CloudError::ServiceUnavailable)?
    }

    /// Uploads a job (serializing it — this *is* the trust boundary now)
    /// and returns a handle to the in-flight work.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Transport`] if the connection is broken and
    /// [`CloudError::ServiceUnavailable`] if it was already closed.
    pub fn submit(&self, job: &CloudJob) -> Result<RemoteJobHandle, CloudError> {
        self.submit_payload(job.to_bytes())
    }

    /// Uploads an already-serialized payload.
    ///
    /// In reconnect mode a submit while the link is down still succeeds:
    /// the job parks as pending and rides the next reconnect's
    /// resubmission.
    ///
    /// # Errors
    ///
    /// Same surface as [`submit`](Self::submit).
    pub fn submit_payload(&self, payload: Bytes) -> Result<RemoteJobHandle, CloudError> {
        let shared = &*self.shared;
        if shared.is_closed() {
            return Err(CloudError::ServiceUnavailable);
        }
        let id = shared.next_request.fetch_add(1, Ordering::Relaxed);
        let reconnecting = shared.supervisor.is_some();
        // Mint the end-to-end trace id here — the submit instant is the
        // root of the trace. It rides the frame's trace extension when the
        // server speaks v2; against a v1 server it still names this
        // client's own span of the job.
        let trace = if shared.telemetry.enabled() {
            TraceId::mint()
        } else {
            TraceId::NONE
        };
        let (tx, rx) = unbounded();
        let (progress_tx, progress_rx) = unbounded();
        // The payload is retained (a cheap refcount clone) so the
        // supervisor can resubmit it verbatim; without a policy it is
        // dropped with the entry when the reply lands.
        shared.pending.lock().insert(
            id,
            PendingJob {
                tx,
                progress_tx,
                cancelled: false,
                payload: payload.clone(),
                trace,
                sent_at: Instant::now(),
                resubmits_left: shared
                    .config
                    .reconnect
                    .as_ref()
                    .map(|p| p.max_resubmits)
                    .unwrap_or(0),
                not_before: None,
            },
        );
        let conn = shared.conn.lock().clone();
        match conn {
            Some(conn) => {
                // Zero-copy upload: the payload goes straight from the
                // caller's buffer to the socket, after only the small frame
                // head is built.
                let head = frame::submit_head(id, payload.len());
                let tail = shared.trace_tail(trace);
                let tail: &[u8] = tail.as_ref().map_or(&[], |t| &t[..]);
                let body_len = head.len() + payload.len() + tail.len();
                // The wire cap is the smaller of the server's advertised
                // limit and what a u32 length prefix can carry at all;
                // refusing here keeps an oversized job from killing the
                // shared connection.
                let cap = conn.max_frame_len.min(u32::MAX as usize);
                if body_len > cap {
                    shared.pending.lock().remove(&id);
                    return Err(CloudError::Transport(format!(
                        "job frame of {body_len} bytes exceeds the connection's cap of {cap} bytes"
                    )));
                }
                let written = {
                    let mut w = conn.writer.lock();
                    frame::write_split(&mut *w, &head, &payload, tail)
                };
                if let Err(e) = written {
                    if reconnecting {
                        // The job stays pending; the supervisor resubmits
                        // it once the link is back.
                        shared.link_down(conn.generation);
                    } else {
                        shared.pending.lock().remove(&id);
                        shared.fail_pending();
                        return Err(CloudError::Transport(format!("submit write failed: {e}")));
                    }
                } else {
                    *conn.last_write.lock() = Instant::now();
                }
            }
            // Link down right now. Self-healing clients park the job for
            // the reconnect's resubmission sweep; fail-fast clients can
            // only get here racing `close()`, which answers the entry.
            None => {
                if !reconnecting {
                    shared.pending.lock().remove(&id);
                    return Err(CloudError::ServiceUnavailable);
                }
            }
        }
        if shared.is_closed() {
            // The session closed between our first check and the write.
            // Either `fail_pending` already answered this entry (rx holds
            // an error), or we remove it here — both ways no handle hangs.
            shared.pending.lock().remove(&id);
            return Err(CloudError::ServiceUnavailable);
        }
        Ok(RemoteJobHandle {
            id,
            rx,
            progress_rx,
            shared: Arc::downgrade(&self.shared),
            done: None,
        })
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// Propagates submission, transport, decode, validation and training
    /// errors.
    pub fn train(&self, job: &CloudJob) -> Result<JobResult, CloudError> {
        self.submit(job)?.wait()
    }

    /// Polite hang-up: sends `Goodbye`, closes the socket, and answers any
    /// still-pending handles with [`CloudError::ServiceUnavailable`].
    pub fn close(self) {
        let shared = &*self.shared;
        if !shared.closed.swap(true, Ordering::SeqCst) {
            if let Some(conn) = &*shared.conn.lock() {
                let mut w = conn.writer.lock();
                let _ = write_frame(&mut *w, &Frame::Goodbye);
                let _ = w.shutdown(Shutdown::Both);
            }
        }
        shared.fail_pending();
    }
}

/// Routes replies to their pending handles until this connection ends.
fn spawn_reader(
    weak: Weak<ClientShared>,
    mut stream: TcpStream,
    max_frame_len: usize,
    generation: u64,
) {
    std::thread::Builder::new()
        .name("cloud-remote-reader".into())
        .spawn(move || loop {
            match read_frame_blocking(&mut stream, max_frame_len, FrameOrigin::Server) {
                // The echoed trace id (when present) matches the one this
                // client minted at submit; the pending entry already holds
                // it, so the tail needs no routing of its own.
                Ok(Some((
                    Frame::Reply {
                        request_id,
                        result,
                        trace: _,
                    },
                    _,
                ))) => {
                    let Some(shared) = weak.upgrade() else { return };
                    shared.handle_reply(request_id, result);
                }
                Ok(Some((Frame::Stats { request_id, body }, _))) => {
                    let Some(shared) = weak.upgrade() else { return };
                    let waiter = shared.stats_waiters.lock().remove(&request_id);
                    if let Some(tx) = waiter {
                        let _ = tx.send(body.and_then(ServiceStats::from_bytes));
                    }
                }
                Ok(Some((Frame::Progress { request_id, update }, _))) => {
                    let Some(shared) = weak.upgrade() else { return };
                    shared.handle_progress(request_id, update);
                }
                Ok(Some((Frame::Pong { .. }, _))) => {}
                // Anything else from the server — or EOF, or a transport/
                // decode error — ends this connection (not necessarily the
                // session: with a reconnect policy the supervisor takes
                // over).
                Ok(Some(_)) | Ok(None) | Err(_) => {
                    if let Some(shared) = weak.upgrade() {
                        shared.link_down(generation);
                    }
                    return;
                }
            }
        })
        .expect("spawn remote reader");
}

/// De-synchronizes keep-alives across a fleet of clients. A batch of
/// connections created together (worker pools, scale-out restarts) would
/// otherwise all go write-idle at the same moment and ping in the same
/// tick — a periodic thundering herd on the server's reactors. Each
/// connection instead pings at a deterministic point in
/// `[0.75, 1.0] × interval`, keyed by its local port; the result is never
/// *longer* than the configured interval, so a jittered client still
/// outruns any server idle timeout the plain interval would.
fn jittered_interval(interval: Duration, seed: u64) -> Duration {
    // splitmix64 finalizer: a cheap, well-mixed hash of the seed.
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
    interval.mul_f64(0.75 + 0.25 * frac)
}

/// Pings whenever the connection has been write-idle for a full interval.
/// Outlives individual connections: in reconnect mode it simply skips
/// ticks while the link is down.
fn spawn_keepalive(weak: Weak<ClientShared>, interval: Duration) {
    std::thread::Builder::new()
        .name("cloud-remote-keepalive".into())
        .spawn(move || {
            let tick = (interval / 4).max(Duration::from_millis(10));
            let mut nonce = 0u64;
            loop {
                std::thread::sleep(tick);
                let Some(shared) = weak.upgrade() else { return };
                if shared.is_closed() {
                    return;
                }
                let Some(conn) = shared.conn.lock().clone() else {
                    continue;
                };
                if conn.last_write.lock().elapsed() >= interval {
                    nonce += 1;
                    let sent = {
                        let mut w = conn.writer.lock();
                        write_frame(&mut *w, &Frame::Ping { nonce })
                    };
                    match sent {
                        Ok(_) => *conn.last_write.lock() = Instant::now(),
                        Err(_) => {
                            shared.link_down(conn.generation);
                            if shared.supervisor.is_none() {
                                return;
                            }
                        }
                    }
                }
            }
        })
        .expect("spawn remote keepalive");
}

/// The self-healing loop: reacts to link-down notices by re-dialing with
/// decorrelated-jitter backoff, and fires scheduled retries when (never
/// before) they come due.
fn spawn_supervisor(weak: Weak<ClientShared>, rx: Receiver<SupervisorMsg>) {
    std::thread::Builder::new()
        .name("cloud-remote-supervisor".into())
        .spawn(move || {
            let policy = {
                let Some(shared) = weak.upgrade() else { return };
                shared
                    .config
                    .reconnect
                    .clone()
                    .expect("supervisor implies a reconnect policy")
            };
            let mut jitter = policy.jitter();
            let mut retries = super::RetryQueue::new();
            loop {
                let timeout = retries
                    .next_due()
                    .map(|at| at.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(500));
                match rx.recv_timeout(timeout) {
                    Ok(SupervisorMsg::LinkDown { generation }) => {
                        let Some(shared) = weak.upgrade() else { return };
                        if shared.is_closed() {
                            return;
                        }
                        handle_link_down(&shared, &weak, generation, &policy, &mut jitter);
                    }
                    Ok(SupervisorMsg::RetryAt { id, at }) => retries.schedule(id, at),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
                let Some(shared) = weak.upgrade() else { return };
                if shared.is_closed() {
                    return;
                }
                for id in retries.pop_due(Instant::now()) {
                    fire_retry(&shared, id);
                }
            }
        })
        .expect("spawn remote supervisor");
}

/// Empties the connection slot (if the notice isn't stale) and runs the
/// redial loop until a new connection is installed, the dial budget runs
/// out, or the client closes.
fn handle_link_down(
    shared: &Arc<ClientShared>,
    weak: &Weak<ClientShared>,
    generation: u64,
    policy: &ReconnectPolicy,
    jitter: &mut super::DecorrelatedJitter,
) {
    {
        let mut slot = shared.conn.lock();
        // Only the notice about the *current* generation empties the slot;
        // a stale reader's death notice after a completed failover is a
        // no-op.
        if generation != shared.generation.load(Ordering::SeqCst) {
            return;
        }
        if let Some(conn) = slot.take() {
            let _ = conn.writer.lock().shutdown(Shutdown::Both);
        }
    }
    // Jobs heal across the redial; stats requests do not (a snapshot of a
    // dead connection is not worth waiting a backoff for).
    shared.fail_stats_waiters();
    jitter.reset();
    let mut attempts = 0usize;
    loop {
        if shared.is_closed() {
            return;
        }
        attempts += 1;
        let dialed = dial(&shared.addrs, &shared.config).and_then(|(stream, _, _, mfl)| {
            let read_half = stream
                .try_clone()
                .map_err(|e| CloudError::Transport(format!("socket clone failed: {e}")))?;
            Ok((stream, read_half, mfl))
        });
        match dialed {
            Ok((stream, read_half, server_max_frame_len)) => {
                let new_gen = shared.generation.fetch_add(1, Ordering::SeqCst) + 1;
                let conn = Arc::new(Conn {
                    writer: Mutex::new(stream),
                    last_write: Mutex::new(Instant::now()),
                    generation: new_gen,
                    max_frame_len: usize::try_from(server_max_frame_len).unwrap_or(usize::MAX),
                });
                *shared.conn.lock() = Some(conn.clone());
                shared.reconnects.fetch_add(1, Ordering::Relaxed);
                spawn_reader(
                    weak.clone(),
                    read_half,
                    shared.config.max_frame_len,
                    new_gen,
                );
                resubmit_pending(shared, &conn);
                return;
            }
            Err(_) => {
                if policy.max_dial_attempts > 0 && attempts >= policy.max_dial_attempts {
                    shared.fail_pending();
                    return;
                }
                std::thread::sleep(jitter.next_delay());
            }
        }
    }
}

/// Rewrites every pending job to a fresh connection — except jobs owned by
/// a scheduled retry (`not_before` set), which the retry schedule will
/// fire itself once due; rewriting those here could beat their
/// `retry_after`.
fn resubmit_pending(shared: &Arc<ClientShared>, conn: &Conn) {
    // Cancelled jobs are settled, never revived: the dead link took the
    // server's copy with it, and replaying a job the caller gave up on
    // would only burn backend work. Their handles resolve right here.
    let (mut ids, cancelled) = {
        let mut pending = shared.pending.lock();
        let dead: Vec<u64> = pending
            .iter()
            .filter(|(_, job)| job.cancelled)
            .map(|(id, _)| *id)
            .collect();
        let cancelled: Vec<PendingJob> = dead
            .into_iter()
            .filter_map(|id| pending.remove(&id))
            .collect();
        let ids: Vec<(u64, Bytes, TraceId)> = pending
            .iter()
            .filter(|(_, job)| job.not_before.is_none())
            .map(|(id, job)| (*id, job.payload.clone(), job.trace))
            .collect();
        (ids, cancelled)
    };
    for job in cancelled {
        let _ = job.tx.send(Err(CloudError::Cancelled));
    }
    // Request-id order preserves the caller's submission order.
    ids.sort_by_key(|(id, _, _)| *id);
    for (id, payload, trace) in ids {
        if !shared.write_pending(conn, id, &payload, trace) {
            return;
        }
        shared.jobs_resubmitted.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fires one due retry: the job gives up its `not_before` reservation and
/// is rewritten if the link is up. If the link is down the job simply
/// rejoins the ordinary pending set — the next reconnect resubmits it.
fn fire_retry(shared: &Arc<ClientShared>, id: u64) {
    let (payload, trace) = {
        let mut pending = shared.pending.lock();
        if pending.get(&id).is_some_and(|job| job.cancelled) {
            let job = pending.remove(&id).expect("checked just above");
            drop(pending);
            let _ = job.tx.send(Err(CloudError::Cancelled));
            return;
        }
        let Some(job) = pending.get_mut(&id) else {
            return;
        };
        job.not_before = None;
        (job.payload.clone(), job.trace)
    };
    let Some(conn) = shared.conn.lock().clone() else {
        return;
    };
    if shared.write_pending(&conn, id, &payload, trace) {
        shared.jobs_resubmitted.fetch_add(1, Ordering::Relaxed);
    }
}

/// An in-flight remote job — API parity with [`crate::JobHandle`],
/// including the result-id match: `wait().unwrap().job_id == handle.id()`.
///
/// Error parity holds too, because every [`crate::CloudError`] variant
/// round-trips the Reply frame. In particular a job refused by the
/// server's per-session rate limiter resolves to
/// [`crate::CloudError::RateLimited`], whose
/// [`retry_after`](crate::CloudError::retry_after) tells this client how
/// long to back off before resubmitting — same as an in-process handle
/// would see:
///
/// ```no_run
/// # use amalgam_cloud::{CloudJob, RemoteCloudClient};
/// # fn demo(client: &RemoteCloudClient, job: &CloudJob) {
/// match client.submit(job).unwrap().wait() {
///     Ok(result) => println!("trained: {} bytes", result.bytes_sent),
///     Err(e) => {
///         if let Some(backoff) = e.retry_after() {
///             std::thread::sleep(backoff); // then resubmit
///         }
///     }
/// }
/// # }
/// ```
///
/// (A client running a [`ReconnectPolicy`] performs that dance itself: the
/// handle only sees `RateLimited` once the job's resubmission budget is
/// spent.)
#[derive(Debug)]
pub struct RemoteJobHandle {
    id: u64,
    rx: Receiver<Result<JobResult, CloudError>>,
    progress_rx: Receiver<ProgressUpdate>,
    /// Back-reference for [`cancel`](Self::cancel); weak so a forgotten
    /// handle never keeps the session alive.
    shared: Weak<ClientShared>,
    done: Option<Result<JobResult, CloudError>>,
}

impl RemoteJobHandle {
    /// The request id this connection assigned (matches
    /// [`JobResult::job_id`] in the reply).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Asks the server to stop this job at its next epoch boundary
    /// (best effort). The handle still resolves — normally with
    /// [`CloudError::Cancelled`], or with the job's ordinary outcome if
    /// cancellation raced completion. Requires a protocol-v2 server for
    /// the request to cross the wire; against a v1 server the job runs to
    /// completion but is never revived by reconnect or retry machinery.
    pub fn cancel(&self) {
        if let Some(shared) = self.shared.upgrade() {
            shared.cancel_job(self.id);
        }
    }

    /// Non-blocking: the next queued progress update, if any. Updates
    /// arrive in epoch order; draining in a loop observes every frame the
    /// server delivered.
    pub fn try_progress(&self) -> Option<ProgressUpdate> {
        self.progress_rx.try_recv().ok()
    }

    /// Blocking stream of progress updates. The iterator yields each
    /// update as it arrives and ends when the job settles (its reply —
    /// success or error — retires the server-side entry feeding this
    /// channel), after which [`wait`](Self::wait) returns immediately.
    pub fn progress(&self) -> impl Iterator<Item = ProgressUpdate> + '_ {
        std::iter::from_fn(move || self.progress_rx.recv().ok())
    }

    /// Blocks until the job finishes.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::ServiceUnavailable`] if the connection died
    /// with the job still unanswered.
    pub fn wait(self) -> Result<JobResult, CloudError> {
        if let Some(done) = self.done {
            return done;
        }
        self.rx.recv().map_err(|_| CloudError::ServiceUnavailable)?
    }

    /// Non-blocking poll: `None` while the job is still running. Once the
    /// outcome is known it is cached, so polling again keeps returning it.
    pub fn try_wait(&mut self) -> Option<Result<JobResult, CloudError>> {
        if self.done.is_none() {
            match self.rx.try_recv() {
                Ok(result) => self.done = Some(result),
                Err(TryRecvError::Empty) => return None,
                Err(TryRecvError::Disconnected) => {
                    self.done = Some(Err(CloudError::ServiceUnavailable));
                }
            }
        }
        self.done.clone()
    }

    /// Blocks at most `timeout`; `None` on timeout, the (cached) outcome
    /// otherwise.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<JobResult, CloudError>> {
        if self.done.is_none() {
            match self.rx.recv_timeout(timeout) {
                Ok(result) => self.done = Some(result),
                Err(RecvTimeoutError::Timeout) => return None,
                Err(RecvTimeoutError::Disconnected) => {
                    self.done = Some(Err(CloudError::ServiceUnavailable));
                }
            }
        }
        self.done.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keepalive_jitter_stays_within_band_and_spreads_out() {
        let interval = Duration::from_secs(10);
        let lo = interval.mul_f64(0.75);
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..2048u64 {
            let j = jittered_interval(interval, seed);
            assert!(j >= lo, "seed {seed}: {j:?} under the 0.75x floor");
            assert!(j <= interval, "seed {seed}: {j:?} over the interval");
            assert_eq!(
                j,
                jittered_interval(interval, seed),
                "must be deterministic"
            );
            distinct.insert(j.as_nanos());
        }
        // Adjacent ports must not collapse onto the same phase.
        assert!(
            distinct.len() > 1024,
            "only {} distinct phases",
            distinct.len()
        );
    }
}
