//! Simulated untrusted cloud for Amalgam.
//!
//! The paper uploads an augmented TorchScript model plus augmented tensors to
//! a Python-based cloud service (Colab, SageMaker, …). This crate stands in
//! for that trust boundary: a [`CloudService`] runs on its own thread,
//! receives **fully serialized** jobs (model spec bytes + dataset tensors)
//! over a crossbeam channel, trains with the paper's Algorithm 1, and returns
//! the trained augmented model as bytes.
//!
//! Everything the cloud can see is available to a registered
//! [`CloudObserver`] — the vantage point from which `amalgam-attacks` mounts
//! its attacks. Notably absent from anything that crosses the wire:
//! provenance tags, sub-network identities, and the client's insertion plan.

mod observer;
mod protocol;
mod service;

pub use observer::{CloudObserver, NullObserver, RecordingObserver};
pub use protocol::{CloudJob, JobResult, TaskPayload};
pub use service::{CloudClient, CloudService, JobHandle};

/// Errors crossing the simulated cloud boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// The service thread is gone (channel closed).
    ServiceUnavailable,
    /// A job or result failed to decode.
    Decode(String),
    /// The job was malformed (e.g. no output heads).
    BadJob(String),
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::ServiceUnavailable => write!(f, "cloud service unavailable"),
            CloudError::Decode(msg) => write!(f, "decode error: {msg}"),
            CloudError::BadJob(msg) => write!(f, "bad job: {msg}"),
        }
    }
}

impl std::error::Error for CloudError {}
