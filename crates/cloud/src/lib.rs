//! Simulated untrusted cloud for Amalgam.
//!
//! The paper uploads an augmented TorchScript model plus augmented tensors to
//! a Python-based cloud service (Colab, SageMaker, …). This crate stands in
//! for that trust boundary as a small production-shaped service: a
//! [`CloudService`] owns a pool of worker threads pulling **fully
//! serialized** jobs (model spec bytes + dataset tensors) off one shared
//! queue, and every job runs through a composable Tower-style middleware
//! stack before and after the paper's Algorithm 1 trains it.
//!
//! # The layer stack
//!
//! Requests flow outside-in, responses inside-out. With the
//! [`transport`] subsystem in front, the "wire" is a real TCP socket: a
//! [`RemoteCloudClient`] frames jobs onto a multiplexed connection, a
//! fixed pool of [`CloudServer`] reactor threads decodes every
//! connection's frames (no thread per connection), and the jobs land in
//! the same queue an in-process [`CloudClient`] uses — the middleware
//! stack cannot tell the two apart.
//!
//! ```text
//!   RemoteCloudClient::submit ──► TCP ──► CloudServer reactor pool  CloudClient::submit
//!   │ length-prefixed frames        │ handshake: version + API key       │ (in-process)
//!   │ jittered keep-alive pings     │ epoll/poll, io_threads loops       │
//!   │ request-id multiplexing       │ in-flight cap counts queued replies│
//!   └─────────────► [per-session queues · DRR drain] ◄──────────────────┘
//!                                               │ worker thread
//!                                               │ payload: Bytes
//!   ┌───────────────────────────────────────────▼─────────────────┐
//!   │ metrics     per-job latency, bytes in/out, jobs/sec         │
//!   │ ┌───────────────────────────────────────────────────────┐   │
//!   │ │ panic       catch_unwind → CloudError::Panicked       │   │
//!   │ │ ┌───────────────────────────────────────────────────┐ │   │
//!   │ │ │ admission   queue too deep → Overloaded           │ │   │
//!   │ │ │ ┌───────────────────────────────────────────────┐ │ │   │
//!   │ │ │ │ [dedup]     caches Ok results by address      │ │ │   │
//!   │ │ │ │ ratelimit   over session budget → RateLimited │ │ │   │
//!   │ │ │ │ ┌───────────────────────────────────────────┐ │ │ │   │
//!   │ │ │ │ │ auth        session API key → Unauthorized│ │ │ │   │
//!   │ │ │ │ │ ┌───────────────────────────────────────┐ │ │ │ │   │
//!   │ │ │ │ │ │ [custom layers from builder().layer()]│ │ │ │ │   │
//!   │ │ │ │ │ │ ┌───────────────────────────────────┐ │ │ │ │ │   │
//!   │ │ │ │ │ │ │ decode     wire → CloudJob + model│ │ │ │ │ │   │
//!   │ │ │ │ │ │ │ ┌───────────────────────────────┐ │ │ │ │ │ │   │
//!   │ │ │ │ │ │ │ │ validate   the BadJob checks  │ │ │ │ │ │ │   │
//!   │ │ │ │ │ │ │ │ ┌───────────────────────────┐ │ │ │ │ │ │ │   │
//!   │ │ │ │ │ │ │ │ │ observer  adversary's tap │ │ │ │ │ │ │ │   │
//!   │ │ │ │ │ │ │ │ │ ┌───────────────────────┐ │ │ │ │ │ │ │ │   │
//!   │ │ │ │ │ │ │ │ │ │ train   Algorithm 1   │ │ │ │ │ │ │ │ │   │
//!   │ │ │ │ │ │ │ │ │ └───────────────────────┘ │ │ │ │ │ │ │ │   │
//!   │ │ │ │ │ │ │ │ └───────────────────────────┘ │ │ │ │ │ │ │   │
//!   │ │ │ │ │ │ │ └───────────────────────────────┘ │ │ │ │ │ │   │
//!   │ │ │ │ │ │ └───────────────────────────────────┘ │ │ │ │ │   │
//!   │ │ │ │ │ └───────────────────────────────────────┘ │ │ │ │   │
//!   │ │ │ │ └───────────────────────────────────────────┘ │ │ │   │
//!   │ │ │ └───────────────────────────────────────────────┘ │ │   │
//!   │ │ └───────────────────────────────────────────────────┘ │   │
//!   │ └───────────────────────────────────────────────────────┘   │
//!   └─────────────────────────────────────────────────────────────┘
//!                                               │ Result<JobResult, CloudError>
//!                                               ▼ reply channel → JobHandle /
//!                                                 Reply frame → RemoteJobHandle
//! ```
//!
//! * **metrics** is outermost so it observes every outcome, including
//!   panics already converted to errors by **panic**.
//! * **admission** judges the queue depth each job found at submit time;
//!   jobs past the configured watermark are answered with
//!   [`CloudError::Overloaded`] instead of being trained.
//! * **ratelimit** ([`CloudServiceBuilder::rate_limit`]) is the per-client
//!   half of overload policy: each session's token bucket admits a
//!   configured sustained rate plus burst, and jobs over budget are
//!   answered with [`CloudError::RateLimited`] carrying an honest
//!   `retry_after_ms` — judged against the job's *submit* instant, and
//!   round-tripping the wire codec so remote handles see the same error.
//! * **dedup** ([`CloudServiceBuilder::result_cache`], off by default)
//!   shares a box with ratelimit above because they are two halves of one
//!   policy: the layer caches successful results by the payload's
//!   [`ContentAddress`], while its read side runs at *submit* time —
//!   cache hits and in-flight duplicates are answered before the queue,
//!   never occupying a worker, yet still spend rate-limit tokens from the
//!   same per-session buckets. See the [`cache`] module docs.
//! * Custom layers sit between admission and **decode**, so they see the
//!   raw serialized payload — the exact bytes that crossed the wire.
//! * **validate** holds the `BadJob` checks, out of the trainer's path.
//! * **observer** feeds everything the cloud legitimately sees to a
//!   registered [`CloudObserver`] — the vantage point from which
//!   `amalgam-attacks` mounts its attacks. The layer is installed only
//!   when an observer is attached, so unobserved pools pay nothing for
//!   it. Notably absent from anything that crosses the wire: provenance
//!   tags, sub-network identities, and the client's insertion plan.
//! * **train** is numerically identical to the local trainer, preserving
//!   the bitwise cloud-vs-local equivalence guarantee; middleware wraps it
//!   without touching tensors.
//!
//! * **auth** is installed by [`CloudServiceBuilder::api_keys`]: it checks
//!   the session-scoped API key (negotiated at the transport handshake, or
//!   stamped by [`CloudClient::with_api_key`] in-process) while the payload
//!   is still the raw framed bytes — unauthenticated uploads are refused
//!   before a single wire byte is decoded.
//!
//! Scale the pool with [`CloudServiceBuilder::workers`]. Jobs are queued
//! **per session** ([`middleware::SessionKey`]: API key, or anonymous
//! client/connection identity) and workers drain the sessions by deficit
//! round robin — optionally weighted via
//! [`CloudServiceBuilder::session_weight`] — so a flooding session buys
//! itself queue depth, never a larger share of the pool, and every
//! session's own jobs stay strictly FIFO.
//! [`CloudService::shutdown`] drains queued jobs before the workers exit.
//! Put the whole stack on a real wire with [`CloudServer::bind`] — the
//! framing and handshake formats are documented in [`transport`].

#![deny(missing_docs)]

mod builder;
pub mod cache;
pub mod checkpoint;
pub mod hash;
mod metrics;
pub mod middleware;
mod observer;
mod protocol;
mod queue;
pub mod ratelimit;
mod service;
pub mod telemetry;
pub mod transport;

pub use builder::CloudServiceBuilder;
pub use cache::{DedupLayer, ResultCache};
pub use checkpoint::{Checkpoint, CheckpointStore, FileCheckpointStore, MemoryCheckpointStore};
pub use hash::ContentAddress;
pub use metrics::{BackendHealth, BackendStats, ServiceMetrics, ServiceStats, SessionStats};
pub use middleware::{
    AdmissionLayer, ApiKeyLayer, CloudLayer, DecodeLayer, JobContext, JobService, MetricsLayer,
    ObserverLayer, PanicLayer, ServiceBuilder, SessionKey, TimedLayer, ValidateLayer,
};
pub use observer::{CloudObserver, NullObserver, RecordingObserver};
pub use protocol::{CloudJob, JobResult, ProgressUpdate, TaskPayload};
pub use ratelimit::{RateLimitLayer, TokenBucket};
pub use service::{CloudClient, CloudService, JobHandle, TrainService};
pub use telemetry::{
    FlightRecorder, Histogram, HistogramSnapshot, JobTrace, SpanRecord, Stage, Telemetry,
    TelemetryConfig, TraceId,
};
pub use transport::{
    ClientStats, CloudServer, ReconnectPolicy, RemoteCloudClient, RemoteJobHandle, TransportConfig,
};

/// Errors crossing the simulated cloud boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// The service is gone (worker pool stopped or channel closed).
    ServiceUnavailable,
    /// A job or result failed to decode.
    Decode(String),
    /// The job was malformed (e.g. no output heads).
    BadJob(String),
    /// Admission control shed the job: it was submitted while the queue was
    /// deeper than the service's configured maximum.
    Overloaded {
        /// Jobs already waiting when this one was submitted.
        queue_depth: usize,
        /// The configured watermark.
        max_queue_depth: usize,
    },
    /// The session exceeded its per-session submit-rate budget
    /// ([`CloudServiceBuilder::rate_limit`]); retrying `retry_after_ms`
    /// milliseconds after the rejection is guaranteed a token (absent other
    /// submits on the same session).
    RateLimited {
        /// Milliseconds until the session's token bucket holds a whole
        /// token again.
        retry_after_ms: u64,
    },
    /// Processing panicked; the worker survived and the job was answered
    /// with the panic message.
    Panicked(String),
    /// A transport-level failure: socket I/O error, oversized or truncated
    /// frame, or the connection died mid-request.
    Transport(String),
    /// The session presented no API key, or one the service does not accept.
    Unauthorized(String),
    /// Protocol-version negotiation failed, or the peer broke the handshake.
    Handshake(String),
    /// The job was cancelled by its submitter before it finished; any
    /// dedup-coalesced waiters of the same content address receive the same
    /// outcome.
    Cancelled,
}

impl CloudError {
    /// The advisory back-off carried by [`CloudError::RateLimited`], as a
    /// [`std::time::Duration`]; `None` for every other variant. Works the
    /// same on a local [`JobHandle`] outcome and on a [`RemoteJobHandle`]
    /// one, because the variant round-trips the transport's Reply frame.
    pub fn retry_after(&self) -> Option<std::time::Duration> {
        match self {
            CloudError::RateLimited { retry_after_ms } => {
                Some(std::time::Duration::from_millis(*retry_after_ms))
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::ServiceUnavailable => write!(f, "cloud service unavailable"),
            CloudError::Decode(msg) => write!(f, "decode error: {msg}"),
            CloudError::BadJob(msg) => write!(f, "bad job: {msg}"),
            CloudError::Overloaded {
                queue_depth,
                max_queue_depth,
            } => write!(
                f,
                "cloud overloaded: {queue_depth} jobs queued (max {max_queue_depth})"
            ),
            CloudError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited: retry after {retry_after_ms}ms")
            }
            CloudError::Panicked(msg) => write!(f, "cloud job panicked: {msg}"),
            CloudError::Transport(msg) => write!(f, "transport error: {msg}"),
            CloudError::Unauthorized(msg) => write!(f, "unauthorized: {msg}"),
            CloudError::Handshake(msg) => write!(f, "handshake failed: {msg}"),
            CloudError::Cancelled => write!(f, "job cancelled by its submitter"),
        }
    }
}

impl std::error::Error for CloudError {}
