//! Durable mid-training checkpoints: the state a killed job needs to
//! resume at its last epoch boundary instead of epoch 0.
//!
//! # What a checkpoint captures
//!
//! Training here is deterministic by construction: every epoch `e` derives
//! its shuffle RNG purely from `(seed, e)`, kernels are bitwise
//! deterministic, and the optimizer is plain SGD whose only hidden state
//! is the momentum velocity. So the *complete* state at an epoch boundary
//! is small and exact:
//!
//! * the number of **completed epochs**,
//! * the **model bytes** (`GraphModel::to_bytes` — the same canonical
//!   encoding that crosses the wire),
//! * the optimizer's **velocity tensors**,
//! * the partial training **history** (what the final `JobResult` reports).
//!
//! Nothing else exists: restoring these and re-entering the epoch loop at
//! `completed` produces a run bitwise identical to one that was never
//! interrupted. That is the property `cloud/tests/checkpoint_properties.rs`
//! proves for arbitrary shapes and kill points.
//!
//! # Keying and stores
//!
//! Checkpoints are keyed by the job's [`ContentAddress`] — the same
//! canonical hash the dedup cache uses — so a resubmitted job finds its
//! own checkpoint no matter which client, connection or (with a shared
//! store) which *backend* retries it: proxy failover resumes work instead
//! of recomputing it. A [`CheckpointStore`] is deliberately tiny and
//! policy-free (*store / load / remove*); the service decides cadence via
//! [`crate::CloudServiceBuilder::checkpoint_every`]. Two stores ship:
//! [`MemoryCheckpointStore`] (survives server restart when the store
//! outlives the server object) and [`FileCheckpointStore`] (survives
//! process death; atomic rename, no partial files).
//!
//! # Corruption policy
//!
//! A checkpoint that fails its checksum, fails to decode, or claims an
//! impossible epoch is **rejected loudly and removed**: the job falls back
//! to an epoch-0 recompute and the bad entry never poisons later
//! submissions. Correctness never depends on a checkpoint being present —
//! only the amount of recomputation does.

use crate::hash::{siphash128, ContentAddress};
use crate::CloudError;
use amalgam_nn::metrics::History;
use amalgam_tensor::wire::{Reader, Writer};
use amalgam_tensor::Tensor;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Format version byte leading every encoded checkpoint.
const CHECKPOINT_VERSION: u8 = 1;
/// Fixed SipHash key halves for the integrity checksum (`b"amalgam."`,
/// `b"ckpt..v1"`): like content addressing, the checksum must be a pure
/// function of the bytes so every process verifies identically.
const CK_KEY0: u64 = u64::from_le_bytes(*b"amalgam.");
const CK_KEY1: u64 = u64::from_le_bytes(*b"ckpt..v1");

/// One mid-training snapshot at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Epochs fully completed before this snapshot was taken; the resumed
    /// run re-enters the epoch loop here.
    pub epoch: u64,
    /// The model at that boundary, canonically encoded
    /// (`GraphModel::to_bytes`).
    pub model: Bytes,
    /// The SGD momentum velocity buffers, one per parameter in step order
    /// (empty when momentum is off — plain SGD has no optimizer state).
    pub velocity: Vec<Tensor>,
    /// Per-epoch metrics accumulated so far; the resumed run appends to
    /// them so the final [`crate::JobResult`] history is seamless.
    pub history: History,
}

impl Checkpoint {
    /// Serializes the checkpoint: version, fields, then a trailing 64-bit
    /// SipHash checksum over everything before it.
    pub fn to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_u8(CHECKPOINT_VERSION);
        w.put_u64(self.epoch);
        w.put_bytes(&self.model);
        w.put_u32(self.velocity.len() as u32);
        for v in &self.velocity {
            w.put_tensor(v);
        }
        w.put_f32_list(&self.history.train_loss);
        w.put_f32_list(&self.history.train_acc);
        w.put_f32_list(&self.history.val_loss);
        w.put_f32_list(&self.history.val_acc);
        w.put_f32_list(&self.history.epoch_secs);
        let body = w.finish();
        let sum = siphash128(CK_KEY0, CK_KEY1, &body) as u64;
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&body);
        out.extend_from_slice(&sum.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes a checkpoint written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Decode`] — loudly — on a bad checksum,
    /// truncation, an unknown version, or trailing bytes. Callers treat
    /// any error as "no checkpoint": remove the entry and recompute from
    /// epoch 0.
    pub fn from_bytes(buf: Bytes) -> Result<Checkpoint, CloudError> {
        let err = |e: amalgam_tensor::TensorError| CloudError::Decode(e.to_string());
        if buf.len() < 8 {
            return Err(CloudError::Decode(
                "checkpoint shorter than its checksum".into(),
            ));
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let claimed = u64::from_le_bytes(tail.try_into().expect("8-byte slice"));
        let actual = siphash128(CK_KEY0, CK_KEY1, body) as u64;
        if claimed != actual {
            return Err(CloudError::Decode(format!(
                "checkpoint checksum mismatch: stored {claimed:016x}, computed {actual:016x}"
            )));
        }
        let mut r = Reader::new(buf.slice(..buf.len() - 8));
        let version = r.get_u8().map_err(err)?;
        if version != CHECKPOINT_VERSION {
            return Err(CloudError::Decode(format!(
                "unknown checkpoint version {version}"
            )));
        }
        let epoch = r.get_u64().map_err(err)?;
        let model = r.get_bytes().map_err(err)?;
        let n = r.get_u32().map_err(err)? as usize;
        let mut velocity = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            velocity.push(r.get_tensor().map_err(err)?);
        }
        let history = History {
            train_loss: r.get_f32_list().map_err(err)?,
            train_acc: r.get_f32_list().map_err(err)?,
            val_loss: r.get_f32_list().map_err(err)?,
            val_acc: r.get_f32_list().map_err(err)?,
            epoch_secs: r.get_f32_list().map_err(err)?,
        };
        if r.remaining() != 0 {
            return Err(CloudError::Decode(format!(
                "{} trailing bytes after checkpoint",
                r.remaining()
            )));
        }
        Ok(Checkpoint {
            epoch,
            model,
            velocity,
            history,
        })
    }
}

/// Where checkpoints live, keyed by the job's [`ContentAddress`].
///
/// Deliberately policy-free: the store neither decides *when* to
/// checkpoint (the builder's `checkpoint_every` does) nor *whether* a
/// loaded snapshot is trustworthy ([`Checkpoint::from_bytes`]'s checksum
/// does). Durability is best-effort by design — a store may drop writes
/// (out of disk, torn down) and the only consequence is recomputation.
pub trait CheckpointStore: Send + Sync + std::fmt::Debug {
    /// Returns the stored bytes for `addr`, if any.
    fn load(&self, addr: ContentAddress) -> Option<Bytes>;
    /// Stores (replacing) the bytes for `addr`. Best-effort: errors are
    /// swallowed, a later resume simply finds the previous (or no)
    /// snapshot.
    fn store(&self, addr: ContentAddress, bytes: Bytes);
    /// Deletes the entry for `addr` (job finished, or snapshot corrupt).
    fn remove(&self, addr: ContentAddress);
}

/// In-memory [`CheckpointStore`]: a mutexed map. Shared via `Arc`, it
/// survives a [`crate::CloudServer`] restart (and backend failover in
/// tests) as long as the `Arc` itself lives.
#[derive(Debug, Default)]
pub struct MemoryCheckpointStore {
    entries: Mutex<HashMap<ContentAddress, Bytes>>,
}

impl MemoryCheckpointStore {
    /// Creates an empty store.
    pub fn new() -> MemoryCheckpointStore {
        MemoryCheckpointStore::default()
    }

    /// Number of checkpoints currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no checkpoints are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn load(&self, addr: ContentAddress) -> Option<Bytes> {
        self.entries.lock().get(&addr).cloned()
    }

    fn store(&self, addr: ContentAddress, bytes: Bytes) {
        self.entries.lock().insert(addr, bytes);
    }

    fn remove(&self, addr: ContentAddress) {
        self.entries.lock().remove(&addr);
    }
}

/// File-backed [`CheckpointStore`]: one file per content address
/// (`<dir>/<32-hex-digits>.ckpt`), written to a temporary name then
/// atomically renamed into place, so a crash mid-write leaves either the
/// previous snapshot or none — never a torn file. Dependency-free: plain
/// `std::fs`.
#[derive(Debug)]
pub struct FileCheckpointStore {
    dir: PathBuf,
}

impl FileCheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the directory.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<FileCheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileCheckpointStore { dir })
    }

    fn path_of(&self, addr: ContentAddress) -> PathBuf {
        self.dir.join(format!("{addr}.ckpt"))
    }
}

impl CheckpointStore for FileCheckpointStore {
    fn load(&self, addr: ContentAddress) -> Option<Bytes> {
        std::fs::read(self.path_of(addr)).ok().map(Bytes::from)
    }

    fn store(&self, addr: ContentAddress, bytes: Bytes) {
        // Unique temp name per writer so concurrent snapshots of the same
        // address never interleave into one file; the rename is the commit.
        let tmp = self.dir.join(format!(
            "{addr}.{:x}.tmp",
            std::process::id() as u64 ^ (&bytes as *const _ as u64)
        ));
        if std::fs::write(&tmp, &bytes).is_ok()
            && std::fs::rename(&tmp, self.path_of(addr)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn remove(&self, addr: ContentAddress) {
        let _ = std::fs::remove_file(self.path_of(addr));
    }
}

/// The service's resolved checkpoint policy, threaded into each job's
/// [`crate::JobContext`] by the worker loop.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Where snapshots are written and resumed from.
    pub store: Arc<dyn CheckpointStore>,
    /// Snapshot after every `every` completed epochs (the last epoch never
    /// snapshots — the job is about to finish and delete its entry).
    pub every: u64,
}

/// Loads and validates the checkpoint for `addr`, if one exists and can be
/// trusted. `total_epochs` bounds the claimed epoch: a snapshot from a
/// different-length run (or a corrupt epoch field) is useless for resume.
/// Invalid entries are removed so they never poison the store; the caller
/// falls back to epoch 0. Returns the checkpoint and whether a stored
/// entry had to be rejected.
pub(crate) fn load_for_resume(
    store: &dyn CheckpointStore,
    addr: ContentAddress,
    total_epochs: u64,
) -> (Option<Checkpoint>, bool) {
    let Some(bytes) = store.load(addr) else {
        return (None, false);
    };
    match Checkpoint::from_bytes(bytes) {
        Ok(cp) if cp.epoch > 0 && cp.epoch < total_epochs => (Some(cp), false),
        _ => {
            // Corrupt, truncated, or from an incompatible run: reject
            // loudly (the caller bumps `checkpoints_rejected`) and scrub.
            store.remove(addr);
            (None, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalgam_tensor::Rng;

    fn sample() -> Checkpoint {
        let mut rng = Rng::seed_from(7);
        Checkpoint {
            epoch: 3,
            model: Bytes::from_static(b"model bytes"),
            velocity: vec![
                Tensor::randn(&[2, 3], &mut rng),
                Tensor::randn(&[4], &mut rng),
            ],
            history: History {
                train_loss: vec![1.0, 0.8, 0.6],
                train_acc: vec![0.3, 0.5, 0.7],
                val_loss: vec![0.9],
                val_acc: vec![0.4],
                epoch_secs: vec![0.01, 0.01, 0.01],
            },
        }
    }

    #[test]
    fn checkpoint_roundtrips() {
        let cp = sample();
        assert_eq!(Checkpoint::from_bytes(cp.to_bytes()).unwrap(), cp);
    }

    #[test]
    fn corrupt_byte_fails_checksum_loudly() {
        let mut bytes = sample().to_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Checkpoint::from_bytes(Bytes::from(bytes)),
            Err(CloudError::Decode(_))
        ));
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(bytes.slice(..cut)).is_err());
        }
    }

    #[test]
    fn memory_store_roundtrips_and_removes() {
        let store = MemoryCheckpointStore::new();
        let addr = ContentAddress::of(b"job");
        assert!(store.load(addr).is_none());
        store.store(addr, Bytes::from_static(b"snapshot"));
        assert_eq!(store.load(addr).unwrap(), Bytes::from_static(b"snapshot"));
        assert_eq!(store.len(), 1);
        store.remove(addr);
        assert!(store.load(addr).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn file_store_roundtrips_and_removes() {
        let dir = std::env::temp_dir().join(format!("amalgam-ckpt-test-{}", std::process::id()));
        let store = FileCheckpointStore::new(&dir).unwrap();
        let addr = ContentAddress::of(b"job");
        assert!(store.load(addr).is_none());
        store.store(addr, Bytes::from_static(b"snapshot"));
        assert_eq!(store.load(addr).unwrap(), Bytes::from_static(b"snapshot"));
        store.store(addr, Bytes::from_static(b"newer"));
        assert_eq!(store.load(addr).unwrap(), Bytes::from_static(b"newer"));
        store.remove(addr);
        assert!(store.load(addr).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_resume_candidates_are_scrubbed() {
        let store = MemoryCheckpointStore::new();
        let addr = ContentAddress::of(b"job");
        // Corrupt bytes: rejected and removed.
        store.store(addr, Bytes::from_static(b"garbage"));
        let (cp, rejected) = load_for_resume(&store, addr, 10);
        assert!(cp.is_none() && rejected);
        assert!(store.load(addr).is_none());
        // Epoch out of range for this run: same treatment.
        let mut late = sample();
        late.epoch = 10;
        store.store(addr, late.to_bytes());
        let (cp, rejected) = load_for_resume(&store, addr, 10);
        assert!(cp.is_none() && rejected);
        assert!(store.load(addr).is_none());
        // A valid one resumes.
        store.store(addr, sample().to_bytes());
        let (cp, rejected) = load_for_resume(&store, addr, 10);
        assert_eq!(cp.unwrap().epoch, 3);
        assert!(!rejected);
    }
}
