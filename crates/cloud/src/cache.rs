//! Content-addressed job dedup and result caching.
//!
//! PR 2–5 bought a hard guarantee: the cloud's training loop is bitwise
//! deterministic, so byte-identical job payloads provably produce
//! byte-identical [`JobResult`]s. This module turns that determinism into
//! throughput, in two cooperating pieces keyed by the same
//! [`ContentAddress`] (a fixed-key SipHash over the job's canonical wire
//! encoding — see [`crate::hash`]):
//!
//! * **In-flight coalescing.** The first submission of an address executes
//!   normally; every concurrent duplicate attaches as a *waiter* to the
//!   same pending slot and is answered by the one execution. Errors and
//!   panics propagate to every waiter and clear the slot, so a failed job
//!   is immediately retryable — no poisoned entries.
//! * **A result cache** ([`ResultCache`]): TTL + LRU with a **byte-size
//!   bound** (a `JobResult` carries model weights, so an entry count alone
//!   bounds nothing). Hits are served at submit time, without ever
//!   touching the queue or the worker pool.
//!
//! The read side lives in the submit path ([`crate::CloudClient`] — both
//! in-process and transport submissions funnel through it); the write side
//! is [`DedupLayer`], mounted between admission control and the rate
//! limiter, which inserts results that traversed the full policy stack.
//! Fan-out and slot clearing live on the executor's reply sink, so *every*
//! way an execution can end — success, error, panic, shutdown drain, even
//! a worker dying with `catch_panics(false)` — resolves the waiters.
//!
//! Rate limiting still judges served submissions: a cache hit or coalesced
//! attach spends a token from the same per-session bucket the
//! [`crate::RateLimitLayer`] uses. Cheap is not free — otherwise replaying
//! one hot job would be an unmetered bypass of the QoS policy.
//!
//! Everything is disabled by default; opt in with
//! [`crate::CloudServiceBuilder::result_cache`].

use crate::hash::ContentAddress;
use crate::metrics::ServiceMetrics;
use crate::middleware::{CloudLayer, JobContext, JobService, SessionKey};
use crate::protocol::{JobResult, ProgressUpdate};
use crate::ratelimit::RateLimitHandle;
use crate::service::{CancelFlag, ReplySink};
use crate::CloudError;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fixed accounting overhead charged per cache entry, on top of the
/// payload bytes it retains — map slot, LRU slot, timestamps. Keeps a
/// flood of near-empty results from evading the byte bound.
const ENTRY_OVERHEAD: usize = 160;

/// Approximate heap bytes retained by caching `result`.
///
/// Counts the serialized model plus the history vectors (the only
/// unbounded fields) and a fixed per-entry overhead; the same function is
/// used by the eviction logic and the property tests, so "respects the
/// byte bound" is checkable from outside.
pub fn entry_cost(result: &JobResult) -> usize {
    let history = result.history.train_loss.len()
        + result.history.train_acc.len()
        + result.history.val_loss.len()
        + result.history.val_acc.len()
        + result.history.epoch_secs.len();
    result.trained_model.len() + history * std::mem::size_of::<f32>() + ENTRY_OVERHEAD
}

struct CacheEntry {
    result: JobResult,
    cost: usize,
    inserted_at: Instant,
    /// Stamp of this entry's *live* LRU slot; older slots in the queue are
    /// stale and skipped during eviction.
    stamp: u64,
}

/// A TTL + LRU result cache with a byte-size bound.
///
/// Time is passed in explicitly (the [`TokenBucket`](crate::TokenBucket)
/// convention), so expiry and eviction are a pure function of the call
/// sequence — which is what lets the property tests drive the clock.
///
/// Recency is tracked lazily: each touch pushes a freshly stamped slot
/// onto the back of a queue and only the newest stamp per address is live,
/// so `get` stays O(1) and eviction amortizes the stale slots away.
pub struct ResultCache {
    capacity_bytes: usize,
    ttl: Duration,
    entries: HashMap<ContentAddress, CacheEntry>,
    lru: VecDeque<(u64, ContentAddress)>,
    next_stamp: u64,
    total_bytes: usize,
}

impl ResultCache {
    /// An empty cache bounded by `capacity_bytes`, whose entries expire
    /// `ttl` after insertion. A zero capacity caches nothing (coalescing
    /// still works — see [`crate::CloudServiceBuilder::result_cache`]).
    pub fn new(capacity_bytes: usize, ttl: Duration) -> ResultCache {
        ResultCache {
            capacity_bytes,
            ttl,
            entries: HashMap::new(),
            lru: VecDeque::new(),
            next_stamp: 0,
            total_bytes: 0,
        }
    }

    /// Bytes currently retained (as measured by [`entry_cost`]).
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Live entries (expired-but-unswept entries included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn touch(&mut self, addr: ContentAddress) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.lru.push_back((stamp, addr));
        stamp
    }

    fn remove(&mut self, addr: &ContentAddress) {
        if let Some(entry) = self.entries.remove(addr) {
            self.total_bytes -= entry.cost;
        }
    }

    /// A clone of the entry at `addr`, if present and not expired as of
    /// `now`; a hit refreshes the entry's LRU recency (but not its TTL —
    /// a popular stale result must still re-execute).
    pub fn get_at(&mut self, addr: &ContentAddress, now: Instant) -> Option<JobResult> {
        let expired = match self.entries.get(addr) {
            None => return None,
            Some(e) => now.saturating_duration_since(e.inserted_at) >= self.ttl,
        };
        if expired {
            self.remove(addr);
            return None;
        }
        let stamp = self.touch(*addr);
        let entry = self.entries.get_mut(addr).expect("entry checked above");
        entry.stamp = stamp;
        Some(entry.result.clone())
    }

    /// Inserts (or replaces) `addr`'s entry as of `now`, then sweeps
    /// expired entries and evicts least-recently-used ones until the byte
    /// bound holds again. An entry costing more than the whole capacity is
    /// not admitted at all.
    pub fn insert_at(&mut self, addr: ContentAddress, result: JobResult, now: Instant) {
        let cost = entry_cost(&result);
        if cost > self.capacity_bytes {
            return;
        }
        self.remove(&addr);
        let stamp = self.touch(addr);
        self.entries.insert(
            addr,
            CacheEntry {
                result,
                cost,
                inserted_at: now,
                stamp,
            },
        );
        self.total_bytes += cost;
        if self.total_bytes > self.capacity_bytes {
            self.sweep_expired(now);
        }
        while self.total_bytes > self.capacity_bytes {
            let (stamp, victim) = self.lru.pop_front().expect("bytes retained ⇒ slots queued");
            match self.entries.get(&victim) {
                // Only the newest slot per address is live; skip stale ones.
                Some(e) if e.stamp == stamp => self.remove(&victim),
                _ => {}
            }
        }
    }

    fn sweep_expired(&mut self, now: Instant) {
        let ttl = self.ttl;
        let mut freed = 0;
        self.entries.retain(|_, e| {
            if now.saturating_duration_since(e.inserted_at) >= ttl {
                freed += e.cost;
                false
            } else {
                true
            }
        });
        self.total_bytes -= freed;
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.entries.len())
            .field("total_bytes", &self.total_bytes)
            .field("capacity_bytes", &self.capacity_bytes)
            .field("ttl", &self.ttl)
            .finish()
    }
}

/// One coalesced duplicate, parked until the executor resolves.
struct Waiter {
    job_id: u64,
    /// The waiter's own session, so progress frames fanned to it are
    /// accounted against the right row in the per-session stats.
    session: SessionKey,
    reply: ReplySink,
}

/// One in-flight execution's slot: its parked duplicates plus the shared
/// cancellation flag (any waiter's cancel stops the one underlying run).
struct PendingSlot {
    waiters: Vec<Waiter>,
    cancel: CancelFlag,
}

/// The mutable dedup state: the cache plus the in-flight pending slots.
struct DedupInner {
    cache: ResultCache,
    pending: HashMap<ContentAddress, PendingSlot>,
}

/// Shared dedup state: consulted by the submit path (read side), populated
/// by [`DedupLayer`] (write side), resolved by [`DedupReply`] (fan-out).
pub(crate) struct DedupShared {
    inner: Mutex<DedupInner>,
    limiter: Option<RateLimitHandle>,
    metrics: Arc<ServiceMetrics>,
}

/// What the submit path should do with a submission, as judged by
/// [`DedupShared::intercept`].
pub(crate) enum SubmitDecision {
    /// Answered from the cache, attached as a waiter, or refused by the
    /// rate limiter — in every case the reply sink has been consumed and
    /// nothing must be enqueued. A coalesced attach carries the executor's
    /// shared cancellation flag for the submitter's handle to hold.
    Served(Option<CancelFlag>),
    /// First sighting of this address: enqueue normally, with the reply
    /// wrapped so the execution's outcome also resolves the waiters.
    Execute(ReplySink, ContentAddress),
}

impl DedupShared {
    pub(crate) fn new(
        capacity_bytes: usize,
        ttl: Duration,
        limiter: Option<RateLimitHandle>,
        metrics: Arc<ServiceMetrics>,
    ) -> DedupShared {
        DedupShared {
            inner: Mutex::new(DedupInner {
                cache: ResultCache::new(capacity_bytes, ttl),
                pending: HashMap::new(),
            }),
            limiter,
            metrics,
        }
    }

    /// Charges one token from `session`'s bucket (when a limiter is
    /// configured): a served submission spends exactly what an executed
    /// one would.
    fn charge(&self, session: &SessionKey, now: Instant) -> Result<(), Duration> {
        match &self.limiter {
            Some(limiter) => limiter.try_acquire(session, now),
            None => Ok(()),
        }
    }

    /// Judges one submission against the cache and the pending slots.
    ///
    /// Runs in the submit path, *before* the queue: a hit or a coalesced
    /// attach never occupies a worker. Both are still judged by the rate
    /// limiter; over-budget submissions are answered with
    /// [`CloudError::RateLimited`] through their own sink, exactly like
    /// stack-judged ones.
    pub(crate) fn intercept(
        self: &Arc<Self>,
        job_id: u64,
        session: &SessionKey,
        payload: &Bytes,
        reply: ReplySink,
        cancel: &CancelFlag,
    ) -> SubmitDecision {
        let addr = ContentAddress::of(payload);
        let now = Instant::now();
        let mut inner = self.inner.lock();
        if let Some(mut result) = inner.cache.get_at(&addr, now) {
            drop(inner);
            if let Err(retry_after) = self.charge(session, now) {
                self.metrics.job_rate_limited_at_submit(session);
                reply.send(Err(CloudError::RateLimited {
                    retry_after_ms: retry_after.as_millis() as u64 + 1,
                }));
                return SubmitDecision::Served(None);
            }
            self.metrics.job_cache_hit(session);
            result.job_id = job_id;
            reply.send(Ok(result));
            return SubmitDecision::Served(None);
        }
        if let Some(slot) = inner.pending.get_mut(&addr) {
            if let Err(retry_after) = self.charge(session, now) {
                drop(inner);
                self.metrics.job_rate_limited_at_submit(session);
                reply.send(Err(CloudError::RateLimited {
                    retry_after_ms: retry_after.as_millis() as u64 + 1,
                }));
                return SubmitDecision::Served(None);
            }
            slot.waiters.push(Waiter {
                job_id,
                session: session.clone(),
                reply,
            });
            let shared = Arc::clone(&slot.cancel);
            drop(inner);
            self.metrics.job_coalesced(session);
            return SubmitDecision::Served(Some(shared));
        }
        // First sighting: claim the slot while still holding the lock, so
        // a racing duplicate attaches instead of executing twice. The
        // executor itself is *not* charged here — the RateLimitLayer in
        // the stack judges it, once, like any other executed job.
        inner.pending.insert(
            addr,
            PendingSlot {
                waiters: Vec::new(),
                cancel: Arc::clone(cancel),
            },
        );
        drop(inner);
        SubmitDecision::Execute(
            ReplySink::Dedup(Box::new(DedupReply {
                shared: Arc::clone(self),
                addr,
                primary: reply,
                resolved: AtomicBool::new(false),
            })),
            addr,
        )
    }

    /// Write side, called by [`DedupLayer`] when an execution succeeded.
    fn insert(&self, addr: ContentAddress, result: &JobResult, now: Instant) {
        self.inner.lock().cache.insert_at(addr, result.clone(), now);
    }

    /// Takes `addr`'s parked waiters (the slot is cleared either way).
    fn take_waiters(&self, addr: &ContentAddress) -> Vec<Waiter> {
        self.inner
            .lock()
            .pending
            .remove(addr)
            .map(|slot| slot.waiters)
            .unwrap_or_default()
    }
}

impl std::fmt::Debug for DedupShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("DedupShared")
            .field("cache", &inner.cache)
            .field("pending", &inner.pending.len())
            .finish()
    }
}

/// The executor's reply sink: forwards the outcome to the primary
/// submitter, fans it out to every coalesced waiter (with each waiter's
/// own job id stamped on success), and clears the pending slot.
///
/// Errors are propagated verbatim and nothing is cached on failure, so a
/// failed address is immediately retryable. If the envelope is dropped
/// without ever being answered — a worker dying mid-job with
/// `catch_panics(false)` — the `Drop` impl resolves the waiters with
/// [`CloudError::ServiceUnavailable`] instead of stranding them.
pub(crate) struct DedupReply {
    shared: Arc<DedupShared>,
    addr: ContentAddress,
    primary: ReplySink,
    resolved: AtomicBool,
}

impl DedupReply {
    pub(crate) fn resolve(&self, result: Result<JobResult, CloudError>) {
        if self.resolved.swap(true, Ordering::SeqCst) {
            return;
        }
        for waiter in self.shared.take_waiters(&self.addr) {
            let mut fanned = result.clone();
            if let Ok(r) = &mut fanned {
                // Each submission keeps its own id; the payload bytes are
                // shared, so the fan-out is bitwise identical and O(1).
                r.job_id = waiter.job_id;
            }
            waiter.reply.send(fanned);
        }
        self.primary.send(result);
    }

    /// Streams one progress frame to the primary submitter and to every
    /// waiter parked *right now* (later attachers simply start receiving
    /// from the next epoch on). Each delivery is accounted against its own
    /// session.
    ///
    /// Returns whether *any* consumer — primary or waiter — is still
    /// reachable. `false` means the execution's result has nowhere to go;
    /// a waiter joining later would resume from the checkpoint instead.
    pub(crate) fn send_progress(
        &self,
        update: ProgressUpdate,
        session: &SessionKey,
        metrics: &ServiceMetrics,
    ) -> bool {
        if self.resolved.load(Ordering::SeqCst) {
            return true;
        }
        let mut listening = false;
        {
            let inner = self.shared.inner.lock();
            if let Some(slot) = inner.pending.get(&self.addr) {
                for waiter in &slot.waiters {
                    listening |= waiter.reply.send_progress(update, &waiter.session, metrics);
                }
            }
        }
        self.primary.send_progress(update, session, metrics) || listening
    }
}

impl Drop for DedupReply {
    fn drop(&mut self) {
        if self.resolved.swap(true, Ordering::SeqCst) {
            return;
        }
        // Dropped without an answer: the queue refused the envelope, or a
        // worker died mid-job with `catch_panics(false)`. The primary is
        // already covered by its own channel semantics (the submit error
        // return, or the handle observing the disconnect) — but parked
        // waiters know nothing of either, so answer and clear them here.
        for waiter in self.shared.take_waiters(&self.addr) {
            waiter.reply.send(Err(CloudError::ServiceUnavailable));
        }
    }
}

impl std::fmt::Debug for DedupReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DedupReply")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Middleware writing successful results into the shared result cache.
///
/// Mounted by [`crate::CloudServiceBuilder::result_cache`] between
/// admission control and the rate limiter: a result is cached only after
/// it has traversed the *entire* policy stack beneath (rate limit, auth,
/// decode, validation, training) — a rejected or failed job never
/// populates the cache. The read side does not live here: hits are served
/// at submit time so they never consume a queue slot or a worker (see the
/// [module docs](crate::cache)).
pub struct DedupLayer {
    shared: Arc<DedupShared>,
}

impl DedupLayer {
    pub(crate) fn new(shared: Arc<DedupShared>) -> DedupLayer {
        DedupLayer { shared }
    }
}

impl std::fmt::Debug for DedupLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DedupLayer")
    }
}

struct DedupSvc {
    shared: Arc<DedupShared>,
    inner: Box<dyn JobService>,
}

impl CloudLayer for DedupLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(DedupSvc {
            shared: Arc::clone(&self.shared),
            inner,
        })
    }

    fn name(&self) -> &'static str {
        "dedup"
    }
}

impl JobService for DedupSvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        let result = self.inner.call(ctx, payload);
        if let (Some(addr), Ok(r)) = (ctx.content_address, &result) {
            self.shared.insert(addr, r, Instant::now());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalgam_nn::metrics::History;

    fn result_of(bytes: usize) -> JobResult {
        JobResult {
            job_id: 0,
            trained_model: Bytes::from(vec![0u8; bytes]),
            history: History::new(),
            bytes_received: 0,
            bytes_sent: bytes,
            train_seconds: 0.0,
        }
    }

    fn addr(n: u8) -> ContentAddress {
        ContentAddress::of(&[n])
    }

    #[test]
    fn hit_then_ttl_expiry() {
        let t0 = Instant::now();
        let mut cache = ResultCache::new(1 << 20, Duration::from_secs(10));
        cache.insert_at(addr(1), result_of(100), t0);
        assert!(cache
            .get_at(&addr(1), t0 + Duration::from_secs(9))
            .is_some());
        // TTL runs from insertion, not last access.
        assert!(cache
            .get_at(&addr(1), t0 + Duration::from_secs(10))
            .is_none());
        assert_eq!(cache.total_bytes(), 0);
    }

    #[test]
    fn byte_bound_evicts_least_recently_used() {
        let t0 = Instant::now();
        let cost = entry_cost(&result_of(100));
        let mut cache = ResultCache::new(cost * 2, Duration::from_secs(60));
        cache.insert_at(addr(1), result_of(100), t0);
        cache.insert_at(addr(2), result_of(100), t0);
        // Touch 1 so 2 is the LRU victim.
        assert!(cache.get_at(&addr(1), t0).is_some());
        cache.insert_at(addr(3), result_of(100), t0);
        assert!(cache.total_bytes() <= cost * 2);
        assert!(cache.get_at(&addr(1), t0).is_some());
        assert!(cache.get_at(&addr(2), t0).is_none());
        assert!(cache.get_at(&addr(3), t0).is_some());
    }

    #[test]
    fn oversized_entry_is_not_admitted() {
        let t0 = Instant::now();
        let mut cache = ResultCache::new(64, Duration::from_secs(60));
        cache.insert_at(addr(1), result_of(1 << 16), t0);
        assert!(cache.is_empty());
        assert_eq!(cache.total_bytes(), 0);
    }

    #[test]
    fn reinserting_an_address_replaces_not_leaks() {
        let t0 = Instant::now();
        let mut cache = ResultCache::new(1 << 20, Duration::from_secs(60));
        for _ in 0..100 {
            cache.insert_at(addr(1), result_of(100), t0);
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.total_bytes(), entry_cost(&result_of(100)));
    }
}
