//! Service telemetry: lock-free counters shared by the client handles, the
//! metrics layer and the worker pool — plus a per-session table keyed by
//! [`SessionKey`] for the QoS counters — snapshot into [`ServiceStats`].

use crate::middleware::SessionKey;
use crate::protocol::JobResult;
use crate::telemetry::{HistogramSnapshot, Stage, Telemetry, TelemetryConfig};
use crate::CloudError;
use amalgam_tensor::wire::{Reader, Writer};
use amalgam_tensor::TensorError;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Shared atomic counters. Writers are the submit path (queue gauge), the
/// worker loop (dequeue) and [`crate::middleware::MetricsLayer`]; readers
/// call [`snapshot`](Self::snapshot) at any time.
#[derive(Debug)]
pub struct ServiceMetrics {
    started_at: Instant,
    queued: AtomicUsize,
    in_flight: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    panicked: AtomicU64,
    bytes_received: AtomicU64,
    bytes_sent: AtomicU64,
    busy_nanos: AtomicU64,
    // Transport counters, written by the TCP server's acceptor and sessions.
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    connections_active: AtomicUsize,
    frames_received: AtomicU64,
    frames_sent: AtomicU64,
    // Protocol-overhead sub-counts (Ping/Pong/handshake/admin frames),
    // included in the totals above — subtract to get job-frame throughput.
    control_frames_received: AtomicU64,
    control_frames_sent: AtomicU64,
    // A routing tier's *backend-face* frames. Kept out of frames_received/
    // frames_sent, which count the client face only, so one proxied job is
    // one frame in and one frame out — not two of each.
    relay_frames_received: AtomicU64,
    relay_frames_sent: AtomicU64,
    transport_bytes_received: AtomicU64,
    transport_bytes_sent: AtomicU64,
    rate_limited: AtomicU64,
    // Reactor counters, written by the event-loop threads.
    reactor_registered_fds: AtomicUsize,
    reactor_wakeups: AtomicU64,
    reactor_events: AtomicU64,
    reactor_write_queue_bytes: AtomicUsize,
    // Dedup counters, written by the submit-path cache check.
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    // Self-healing counters, written by a routing tier (`amalgam-proxy`)
    // sitting in front of backend servers — zero without one.
    reconnects: AtomicU64,
    jobs_resubmitted: AtomicU64,
    failovers: AtomicU64,
    // Streamed-lifecycle counters: progress frames obey the conservation
    // law emitted == delivered + dropped (asserted in the transport race
    // tests), and the durable-lifecycle tallies below let the
    // kill-and-resume suite prove a resumed run recomputed strictly fewer
    // epochs than the job's total.
    progress_emitted: AtomicU64,
    progress_delivered: AtomicU64,
    progress_dropped: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_resumed: AtomicU64,
    checkpoints_written: AtomicU64,
    checkpoints_rejected: AtomicU64,
    epochs_trained: AtomicU64,
    // Per-backend health rows, keyed by the backend's dial address.
    backends: Mutex<HashMap<String, BackendCounters>>,
    // QoS counters per session. Keyed by the SessionKey itself (cheap
    // clones: a u64 or an Arc<str>) — display names are only rendered at
    // snapshot time, off the per-job hot path.
    sessions: Mutex<HashMap<SessionKey, SessionCounters>>,
    // Per-stage latency histograms and the flight recorder.
    telemetry: Telemetry,
}

/// Per-session rows beyond this count trigger eviction of idle rows
/// (empty queue), bounding the table against anonymous-connection churn.
/// Aggregate [`ServiceStats`] counters are unaffected by eviction.
const MAX_SESSION_ROWS: usize = 4096;

/// A circuit breaker's reported position for one backend, as surfaced in
/// [`BackendStats`]. The state machine itself lives in the routing tier
/// (`amalgam-proxy`); this is its observable shadow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendHealth {
    /// Traffic flows; failures are being counted.
    #[default]
    Closed,
    /// Ejected: no session traffic, only cooldown-gated probes.
    Open,
    /// Probation: probes decide between readmission and re-ejection.
    HalfOpen,
}

impl std::fmt::Display for BackendHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendHealth::Closed => write!(f, "closed"),
            BackendHealth::Open => write!(f, "open"),
            BackendHealth::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Mutable per-backend tallies behind the backends mutex.
#[derive(Debug, Default, Clone)]
struct BackendCounters {
    health: BackendHealth,
    sessions_routed: u64,
    ejections: u64,
    readmissions: u64,
    probes_ok: u64,
    probes_failed: u64,
    failovers: u64,
    jobs_resubmitted: u64,
}

/// Mutable per-session tallies behind the sessions mutex.
#[derive(Debug, Default, Clone)]
struct SessionCounters {
    weight: f64,
    queue_depth: usize,
    submitted: u64,
    dispatched: u64,
    completed: u64,
    failed: u64,
    rate_limited: u64,
    shed: u64,
    cache_hits: u64,
    coalesced: u64,
    progress_frames: u64,
}

impl ServiceMetrics {
    /// Zeroed counters with the uptime clock started and default
    /// [`TelemetryConfig`] (histograms and flight recorder on).
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::with_telemetry(&TelemetryConfig::default())
    }

    /// Zeroed counters with an explicit telemetry configuration.
    pub fn with_telemetry(telemetry: &TelemetryConfig) -> ServiceMetrics {
        ServiceMetrics {
            started_at: Instant::now(),
            queued: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            connections_active: AtomicUsize::new(0),
            frames_received: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            control_frames_received: AtomicU64::new(0),
            control_frames_sent: AtomicU64::new(0),
            relay_frames_received: AtomicU64::new(0),
            relay_frames_sent: AtomicU64::new(0),
            transport_bytes_received: AtomicU64::new(0),
            transport_bytes_sent: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            reactor_registered_fds: AtomicUsize::new(0),
            reactor_wakeups: AtomicU64::new(0),
            reactor_events: AtomicU64::new(0),
            reactor_write_queue_bytes: AtomicUsize::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            jobs_resubmitted: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            progress_emitted: AtomicU64::new(0),
            progress_delivered: AtomicU64::new(0),
            progress_dropped: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_resumed: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            checkpoints_rejected: AtomicU64::new(0),
            epochs_trained: AtomicU64::new(0),
            backends: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            telemetry: Telemetry::new(telemetry),
        }
    }

    /// The latency histograms and flight recorder riding these counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Runs `f` on the session's counters, creating the row on first use.
    /// When the table is about to outgrow [`MAX_SESSION_ROWS`], rows of
    /// idle sessions (nothing queued) are evicted first.
    fn with_session(&self, session: &SessionKey, f: impl FnOnce(&mut SessionCounters)) {
        let mut sessions = self.sessions.lock();
        if sessions.len() >= MAX_SESSION_ROWS && !sessions.contains_key(session) {
            sessions.retain(|_, c| c.queue_depth > 0);
        }
        f(sessions.entry(session.clone()).or_default())
    }

    /// Submit path: one job entered `session`'s queue (recording the DRR
    /// `weight` the scheduler grants it).
    pub(crate) fn session_submitted(&self, session: &SessionKey, weight: f64) {
        self.with_session(session, |s| {
            s.weight = weight;
            s.submitted += 1;
            s.queue_depth += 1;
        });
    }

    /// Submit path rollback when the queue refused the envelope.
    /// Saturating, like [`session_dispatched`](Self::session_dispatched):
    /// if eviction ever hands this a fresh zeroed row, a wrapped counter
    /// must not poison every later snapshot.
    pub(crate) fn session_unqueued(&self, session: &SessionKey) {
        self.with_session(session, |s| {
            s.submitted = s.submitted.saturating_sub(1);
            s.queue_depth = s.queue_depth.saturating_sub(1);
        });
    }

    /// Worker path: the DRR scheduler handed one of `session`'s jobs to a
    /// worker (the fairness counter).
    pub(crate) fn session_dispatched(&self, session: &SessionKey) {
        self.with_session(session, |s| {
            s.dispatched += 1;
            s.queue_depth = s.queue_depth.saturating_sub(1);
        });
    }

    /// Metrics layer: one of `session`'s jobs left the stack with `result`.
    pub(crate) fn session_finished(
        &self,
        session: &SessionKey,
        result: &Result<JobResult, CloudError>,
    ) {
        self.with_session(session, |s| match result {
            Ok(_) => s.completed += 1,
            Err(CloudError::RateLimited { .. }) => {
                s.rate_limited += 1;
                s.shed += 1;
            }
            Err(CloudError::Overloaded { .. }) => s.shed += 1,
            Err(_) => s.failed += 1,
        });
    }

    /// Transport path: the per-connection in-flight cap refused one of
    /// `session`'s submits before it reached the queue.
    pub(crate) fn session_shed(&self, session: &SessionKey) {
        self.with_session(session, |s| s.shed += 1);
    }

    /// Dedup path: a submission was answered straight from the result
    /// cache — it counts as submitted, but never touched the queue.
    pub(crate) fn job_cache_hit(&self, session: &SessionKey) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.with_session(session, |s| {
            s.submitted += 1;
            s.cache_hits += 1;
        });
    }

    /// Dedup path: a submission attached as a waiter to an in-flight
    /// duplicate instead of enqueueing its own execution.
    pub(crate) fn job_coalesced(&self, session: &SessionKey) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        self.with_session(session, |s| {
            s.submitted += 1;
            s.coalesced += 1;
        });
    }

    /// Dedup path: the rate limiter refused a would-be cache hit or
    /// coalesced attach at submit time (bumping the same counters an
    /// in-stack [`crate::RateLimitLayer`] rejection would).
    pub(crate) fn job_rate_limited_at_submit(&self, session: &SessionKey) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
        self.with_session(session, |s| {
            s.submitted += 1;
            s.rate_limited += 1;
            s.shed += 1;
        });
    }

    /// Transport path: a connection completed its handshake.
    pub fn conn_opened(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Transport path: an accepted connection ended (any reason).
    pub fn conn_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Transport path: a connection was refused (capacity, handshake or
    /// version/auth failure before a session was established).
    pub fn conn_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Transport path: one framed message arrived (`wire_len` includes the
    /// length prefix).
    pub fn frame_received(&self, wire_len: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.transport_bytes_received
            .fetch_add(wire_len as u64, Ordering::Relaxed);
    }

    /// Transport path: one framed message was committed to a connection's
    /// write queue. Counted at commit so a peer that has observed the
    /// frame is guaranteed to find it counted; frames later discarded
    /// unsent are rolled back via `frame_send_aborted`.
    pub fn frame_sent(&self, wire_len: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.transport_bytes_sent
            .fetch_add(wire_len as u64, Ordering::Relaxed);
    }

    /// Transport path: a committed frame was discarded before its bytes
    /// fully reached the socket (broken sink).
    pub(crate) fn frame_send_aborted(&self, wire_len: usize) {
        self.frames_sent.fetch_sub(1, Ordering::Relaxed);
        self.transport_bytes_sent
            .fetch_sub(wire_len as u64, Ordering::Relaxed);
    }

    /// Transport path: a protocol-overhead frame arrived (keep-alive,
    /// handshake, admin). Counted in the frame totals *and* the control
    /// sub-count, so `frames_received - control_frames_received` is job
    /// throughput.
    pub fn control_frame_received(&self, wire_len: usize) {
        self.frame_received(wire_len);
        self.control_frames_received.fetch_add(1, Ordering::Relaxed);
    }

    /// Transport path: a protocol-overhead frame was committed for send.
    /// The control sub-count is not unwound if the connection dies before
    /// the bytes leave (the totals are, via `frame_send_aborted`).
    pub fn control_frame_sent(&self, wire_len: usize) {
        self.frame_sent(wire_len);
        self.control_frames_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Routing tier: one frame arrived on a *backend-face* link. Wire
    /// bytes count toward the transport totals (it is real wire traffic),
    /// but the frame lands in `relay_frames_received` instead of
    /// `frames_received`, so a proxied job is not double-counted.
    pub fn relay_frame_received(&self, wire_len: usize) {
        self.relay_frames_received.fetch_add(1, Ordering::Relaxed);
        self.transport_bytes_received
            .fetch_add(wire_len as u64, Ordering::Relaxed);
    }

    /// Routing tier: one frame was written to a *backend-face* link.
    pub fn relay_frame_sent(&self, wire_len: usize) {
        self.relay_frames_sent.fetch_add(1, Ordering::Relaxed);
        self.transport_bytes_sent
            .fetch_add(wire_len as u64, Ordering::Relaxed);
    }

    /// Reactor path: a socket was registered with an event loop's poller.
    pub(crate) fn reactor_fd_registered(&self) {
        self.reactor_registered_fds.fetch_add(1, Ordering::Relaxed);
    }

    /// Reactor path: a socket left its event loop's poller.
    pub(crate) fn reactor_fd_deregistered(&self) {
        self.reactor_registered_fds.fetch_sub(1, Ordering::Relaxed);
    }

    /// Reactor path: a cross-thread wake-up interrupted (or preempted) a
    /// poll — new connection, completed job, or shutdown. Coalesced wakes
    /// count once.
    pub(crate) fn reactor_wakeup(&self) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Reactor path: one poll returned `n` readiness events.
    pub(crate) fn reactor_events(&self, n: usize) {
        self.reactor_events.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Reactor path: `bytes` were queued on a connection's write queue
    /// (the socket wasn't ready to take them synchronously).
    pub(crate) fn write_queue_grew(&self, bytes: usize) {
        self.reactor_write_queue_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Reactor path: `bytes` left a connection's write queue (flushed to
    /// the socket, or discarded with a broken connection).
    pub(crate) fn write_queue_shrank(&self, bytes: usize) {
        self.reactor_write_queue_bytes
            .fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Submit path: counts the job and bumps the queue gauge, returning the
    /// depth the job found (jobs already waiting).
    pub(crate) fn job_queued(&self) -> usize {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queued.fetch_add(1, Ordering::Relaxed)
    }

    /// Submit path rollback when the channel rejected the envelope.
    pub(crate) fn job_unqueued(&self) {
        self.submitted.fetch_sub(1, Ordering::Relaxed);
        self.queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// Worker path: a job left the queue for a worker.
    pub(crate) fn job_dequeued(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// Metrics layer: a job entered the stack. The returned guard restores
    /// the in-flight gauge even if the job panics out of the stack (with
    /// `catch_panics(false)` the unwind would otherwise leak it forever).
    pub(crate) fn job_started(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard(self)
    }

    /// Metrics layer: a job left the stack with `result` after `elapsed`.
    pub(crate) fn job_finished(
        &self,
        bytes_in: usize,
        result: &Result<JobResult, CloudError>,
        elapsed: Duration,
    ) {
        self.busy_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes_in as u64, Ordering::Relaxed);
        match result {
            Ok(r) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                self.bytes_sent
                    .fetch_add(r.bytes_sent as u64, Ordering::Relaxed);
            }
            Err(CloudError::Overloaded { .. }) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
            Err(CloudError::RateLimited { .. }) => {
                self.rate_limited.fetch_add(1, Ordering::Relaxed);
            }
            Err(CloudError::Panicked(_)) => {
                self.panicked.fetch_add(1, Ordering::Relaxed);
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
            Err(CloudError::Cancelled) => {
                self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Runs `f` on a backend's counters, creating the row on first use.
    /// Rows are bounded by the fleet size a router is configured with, so
    /// no eviction is needed.
    fn with_backend(&self, addr: &str, f: impl FnOnce(&mut BackendCounters)) {
        let mut backends = self.backends.lock();
        f(backends.entry(addr.to_string()).or_default())
    }

    /// Routing tier: declares a backend so its row exists (healthy, all
    /// zeros) before any traffic or incident touches it.
    pub fn backend_registered(&self, addr: &str) {
        self.with_backend(addr, |_| {});
    }

    /// Routing tier: the backend's circuit breaker moved to `health`
    /// (probation entry/exit; ejections and readmissions have their own
    /// recorders which also set it).
    pub fn backend_health(&self, addr: &str, health: BackendHealth) {
        self.with_backend(addr, |b| b.health = health);
    }

    /// Routing tier: the breaker opened — the backend is ejected from
    /// routing.
    pub fn backend_ejected(&self, addr: &str) {
        self.with_backend(addr, |b| {
            b.health = BackendHealth::Open;
            b.ejections += 1;
        });
    }

    /// Routing tier: the breaker closed again — the backend is readmitted.
    pub fn backend_readmitted(&self, addr: &str) {
        self.with_backend(addr, |b| {
            b.health = BackendHealth::Closed;
            b.readmissions += 1;
        });
    }

    /// Routing tier: one health probe finished.
    pub fn backend_probe(&self, addr: &str, ok: bool) {
        self.with_backend(addr, |b| {
            if ok {
                b.probes_ok += 1;
            } else {
                b.probes_failed += 1;
            }
        });
    }

    /// Routing tier: a session was routed (or failed over) to this
    /// backend.
    pub fn backend_session_routed(&self, addr: &str) {
        self.with_backend(addr, |b| b.sessions_routed += 1);
    }

    /// Routing tier: a live session abandoned this backend mid-flight.
    pub fn backend_failover(&self, addr: &str) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
        self.with_backend(addr, |b| b.failovers += 1);
    }

    /// Routing tier: `n` in-flight jobs were replayed onto this backend
    /// after a failover (content-addressed, so replays dedup server-side).
    pub fn backend_jobs_resubmitted(&self, addr: &str, n: u64) {
        self.jobs_resubmitted.fetch_add(n, Ordering::Relaxed);
        self.with_backend(addr, |b| b.jobs_resubmitted += n);
    }

    /// Routing tier or client: a lost link was re-established.
    pub fn reconnect_established(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Streaming path: one progress frame was emitted toward `session` (one
    /// per waiter — a dedup-coalesced execution emits once per attached
    /// session, so every waiter's row gets its own accounting). Every emit
    /// later resolves to exactly one `progress_frame_delivered` or
    /// `progress_frame_dropped`.
    pub fn progress_frame_emitted(&self, session: &SessionKey) {
        self.progress_emitted.fetch_add(1, Ordering::Relaxed);
        self.with_session(session, |s| s.progress_frames += 1);
    }

    /// Streaming path: an emitted progress frame reached its sink (queued
    /// on a live v2 connection, or received by an in-process handle).
    pub fn progress_frame_delivered(&self) {
        self.progress_delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Streaming path: an emitted progress frame was dropped — v1 peer,
    /// dead handle, broken sink, or residue drained when a connection
    /// closed. Dropping is legal (progress is advisory); losing *count* of
    /// a drop is not, so emitted == delivered + dropped always holds.
    pub fn progress_frame_dropped(&self) {
        self.progress_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Durable lifecycle: a job resumed from a checkpoint instead of
    /// recomputing from epoch 0.
    pub fn job_resumed(&self) {
        self.jobs_resumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Durable lifecycle: one checkpoint was encoded and stored.
    pub fn checkpoint_written(&self) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Durable lifecycle: a stored checkpoint failed validation and was
    /// scrubbed; the job recomputed from epoch 0.
    pub fn checkpoint_rejected(&self) {
        self.checkpoints_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Train path: one epoch actually executed (resumed epochs are *not*
    /// re-counted — the kill-and-resume gate compares this against the
    /// job's total).
    pub fn epoch_trained(&self) {
        self.epochs_trained.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter plus derived rates.
    pub fn snapshot(&self) -> ServiceStats {
        let completed = self.completed.load(Ordering::Relaxed);
        let busy = Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed));
        let uptime = self.started_at.elapsed();
        ServiceStats {
            queue_depth: self.queued.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            jobs_submitted: self.submitted.load(Ordering::Relaxed),
            jobs_completed: completed,
            jobs_failed: self.failed.load(Ordering::Relaxed),
            jobs_rejected: self.rejected.load(Ordering::Relaxed),
            jobs_panicked: self.panicked.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            mean_job_seconds: if completed > 0 {
                busy.as_secs_f64() / completed as f64
            } else {
                0.0
            },
            jobs_per_second: if uptime.as_secs_f64() > 0.0 {
                completed as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            uptime_seconds: uptime.as_secs_f64(),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            control_frames_received: self.control_frames_received.load(Ordering::Relaxed),
            control_frames_sent: self.control_frames_sent.load(Ordering::Relaxed),
            relay_frames_received: self.relay_frames_received.load(Ordering::Relaxed),
            relay_frames_sent: self.relay_frames_sent.load(Ordering::Relaxed),
            transport_bytes_received: self.transport_bytes_received.load(Ordering::Relaxed),
            transport_bytes_sent: self.transport_bytes_sent.load(Ordering::Relaxed),
            jobs_rate_limited: self.rate_limited.load(Ordering::Relaxed),
            reactor_registered_fds: self.reactor_registered_fds.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            reactor_events: self.reactor_events.load(Ordering::Relaxed),
            reactor_write_queue_bytes: self.reactor_write_queue_bytes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            jobs_resubmitted: self.jobs_resubmitted.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            progress_frames_emitted: self.progress_emitted.load(Ordering::Relaxed),
            progress_frames_delivered: self.progress_delivered.load(Ordering::Relaxed),
            progress_frames_dropped: self.progress_dropped.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            jobs_resumed: self.jobs_resumed.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            checkpoints_rejected: self.checkpoints_rejected.load(Ordering::Relaxed),
            epochs_trained: self.epochs_trained.load(Ordering::Relaxed),
            backends: {
                let mut rows: Vec<BackendStats> = self
                    .backends
                    .lock()
                    .iter()
                    .map(|(addr, b)| BackendStats {
                        addr: addr.clone(),
                        health: b.health,
                        sessions_routed: b.sessions_routed,
                        ejections: b.ejections,
                        readmissions: b.readmissions,
                        probes_ok: b.probes_ok,
                        probes_failed: b.probes_failed,
                        failovers: b.failovers,
                        jobs_resubmitted: b.jobs_resubmitted,
                    })
                    .collect();
                rows.sort_by(|a, b| a.addr.cmp(&b.addr));
                rows
            },
            sessions: {
                let mut rows: Vec<SessionStats> = self
                    .sessions
                    .lock()
                    .iter()
                    .map(|(key, c)| SessionStats {
                        key: key.display_name(),
                        weight: c.weight,
                        queue_depth: c.queue_depth,
                        jobs_submitted: c.submitted,
                        jobs_dispatched: c.dispatched,
                        jobs_completed: c.completed,
                        jobs_failed: c.failed,
                        jobs_rate_limited: c.rate_limited,
                        jobs_shed: c.shed,
                        cache_hits: c.cache_hits,
                        coalesced: c.coalesced,
                        progress_frames: c.progress_frames,
                    })
                    .collect();
                rows.sort_by(|a, b| a.key.cmp(&b.key));
                rows
            },
            histograms: self.telemetry.snapshot(),
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

/// Decrements the in-flight gauge on drop, surviving unwinds.
pub(crate) struct InFlightGuard<'a>(&'a ServiceMetrics);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A point-in-time view of the service's telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Jobs waiting in the channel right now.
    pub queue_depth: usize,
    /// Jobs inside the middleware stack right now.
    pub in_flight: usize,
    /// Jobs ever submitted (including rejected ones).
    pub jobs_submitted: u64,
    /// Jobs trained to completion.
    pub jobs_completed: u64,
    /// Jobs answered with an error (decode/validation/panic).
    pub jobs_failed: u64,
    /// Jobs shed by admission control.
    pub jobs_rejected: u64,
    /// Jobs whose processing panicked (also counted in `jobs_failed`).
    pub jobs_panicked: u64,
    /// Total uploaded bytes seen by the metrics layer.
    pub bytes_received: u64,
    /// Total bytes returned for completed jobs.
    pub bytes_sent: u64,
    /// Mean wall-clock seconds per completed job.
    pub mean_job_seconds: f64,
    /// Completed jobs per second of service uptime.
    pub jobs_per_second: f64,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// TCP sessions that completed a handshake (0 without a
    /// [`crate::CloudServer`] in front).
    pub connections_accepted: u64,
    /// Connections refused before a session existed (capacity, bad
    /// handshake, version mismatch).
    pub connections_rejected: u64,
    /// Sessions open right now.
    pub connections_active: usize,
    /// Framed messages received over all sessions (client face for a
    /// routing tier; includes control frames).
    pub frames_received: u64,
    /// Framed messages sent over all sessions (client face; includes
    /// control frames).
    pub frames_sent: u64,
    /// Protocol-overhead frames received (keep-alive Ping/Pong, handshake,
    /// admin) — a sub-count of [`frames_received`](Self::frames_received),
    /// so `frames_received - control_frames_received` tracks job traffic.
    pub control_frames_received: u64,
    /// Protocol-overhead frames sent — a sub-count of
    /// [`frames_sent`](Self::frames_sent).
    pub control_frames_sent: u64,
    /// Frames a routing tier received on its backend-face links. Kept out
    /// of [`frames_received`](Self::frames_received) so one proxied job is
    /// counted once per face, not twice on one counter.
    pub relay_frames_received: u64,
    /// Frames a routing tier sent on its backend-face links.
    pub relay_frames_sent: u64,
    /// Wire bytes received (frame payloads plus length prefixes).
    pub transport_bytes_received: u64,
    /// Wire bytes sent (frame payloads plus length prefixes).
    pub transport_bytes_sent: u64,
    /// Jobs refused by the per-session rate limiter
    /// ([`crate::CloudError::RateLimited`]).
    pub jobs_rate_limited: u64,
    /// Sockets currently registered with the transport's event-loop pollers
    /// (connections plus one waker per I/O thread; 0 without a
    /// [`crate::CloudServer`]).
    pub reactor_registered_fds: usize,
    /// Cross-thread wake-ups delivered to the event loops (new connections,
    /// completed jobs, shutdown). Coalesced wakes count once.
    pub reactor_wakeups: u64,
    /// Readiness events the event loops have processed.
    pub reactor_events: u64,
    /// Bytes sitting in per-connection write queues right now (frames the
    /// sockets weren't ready to take — the backpressure gauge).
    pub reactor_write_queue_bytes: usize,
    /// Submissions answered straight from the result cache
    /// ([`crate::CloudServiceBuilder::result_cache`]) — counted in
    /// [`jobs_submitted`](Self::jobs_submitted), but they never occupied
    /// the queue or a worker, so they are *not* in
    /// [`jobs_completed`](Self::jobs_completed).
    pub cache_hits: u64,
    /// Submissions that attached as waiters to an identical in-flight job
    /// and were answered by its one execution.
    pub coalesced: u64,
    /// Lost links re-established by a self-healing component (a routing
    /// tier's backend redials; 0 without one in front).
    pub reconnects: u64,
    /// In-flight jobs replayed after a reconnect or failover. Replays are
    /// content-addressed, so they dedup instead of training twice.
    pub jobs_resubmitted: u64,
    /// Live sessions that abandoned a dying backend mid-flight.
    pub failovers: u64,
    /// Progress frames emitted toward any sink (one per waiter per epoch).
    /// Conservation law: `progress_frames_emitted ==
    /// progress_frames_delivered + progress_frames_dropped`.
    pub progress_frames_emitted: u64,
    /// Progress frames that reached their sink (queued on a live v2
    /// connection, or received by an in-process handle).
    pub progress_frames_delivered: u64,
    /// Progress frames dropped (v1 peer, dead handle, broken or closing
    /// connection). Progress is advisory, so drops are legal — but always
    /// counted.
    pub progress_frames_dropped: u64,
    /// Jobs resolved with [`crate::CloudError::Cancelled`] (kept out of
    /// [`jobs_failed`](Self::jobs_failed): the submitter asked for this).
    pub jobs_cancelled: u64,
    /// Jobs that resumed from a checkpoint instead of recomputing from
    /// epoch 0.
    pub jobs_resumed: u64,
    /// Mid-training checkpoints encoded and stored.
    pub checkpoints_written: u64,
    /// Stored checkpoints that failed validation (checksum, truncation,
    /// impossible epoch) and were scrubbed before an epoch-0 recompute.
    pub checkpoints_rejected: u64,
    /// Training epochs actually executed. After a kill-and-resume, the
    /// restarted server's count stays strictly below the job's total —
    /// the observable proof that resume skipped work.
    pub epochs_trained: u64,
    /// Per-backend health rows (breaker state, ejections/readmissions,
    /// probe tallies), sorted by address; populated by a routing tier
    /// (`amalgam-proxy`), empty otherwise.
    pub backends: Vec<BackendStats>,
    /// Per-session QoS rows (queue depth, dispatch/shed tallies), sorted by
    /// session name; every session that ever submitted has a row.
    pub sessions: Vec<SessionStats>,
    /// Per-stage latency histograms (only stages that recorded at least
    /// one value), in [`Stage`] order.
    pub histograms: Vec<(Stage, HistogramSnapshot)>,
}

fn stats_err(e: TensorError) -> CloudError {
    CloudError::Decode(e.to_string())
}

impl ServiceStats {
    /// The snapshot's histogram for `stage`, if that stage recorded
    /// anything.
    pub fn hist(&self, stage: Stage) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, h)| h)
    }

    /// Serializes the full snapshot — every counter, the backend and
    /// session tables, and the histograms — into the byte body a
    /// [`crate::transport::Frame::Stats`] carries.
    pub fn to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_u64(self.queue_depth as u64);
        w.put_u64(self.in_flight as u64);
        w.put_u64(self.jobs_submitted);
        w.put_u64(self.jobs_completed);
        w.put_u64(self.jobs_failed);
        w.put_u64(self.jobs_rejected);
        w.put_u64(self.jobs_panicked);
        w.put_u64(self.bytes_received);
        w.put_u64(self.bytes_sent);
        w.put_f64(self.mean_job_seconds);
        w.put_f64(self.jobs_per_second);
        w.put_f64(self.uptime_seconds);
        w.put_u64(self.connections_accepted);
        w.put_u64(self.connections_rejected);
        w.put_u64(self.connections_active as u64);
        w.put_u64(self.frames_received);
        w.put_u64(self.frames_sent);
        w.put_u64(self.control_frames_received);
        w.put_u64(self.control_frames_sent);
        w.put_u64(self.relay_frames_received);
        w.put_u64(self.relay_frames_sent);
        w.put_u64(self.transport_bytes_received);
        w.put_u64(self.transport_bytes_sent);
        w.put_u64(self.jobs_rate_limited);
        w.put_u64(self.reactor_registered_fds as u64);
        w.put_u64(self.reactor_wakeups);
        w.put_u64(self.reactor_events);
        w.put_u64(self.reactor_write_queue_bytes as u64);
        w.put_u64(self.cache_hits);
        w.put_u64(self.coalesced);
        w.put_u64(self.reconnects);
        w.put_u64(self.jobs_resubmitted);
        w.put_u64(self.failovers);
        w.put_u64(self.progress_frames_emitted);
        w.put_u64(self.progress_frames_delivered);
        w.put_u64(self.progress_frames_dropped);
        w.put_u64(self.jobs_cancelled);
        w.put_u64(self.jobs_resumed);
        w.put_u64(self.checkpoints_written);
        w.put_u64(self.checkpoints_rejected);
        w.put_u64(self.epochs_trained);
        w.put_u32(self.backends.len() as u32);
        for b in &self.backends {
            w.put_str(&b.addr);
            w.put_u8(match b.health {
                BackendHealth::Closed => 0,
                BackendHealth::Open => 1,
                BackendHealth::HalfOpen => 2,
            });
            w.put_u64(b.sessions_routed);
            w.put_u64(b.ejections);
            w.put_u64(b.readmissions);
            w.put_u64(b.probes_ok);
            w.put_u64(b.probes_failed);
            w.put_u64(b.failovers);
            w.put_u64(b.jobs_resubmitted);
        }
        w.put_u32(self.sessions.len() as u32);
        for s in &self.sessions {
            w.put_str(&s.key);
            w.put_f64(s.weight);
            w.put_u64(s.queue_depth as u64);
            w.put_u64(s.jobs_submitted);
            w.put_u64(s.jobs_dispatched);
            w.put_u64(s.jobs_completed);
            w.put_u64(s.jobs_failed);
            w.put_u64(s.jobs_rate_limited);
            w.put_u64(s.jobs_shed);
            w.put_u64(s.cache_hits);
            w.put_u64(s.coalesced);
            w.put_u64(s.progress_frames);
        }
        w.put_u32(self.histograms.len() as u32);
        for (stage, hist) in &self.histograms {
            w.put_u8(*stage as u8);
            hist.encode_into(&mut w);
        }
        w.finish()
    }

    /// Decodes a snapshot produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::Decode`] on truncation, trailing bytes, or an
    /// unknown health/stage tag.
    pub fn from_bytes(bytes: Bytes) -> Result<ServiceStats, CloudError> {
        let mut r = Reader::new(bytes);
        let mut stats = ServiceStats {
            queue_depth: r.get_u64().map_err(stats_err)? as usize,
            in_flight: r.get_u64().map_err(stats_err)? as usize,
            jobs_submitted: r.get_u64().map_err(stats_err)?,
            jobs_completed: r.get_u64().map_err(stats_err)?,
            jobs_failed: r.get_u64().map_err(stats_err)?,
            jobs_rejected: r.get_u64().map_err(stats_err)?,
            jobs_panicked: r.get_u64().map_err(stats_err)?,
            bytes_received: r.get_u64().map_err(stats_err)?,
            bytes_sent: r.get_u64().map_err(stats_err)?,
            mean_job_seconds: r.get_f64().map_err(stats_err)?,
            jobs_per_second: r.get_f64().map_err(stats_err)?,
            uptime_seconds: r.get_f64().map_err(stats_err)?,
            connections_accepted: r.get_u64().map_err(stats_err)?,
            connections_rejected: r.get_u64().map_err(stats_err)?,
            connections_active: r.get_u64().map_err(stats_err)? as usize,
            frames_received: r.get_u64().map_err(stats_err)?,
            frames_sent: r.get_u64().map_err(stats_err)?,
            control_frames_received: r.get_u64().map_err(stats_err)?,
            control_frames_sent: r.get_u64().map_err(stats_err)?,
            relay_frames_received: r.get_u64().map_err(stats_err)?,
            relay_frames_sent: r.get_u64().map_err(stats_err)?,
            transport_bytes_received: r.get_u64().map_err(stats_err)?,
            transport_bytes_sent: r.get_u64().map_err(stats_err)?,
            jobs_rate_limited: r.get_u64().map_err(stats_err)?,
            reactor_registered_fds: r.get_u64().map_err(stats_err)? as usize,
            reactor_wakeups: r.get_u64().map_err(stats_err)?,
            reactor_events: r.get_u64().map_err(stats_err)?,
            reactor_write_queue_bytes: r.get_u64().map_err(stats_err)? as usize,
            cache_hits: r.get_u64().map_err(stats_err)?,
            coalesced: r.get_u64().map_err(stats_err)?,
            reconnects: r.get_u64().map_err(stats_err)?,
            jobs_resubmitted: r.get_u64().map_err(stats_err)?,
            failovers: r.get_u64().map_err(stats_err)?,
            progress_frames_emitted: r.get_u64().map_err(stats_err)?,
            progress_frames_delivered: r.get_u64().map_err(stats_err)?,
            progress_frames_dropped: r.get_u64().map_err(stats_err)?,
            jobs_cancelled: r.get_u64().map_err(stats_err)?,
            jobs_resumed: r.get_u64().map_err(stats_err)?,
            checkpoints_written: r.get_u64().map_err(stats_err)?,
            checkpoints_rejected: r.get_u64().map_err(stats_err)?,
            epochs_trained: r.get_u64().map_err(stats_err)?,
            backends: Vec::new(),
            sessions: Vec::new(),
            histograms: Vec::new(),
        };
        for _ in 0..r.get_u32().map_err(stats_err)? {
            stats.backends.push(BackendStats {
                addr: r.get_str().map_err(stats_err)?,
                health: match r.get_u8().map_err(stats_err)? {
                    0 => BackendHealth::Closed,
                    1 => BackendHealth::Open,
                    2 => BackendHealth::HalfOpen,
                    t => return Err(CloudError::Decode(format!("unknown health tag {t}"))),
                },
                sessions_routed: r.get_u64().map_err(stats_err)?,
                ejections: r.get_u64().map_err(stats_err)?,
                readmissions: r.get_u64().map_err(stats_err)?,
                probes_ok: r.get_u64().map_err(stats_err)?,
                probes_failed: r.get_u64().map_err(stats_err)?,
                failovers: r.get_u64().map_err(stats_err)?,
                jobs_resubmitted: r.get_u64().map_err(stats_err)?,
            });
        }
        for _ in 0..r.get_u32().map_err(stats_err)? {
            stats.sessions.push(SessionStats {
                key: r.get_str().map_err(stats_err)?,
                weight: r.get_f64().map_err(stats_err)?,
                queue_depth: r.get_u64().map_err(stats_err)? as usize,
                jobs_submitted: r.get_u64().map_err(stats_err)?,
                jobs_dispatched: r.get_u64().map_err(stats_err)?,
                jobs_completed: r.get_u64().map_err(stats_err)?,
                jobs_failed: r.get_u64().map_err(stats_err)?,
                jobs_rate_limited: r.get_u64().map_err(stats_err)?,
                jobs_shed: r.get_u64().map_err(stats_err)?,
                cache_hits: r.get_u64().map_err(stats_err)?,
                coalesced: r.get_u64().map_err(stats_err)?,
                progress_frames: r.get_u64().map_err(stats_err)?,
            });
        }
        for _ in 0..r.get_u32().map_err(stats_err)? {
            let stage = Stage::from_u8(r.get_u8().map_err(stats_err)?)?;
            let hist = HistogramSnapshot::decode_from(&mut r)?;
            stats.histograms.push((stage, hist));
        }
        if r.remaining() != 0 {
            return Err(CloudError::Decode(format!(
                "{} trailing bytes after stats snapshot",
                r.remaining()
            )));
        }
        Ok(stats)
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4): one `amalgam_*` gauge/counter per field, plus
    /// summary-style quantile series per stage histogram. This is the body
    /// the HTTP exporter ([`crate::CloudServiceBuilder::metrics_exporter`])
    /// serves on `/metrics`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let mut gauge = |name: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP amalgam_{name} {help}");
            let _ = writeln!(out, "# TYPE amalgam_{name} gauge");
            if v == v.trunc() && v.abs() < 1e15 {
                let _ = writeln!(out, "amalgam_{name} {}", v as i64);
            } else {
                let _ = writeln!(out, "amalgam_{name} {v}");
            }
        };
        gauge(
            "queue_depth",
            "Jobs waiting right now.",
            self.queue_depth as f64,
        );
        gauge(
            "in_flight",
            "Jobs inside the stack right now.",
            self.in_flight as f64,
        );
        gauge(
            "jobs_submitted_total",
            "Jobs ever submitted.",
            self.jobs_submitted as f64,
        );
        gauge(
            "jobs_completed_total",
            "Jobs trained to completion.",
            self.jobs_completed as f64,
        );
        gauge(
            "jobs_failed_total",
            "Jobs answered with an error.",
            self.jobs_failed as f64,
        );
        gauge(
            "jobs_rejected_total",
            "Jobs shed by admission control.",
            self.jobs_rejected as f64,
        );
        gauge(
            "jobs_panicked_total",
            "Jobs whose processing panicked.",
            self.jobs_panicked as f64,
        );
        gauge(
            "jobs_rate_limited_total",
            "Jobs refused by the per-session rate limiter.",
            self.jobs_rate_limited as f64,
        );
        gauge(
            "job_bytes_received_total",
            "Uploaded job bytes.",
            self.bytes_received as f64,
        );
        gauge(
            "job_bytes_sent_total",
            "Result bytes returned.",
            self.bytes_sent as f64,
        );
        gauge(
            "jobs_per_second",
            "Completed jobs per uptime second.",
            self.jobs_per_second,
        );
        gauge(
            "uptime_seconds",
            "Seconds since service start.",
            self.uptime_seconds,
        );
        gauge(
            "connections_accepted_total",
            "Sessions that completed a handshake.",
            self.connections_accepted as f64,
        );
        gauge(
            "connections_rejected_total",
            "Connections refused before a session existed.",
            self.connections_rejected as f64,
        );
        gauge(
            "connections_active",
            "Sessions open right now.",
            self.connections_active as f64,
        );
        gauge(
            "frames_received_total",
            "Frames received (client face).",
            self.frames_received as f64,
        );
        gauge(
            "frames_sent_total",
            "Frames sent (client face).",
            self.frames_sent as f64,
        );
        gauge(
            "control_frames_received_total",
            "Protocol-overhead frames received (subset of frames_received_total).",
            self.control_frames_received as f64,
        );
        gauge(
            "control_frames_sent_total",
            "Protocol-overhead frames sent (subset of frames_sent_total).",
            self.control_frames_sent as f64,
        );
        gauge(
            "relay_frames_received_total",
            "Frames received on backend-face links (routing tier).",
            self.relay_frames_received as f64,
        );
        gauge(
            "relay_frames_sent_total",
            "Frames sent on backend-face links (routing tier).",
            self.relay_frames_sent as f64,
        );
        gauge(
            "transport_bytes_received_total",
            "Wire bytes received.",
            self.transport_bytes_received as f64,
        );
        gauge(
            "transport_bytes_sent_total",
            "Wire bytes sent.",
            self.transport_bytes_sent as f64,
        );
        gauge(
            "reactor_registered_fds",
            "Sockets registered with the event-loop pollers.",
            self.reactor_registered_fds as f64,
        );
        gauge(
            "reactor_wakeups_total",
            "Cross-thread event-loop wake-ups.",
            self.reactor_wakeups as f64,
        );
        gauge(
            "reactor_events_total",
            "Readiness events processed.",
            self.reactor_events as f64,
        );
        gauge(
            "reactor_write_queue_bytes",
            "Bytes parked in write queues (backpressure gauge).",
            self.reactor_write_queue_bytes as f64,
        );
        gauge(
            "cache_hits_total",
            "Submissions answered from the result cache.",
            self.cache_hits as f64,
        );
        gauge(
            "coalesced_total",
            "Submissions coalesced onto in-flight duplicates.",
            self.coalesced as f64,
        );
        gauge(
            "reconnects_total",
            "Lost links re-established.",
            self.reconnects as f64,
        );
        gauge(
            "jobs_resubmitted_total",
            "In-flight jobs replayed after failover.",
            self.jobs_resubmitted as f64,
        );
        gauge(
            "failovers_total",
            "Sessions that abandoned a dying backend.",
            self.failovers as f64,
        );
        gauge(
            "progress_frames_emitted_total",
            "Progress frames emitted toward any sink.",
            self.progress_frames_emitted as f64,
        );
        gauge(
            "progress_frames_delivered_total",
            "Progress frames that reached their sink.",
            self.progress_frames_delivered as f64,
        );
        gauge(
            "progress_frames_dropped_total",
            "Progress frames dropped (v1 peer or dead sink).",
            self.progress_frames_dropped as f64,
        );
        gauge(
            "jobs_cancelled_total",
            "Jobs resolved with Cancelled at the submitter's request.",
            self.jobs_cancelled as f64,
        );
        gauge(
            "jobs_resumed_total",
            "Jobs resumed from a checkpoint instead of epoch 0.",
            self.jobs_resumed as f64,
        );
        gauge(
            "checkpoints_written_total",
            "Mid-training checkpoints stored.",
            self.checkpoints_written as f64,
        );
        gauge(
            "checkpoints_rejected_total",
            "Corrupt or stale checkpoints scrubbed before recompute.",
            self.checkpoints_rejected as f64,
        );
        gauge(
            "epochs_trained_total",
            "Training epochs actually executed.",
            self.epochs_trained as f64,
        );
        let _ = writeln!(
            out,
            "# HELP amalgam_latency_microseconds Per-stage latency quantiles (log-linear histogram, error <= 1/16)."
        );
        let _ = writeln!(out, "# TYPE amalgam_latency_microseconds summary");
        for (stage, hist) in &self.histograms {
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                let _ = writeln!(
                    out,
                    "amalgam_latency_microseconds{{stage=\"{stage}\",quantile=\"{label}\"}} {}",
                    hist.quantile(q)
                );
            }
            let _ = writeln!(
                out,
                "amalgam_latency_microseconds_sum{{stage=\"{stage}\"}} {}",
                hist.sum
            );
            let _ = writeln!(
                out,
                "amalgam_latency_microseconds_count{{stage=\"{stage}\"}} {}",
                hist.count
            );
            let _ = writeln!(
                out,
                "amalgam_latency_microseconds_max{{stage=\"{stage}\"}} {}",
                hist.max
            );
        }
        out
    }
}

impl std::fmt::Display for ServiceStats {
    /// An aligned operator-facing table: one section per concern, with the
    /// histogram quantiles at the bottom.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uptime {:.1}s · {:.2} jobs/s · mean job {:.1}ms",
            self.uptime_seconds,
            self.jobs_per_second,
            self.mean_job_seconds * 1e3
        )?;
        writeln!(
            f,
            "{:<10} submitted {:<8} completed {:<8} failed {:<6} rejected {:<6} panicked {:<4} rate-limited {}",
            "jobs",
            self.jobs_submitted,
            self.jobs_completed,
            self.jobs_failed,
            self.jobs_rejected,
            self.jobs_panicked,
            self.jobs_rate_limited
        )?;
        writeln!(
            f,
            "{:<10} depth {:<6} in-flight {:<6} cache hits {:<6} coalesced {}",
            "queue", self.queue_depth, self.in_flight, self.cache_hits, self.coalesced
        )?;
        writeln!(
            f,
            "{:<10} job in {:<10} job out {:<10} wire in {:<10} wire out {}",
            "bytes",
            self.bytes_received,
            self.bytes_sent,
            self.transport_bytes_received,
            self.transport_bytes_sent
        )?;
        writeln!(
            f,
            "{:<10} active {:<4} accepted {:<6} rejected {:<4} frames in {} ({} ctl) / out {} ({} ctl) relay in {} / out {}",
            "transport",
            self.connections_active,
            self.connections_accepted,
            self.connections_rejected,
            self.frames_received,
            self.control_frames_received,
            self.frames_sent,
            self.control_frames_sent,
            self.relay_frames_received,
            self.relay_frames_sent
        )?;
        writeln!(
            f,
            "{:<10} fds {:<5} wakeups {:<8} events {:<8} write-queue {} B",
            "reactor",
            self.reactor_registered_fds,
            self.reactor_wakeups,
            self.reactor_events,
            self.reactor_write_queue_bytes
        )?;
        if self.reconnects + self.jobs_resubmitted + self.failovers > 0 {
            writeln!(
                f,
                "{:<10} reconnects {:<5} resubmitted {:<5} failovers {}",
                "healing", self.reconnects, self.jobs_resubmitted, self.failovers
            )?;
        }
        if self.jobs_cancelled
            + self.jobs_resumed
            + self.checkpoints_written
            + self.checkpoints_rejected
            + self.progress_frames_emitted
            > 0
        {
            writeln!(
                f,
                "{:<10} cancelled {:<5} resumed {:<5} ckpt written {:<5} rejected {:<4} epochs {:<6} progress {}/{}/{}",
                "lifecycle",
                self.jobs_cancelled,
                self.jobs_resumed,
                self.checkpoints_written,
                self.checkpoints_rejected,
                self.epochs_trained,
                self.progress_frames_emitted,
                self.progress_frames_delivered,
                self.progress_frames_dropped
            )?;
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "{:<15} {:>10} {:>10} {:>10} {:>10} {:>8}",
                "latency µs", "p50", "p95", "p99", "max", "count"
            )?;
            for (stage, hist) in &self.histograms {
                writeln!(
                    f,
                    "  {:<13} {:>10} {:>10} {:>10} {:>10} {:>8}",
                    stage.as_str(),
                    hist.quantile(0.5),
                    hist.quantile(0.95),
                    hist.quantile(0.99),
                    hist.max,
                    hist.count
                )?;
            }
        }
        for b in &self.backends {
            writeln!(
                f,
                "backend {} [{}] routed {} ejected {} readmitted {} probes {}/{} failovers {} resubmitted {}",
                b.addr,
                b.health,
                b.sessions_routed,
                b.ejections,
                b.readmissions,
                b.probes_ok,
                b.probes_ok + b.probes_failed,
                b.failovers,
                b.jobs_resubmitted
            )?;
        }
        for s in &self.sessions {
            writeln!(
                f,
                "session {} (w={}) depth {} submitted {} dispatched {} completed {} failed {} shed {} progress {}",
                s.key,
                s.weight,
                s.queue_depth,
                s.jobs_submitted,
                s.jobs_dispatched,
                s.jobs_completed,
                s.jobs_failed,
                s.jobs_shed,
                s.progress_frames
            )?;
        }
        Ok(())
    }
}

/// One backend's slice of a routing tier's telemetry: where its circuit
/// breaker stands and how often it has been ejected, probed, readmitted,
/// and failed away from.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendStats {
    /// The backend's dial address.
    pub addr: String,
    /// Current circuit-breaker position.
    pub health: BackendHealth,
    /// Sessions ever routed (or failed over) to this backend.
    pub sessions_routed: u64,
    /// Times the breaker opened (closed/half-open → open).
    pub ejections: u64,
    /// Times the breaker closed again after probation.
    pub readmissions: u64,
    /// Health probes that succeeded.
    pub probes_ok: u64,
    /// Health probes that failed.
    pub probes_failed: u64,
    /// Live sessions that abandoned this backend mid-flight.
    pub failovers: u64,
    /// In-flight jobs replayed onto this backend after failovers.
    pub jobs_resubmitted: u64,
}

/// One session's slice of the service telemetry.
///
/// A *session* is a [`SessionKey`]: an API key (shared by every connection
/// and client presenting it) or one anonymous client/connection. Rows are
/// how the fairness and rate-limit tests observe who actually got the
/// workers. They persist while a session has work queued; once the table
/// holds thousands of rows, idle sessions' rows may be evicted (aggregate
/// counters like [`ServiceStats::jobs_completed`] are unaffected).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// [`SessionKey::display_name`] of the session.
    pub key: String,
    /// The DRR weight the scheduler grants the session (default 1.0).
    pub weight: f64,
    /// Jobs waiting in this session's queue right now.
    pub queue_depth: usize,
    /// Jobs this session ever submitted (including later-refused ones).
    pub jobs_submitted: u64,
    /// Jobs the DRR scheduler handed to workers — the fairness counter:
    /// under contention, dispatch shares track session weights.
    pub jobs_dispatched: u64,
    /// Jobs trained to completion.
    pub jobs_completed: u64,
    /// Jobs answered with a non-QoS error (decode/validation/panic/auth).
    pub jobs_failed: u64,
    /// Jobs refused by the session's token bucket (also counted in
    /// [`jobs_shed`](Self::jobs_shed)).
    pub jobs_rate_limited: u64,
    /// Jobs shed by any QoS gate: rate limiter, admission control, or the
    /// transport's per-connection in-flight cap.
    pub jobs_shed: u64,
    /// This session's submissions answered straight from the result cache.
    pub cache_hits: u64,
    /// This session's submissions coalesced onto an identical in-flight
    /// job.
    pub coalesced: u64,
    /// Progress frames emitted for this session's jobs (each coalesced
    /// waiter counts its own copy).
    pub progress_frames: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use amalgam_nn::metrics::History;
    use bytes::Bytes;

    fn ok_result(bytes_sent: usize) -> Result<JobResult, CloudError> {
        Ok(JobResult {
            job_id: 0,
            trained_model: Bytes::new(),
            history: History::new(),
            bytes_received: 0,
            bytes_sent,
            train_seconds: 0.0,
        })
    }

    #[test]
    fn counters_roll_up_into_snapshot() {
        let m = ServiceMetrics::new();
        assert_eq!(m.job_queued(), 0);
        assert_eq!(m.job_queued(), 1);
        m.job_dequeued();
        m.job_started();
        m.job_finished(100, &ok_result(40), Duration::from_millis(2));
        m.job_started();
        m.job_finished(
            7,
            &Err(CloudError::Decode("x".into())),
            Duration::from_millis(1),
        );
        m.job_started();
        m.job_finished(
            7,
            &Err(CloudError::Panicked("boom".into())),
            Duration::from_millis(1),
        );
        m.job_started();
        m.job_finished(
            7,
            &Err(CloudError::Overloaded {
                queue_depth: 9,
                max_queue_depth: 1,
            }),
            Duration::ZERO,
        );
        let s = m.snapshot();
        assert_eq!(s.jobs_submitted, 2);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.jobs_completed, 1);
        assert_eq!(s.jobs_failed, 2);
        assert_eq!(s.jobs_panicked, 1);
        assert_eq!(s.jobs_rejected, 1);
        assert_eq!(s.bytes_received, 121);
        assert_eq!(s.bytes_sent, 40);
        assert!(s.mean_job_seconds > 0.0);
        assert!(s.uptime_seconds >= 0.0);
    }

    #[test]
    fn control_and_relay_frames_split_out_of_job_traffic() {
        let m = ServiceMetrics::new();
        m.frame_received(100); // a Submit
        m.control_frame_received(9); // a Ping
        m.control_frame_sent(9); // the Pong
        m.frame_sent(50); // the Reply
        m.relay_frame_sent(100); // forwarded to a backend
        m.relay_frame_received(50); // the backend's reply
        let s = m.snapshot();
        assert_eq!(s.frames_received, 2);
        assert_eq!(s.control_frames_received, 1);
        assert_eq!(s.frames_sent, 2);
        assert_eq!(s.control_frames_sent, 1);
        assert_eq!(s.relay_frames_received, 1);
        assert_eq!(s.relay_frames_sent, 1);
        // Job throughput = totals minus control, unpolluted by the relay.
        assert_eq!(s.frames_received - s.control_frames_received, 1);
        // Wire bytes cover both faces.
        assert_eq!(s.transport_bytes_received, 100 + 9 + 50);
        assert_eq!(s.transport_bytes_sent, 9 + 50 + 100);
    }

    #[test]
    fn stats_snapshot_wire_roundtrip_is_identity() {
        use crate::middleware::SessionKey;
        use crate::telemetry::Stage;
        use std::time::Duration;
        let m = ServiceMetrics::new();
        m.job_queued();
        m.job_started();
        m.job_finished(64, &ok_result(16), Duration::from_millis(3));
        m.session_submitted(&SessionKey::ApiKey("alpha".into()), 2.0);
        m.backend_registered("10.0.0.1:4000");
        m.backend_probe("10.0.0.1:4000", true);
        m.backend_ejected("10.0.0.1:4000");
        m.telemetry()
            .record(Stage::Train, Duration::from_micros(850));
        m.telemetry()
            .record(Stage::QueueWait, Duration::from_micros(17));
        let s = m.snapshot();
        let back = ServiceStats::from_bytes(s.to_bytes()).unwrap();
        assert_eq!(back, s);
        // And the quantiles survive the trip.
        assert_eq!(
            back.hist(Stage::Train).unwrap().quantile(0.5),
            s.hist(Stage::Train).unwrap().quantile(0.5)
        );
    }

    #[test]
    fn prometheus_text_has_counters_and_stage_quantiles() {
        use crate::telemetry::Stage;
        use std::time::Duration;
        let m = ServiceMetrics::new();
        m.job_queued();
        for _ in 0..10 {
            m.telemetry()
                .record(Stage::Train, Duration::from_micros(500));
            m.telemetry()
                .record(Stage::QueueWait, Duration::from_micros(40));
        }
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE amalgam_jobs_submitted_total gauge"));
        assert!(text.contains("amalgam_jobs_submitted_total 1"));
        for stage in ["train", "queue_wait"] {
            for q in ["0.5", "0.95", "0.99"] {
                assert!(
                    text.contains(&format!(
                        "amalgam_latency_microseconds{{stage=\"{stage}\",quantile=\"{q}\"}}"
                    )),
                    "missing {stage} q{q} in:\n{text}"
                );
            }
            assert!(text.contains(&format!(
                "amalgam_latency_microseconds_count{{stage=\"{stage}\"}} 10"
            )));
        }
    }

    #[test]
    fn display_renders_quantile_table() {
        use crate::telemetry::Stage;
        use std::time::Duration;
        let m = ServiceMetrics::new();
        m.telemetry()
            .record(Stage::Train, Duration::from_micros(900));
        let text = m.snapshot().to_string();
        assert!(text.contains("jobs"), "{text}");
        assert!(text.contains("latency"), "{text}");
        assert!(text.contains("train"), "{text}");
    }
}
