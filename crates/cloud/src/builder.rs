//! Configures and launches a [`CloudService`]: worker count, observer,
//! admission control, per-session QoS (rate limits and DRR weights), panic
//! policy and custom middleware.

use crate::cache::{DedupLayer, DedupShared};
use crate::checkpoint::CheckpointStore;
use crate::metrics::ServiceMetrics;
use crate::middleware::{
    AdmissionLayer, ApiKeyLayer, CloudLayer, DecodeLayer, MetricsLayer, ObserverLayer, PanicLayer,
    ServiceBuilder, TimedLayer, ValidateLayer,
};
use crate::observer::CloudObserver;
use crate::ratelimit::RateLimitLayer;
use crate::service::CloudService;
use crate::telemetry::TelemetryConfig;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Builder for [`CloudService`] (obtained via [`CloudService::builder`]).
///
/// The default stack it assembles, outermost first:
///
/// `metrics → panic → admission → dedup → ratelimit → auth →
/// [custom layers] → decode → validate → observer → train`
///
/// (`dedup` only when [`result_cache`](Self::result_cache) is configured;
/// its read side — cache hits and coalescing — runs in the submit path,
/// before the queue.)
///
/// Custom layers therefore see the raw serialized payload (decode has not
/// run yet) plus whatever the admission, rate-limit and auth gates let
/// through.
pub struct CloudServiceBuilder {
    pub(crate) workers: usize,
    pub(crate) observer: Option<Arc<Mutex<dyn CloudObserver>>>,
    pub(crate) max_queue_depth: Option<usize>,
    pub(crate) catch_panics: bool,
    pub(crate) api_keys: Option<Vec<String>>,
    pub(crate) rate_limit: Option<(f64, f64)>,
    pub(crate) result_cache: Option<(usize, Duration)>,
    pub(crate) session_weights: HashMap<String, f64>,
    pub(crate) custom_layers: Vec<Box<dyn CloudLayer>>,
    pub(crate) telemetry: TelemetryConfig,
    pub(crate) metrics_exporter: Option<SocketAddr>,
    pub(crate) checkpoint_store: Option<Arc<dyn CheckpointStore>>,
    pub(crate) checkpoint_every: u64,
}

impl CloudServiceBuilder {
    pub(crate) fn new() -> CloudServiceBuilder {
        CloudServiceBuilder {
            workers: 1,
            observer: None,
            max_queue_depth: None,
            catch_panics: true,
            api_keys: None,
            rate_limit: None,
            result_cache: None,
            session_weights: HashMap::new(),
            custom_layers: Vec::new(),
            telemetry: TelemetryConfig::default(),
            metrics_exporter: None,
            checkpoint_store: None,
            checkpoint_every: 1,
        }
    }

    /// Number of worker threads pulling from the shared queue (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn workers(mut self, n: usize) -> CloudServiceBuilder {
        assert!(n > 0, "a cloud service needs at least one worker");
        self.workers = n;
        self
    }

    /// Attaches the honest-but-curious observer. Without one, no observer
    /// layer is installed at all — workers skip the tap's mutex entirely.
    #[must_use]
    pub fn observer(mut self, observer: Arc<Mutex<dyn CloudObserver>>) -> CloudServiceBuilder {
        self.observer = Some(observer);
        self
    }

    /// Enables admission control: jobs submitted while more than `depth`
    /// jobs were already queued fail with [`crate::CloudError::Overloaded`].
    #[must_use]
    pub fn max_queue_depth(mut self, depth: usize) -> CloudServiceBuilder {
        self.max_queue_depth = Some(depth);
        self
    }

    /// Whether panics in the stack become [`crate::CloudError::Panicked`]
    /// instead of killing the worker (default `true`).
    #[must_use]
    pub fn catch_panics(mut self, on: bool) -> CloudServiceBuilder {
        self.catch_panics = on;
        self
    }

    /// Requires every job's session to present one of `keys`: installs an
    /// [`ApiKeyLayer`] between the rate limiter and the custom layers.
    /// Remote sessions carry their key from the connection handshake;
    /// in-process clients opt in via [`crate::CloudClient::with_api_key`].
    #[must_use]
    pub fn api_keys<I, S>(mut self, keys: I) -> CloudServiceBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.api_keys = Some(keys.into_iter().map(Into::into).collect());
        self
    }

    /// Grants every session a token bucket admitting `rate_per_sec`
    /// sustained jobs per second with bursts of up to `burst` jobs:
    /// installs a [`RateLimitLayer`] between admission control and auth.
    /// Jobs over budget fail with [`crate::CloudError::RateLimited`] and an
    /// honest retry-after, on remote sessions and in-process clients alike.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec > 0` and `burst >= 1`.
    #[must_use]
    pub fn rate_limit(mut self, rate_per_sec: f64, burst: f64) -> CloudServiceBuilder {
        // Reuse the layer's own validation so a bad config fails here.
        let _ = RateLimitLayer::new(rate_per_sec, burst);
        self.rate_limit = Some((rate_per_sec, burst));
        self
    }

    /// Enables content-addressed dedup and result caching (both off by
    /// default): identical submissions — same canonical payload bytes,
    /// local or remote — execute **once**. Concurrent duplicates coalesce
    /// onto the in-flight execution; later duplicates are answered from a
    /// TTL + LRU cache bounded by `capacity_bytes` (measured by
    /// [`crate::cache::entry_cost`], since results carry model weights).
    /// Installs a [`crate::DedupLayer`] between admission control and the
    /// rate limiter.
    ///
    /// Served submissions still spend rate-limit tokens
    /// ([`rate_limit`](Self::rate_limit)), are counted in
    /// [`crate::ServiceStats::cache_hits`] /
    /// [`crate::ServiceStats::coalesced`], and carry their own job ids;
    /// the result bytes are bitwise identical to an uncached execution —
    /// which is exactly what the stack's determinism guarantee promises.
    ///
    /// A `capacity_bytes` of `0` (or a zero `ttl`) caches nothing but
    /// still coalesces in-flight duplicates.
    #[must_use]
    pub fn result_cache(mut self, capacity_bytes: usize, ttl: Duration) -> CloudServiceBuilder {
        self.result_cache = Some((capacity_bytes, ttl));
        self
    }

    /// Gives sessions presenting API key `key` a deficit-round-robin
    /// weight of `weight` (default 1.0): under contention the session is
    /// dispatched `weight` jobs per scheduling round instead of one.
    /// Anonymous sessions always weigh 1.0.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is positive and finite.
    #[must_use]
    pub fn session_weight(mut self, key: impl Into<String>, weight: f64) -> CloudServiceBuilder {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "a session weight must be positive and finite"
        );
        self.session_weights.insert(key.into(), weight);
        self
    }

    /// Inserts a custom layer between admission control and decode; layers
    /// added first sit outermost among the custom ones.
    #[must_use]
    pub fn layer(mut self, layer: impl CloudLayer + 'static) -> CloudServiceBuilder {
        self.custom_layers.push(Box::new(layer));
        self
    }

    /// Configures the telemetry plane: per-stage latency histograms, span
    /// recording and the flight recorder (all **on** by default with a
    /// 256-trace ring and a 1 s slow threshold). Disabling telemetry skips
    /// every per-stage clock read — the `cloud_trace_overhead` bench gate
    /// holds the enabled cost under 5%.
    #[must_use]
    pub fn telemetry(mut self, config: TelemetryConfig) -> CloudServiceBuilder {
        self.telemetry = config;
        self
    }

    /// Makes jobs durable: the trainer snapshots model + optimizer +
    /// history into `store` at epoch boundaries (cadence set by
    /// [`checkpoint_every`](Self::checkpoint_every), default every epoch),
    /// keyed by the job payload's content address — the same canonical
    /// SipHash the result cache uses, computed even when dedup is off.
    ///
    /// A (re)submitted job whose address holds a valid snapshot **resumes**
    /// from the last epoch boundary instead of recomputing from epoch 0;
    /// because every epoch's RNG is a pure function of `(seed, epoch)`, the
    /// resumed run's result is bitwise identical to an uninterrupted one.
    /// Corrupt, truncated or stale snapshots are detected (checksummed
    /// encoding), counted in
    /// [`checkpoints_rejected`](crate::ServiceStats::checkpoints_rejected),
    /// scrubbed, and the job falls back to a full recompute — never a wrong
    /// answer. A job's snapshot is deleted when it completes; failed and
    /// cancelled jobs keep theirs so a retry resumes.
    ///
    /// Share one store — [`crate::MemoryCheckpointStore`] across services
    /// in one process, [`crate::FileCheckpointStore`] across process
    /// restarts — to survive server crashes and backend failover.
    #[must_use]
    pub fn checkpoint_store(mut self, store: Arc<dyn CheckpointStore>) -> CloudServiceBuilder {
        self.checkpoint_store = Some(store);
        self
    }

    /// Snapshot cadence for [`checkpoint_store`](Self::checkpoint_store):
    /// a checkpoint is written after every `every` completed epochs
    /// (default 1; `0` disables writes while still resuming from — and
    /// cleaning up — existing snapshots).
    #[must_use]
    pub fn checkpoint_every(mut self, every: u64) -> CloudServiceBuilder {
        self.checkpoint_every = every;
        self
    }

    /// Serves Prometheus text-format metrics over HTTP on `addr`.
    ///
    /// The exporter is a dependency-free HTTP/1.0 responder registered on
    /// the transport's existing reactor threads — it adds **no threads**.
    /// It therefore only answers while a [`crate::CloudServer`] fronts this
    /// service; `GET /metrics` (any path, in fact) returns the same body
    /// [`crate::ServiceStats::to_prometheus`] renders.
    #[must_use]
    pub fn metrics_exporter(mut self, addr: SocketAddr) -> CloudServiceBuilder {
        self.metrics_exporter = Some(addr);
        self
    }

    /// Assembles the default middleware stack around the trainer, plus
    /// the shared dedup state when [`result_cache`](Self::result_cache)
    /// was configured (the submit path consults it before the queue).
    pub(crate) fn assemble(
        &mut self,
        metrics: Arc<ServiceMetrics>,
    ) -> (crate::middleware::ServiceBuilder, Option<Arc<DedupShared>>) {
        let rate_layer = self
            .rate_limit
            .map(|(rate, burst)| RateLimitLayer::new(rate, burst));
        let dedup = self.result_cache.map(|(capacity_bytes, ttl)| {
            Arc::new(DedupShared::new(
                capacity_bytes,
                ttl,
                rate_layer.as_ref().map(RateLimitLayer::handle),
                Arc::clone(&metrics),
            ))
        });
        // With telemetry on, every layer below the metrics finalizer is
        // wrapped in a TimedLayer so each stage contributes one span; with
        // it off, the stack is byte-for-byte the untimed one.
        let timed = self.telemetry.enabled;
        let wrap = |layer: Box<dyn CloudLayer>| -> Box<dyn CloudLayer> {
            if timed {
                Box::new(TimedLayer::new(layer))
            } else {
                layer
            }
        };
        let mut stack = ServiceBuilder::new().layer(MetricsLayer::new(metrics));
        if self.catch_panics {
            stack = stack.layer_boxed(wrap(Box::new(PanicLayer)));
        }
        if let Some(depth) = self.max_queue_depth {
            stack = stack.layer_boxed(wrap(Box::new(AdmissionLayer::new(depth))));
        }
        if let Some(shared) = &dedup {
            stack = stack.layer_boxed(wrap(Box::new(DedupLayer::new(Arc::clone(shared)))));
        }
        if let Some(layer) = rate_layer {
            stack = stack.layer_boxed(wrap(Box::new(layer)));
        }
        if let Some(keys) = self.api_keys.take() {
            stack = stack.layer_boxed(wrap(Box::new(ApiKeyLayer::new(keys))));
        }
        for layer in self.custom_layers.drain(..) {
            stack = stack.layer_boxed(wrap(layer));
        }
        stack = stack
            .layer_boxed(wrap(Box::new(DecodeLayer)))
            .layer_boxed(wrap(Box::new(ValidateLayer)));
        if let Some(observer) = &self.observer {
            stack = stack.layer_boxed(wrap(Box::new(ObserverLayer::new(Arc::clone(observer)))));
        }
        (stack, dedup)
    }

    /// Launches the worker pool and returns the running service.
    pub fn build(self) -> CloudService {
        CloudService::from_builder(self)
    }
}

impl std::fmt::Debug for CloudServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudServiceBuilder")
            .field("workers", &self.workers)
            .field("max_queue_depth", &self.max_queue_depth)
            .field("catch_panics", &self.catch_panics)
            .field("api_keys", &self.api_keys.as_ref().map(Vec::len))
            .field("rate_limit", &self.rate_limit)
            .field("result_cache", &self.result_cache)
            .field("session_weights", &self.session_weights.len())
            .field("custom_layers", &self.custom_layers.len())
            .field("telemetry", &self.telemetry)
            .field("metrics_exporter", &self.metrics_exporter)
            .field("checkpoint_store", &self.checkpoint_store)
            .field("checkpoint_every", &self.checkpoint_every)
            .finish()
    }
}
