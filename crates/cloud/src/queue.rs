//! The fairness-aware dispatch queue: per-session FIFOs drained by
//! deficit round robin.
//!
//! PR 1's scheduler was one shared FIFO channel — correct, but a session
//! that submits faster than the pool drains gets every worker, and a
//! polite session's jobs wait behind the whole flood. This queue replaces
//! it: each [`SessionKey`] owns a FIFO of its still-queued jobs, and
//! workers pop by **deficit round robin** over the non-empty sessions. On a
//! session's turn its deficit grows by its weight (the DRR quantum, default
//! 1.0) and it may dispatch one job per whole unit of deficit, so over any
//! contended interval sessions receive worker turns proportional to their
//! weights — a session's *submit* rate buys it queue depth, never a larger
//! share of the pool.
//!
//! Per-session order stays strictly FIFO (a session cannot starve or
//! reorder itself), which is also what keeps the [`crate::ratelimit`]
//! buckets' submit-timestamp math monotone. Empty sessions leave the
//! rotation (and the map) entirely: an idle service holds no per-session
//! state, and a freshly active session starts at deficit zero just like
//! everyone else in the round.

use crate::middleware::SessionKey;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// One queued unit of work, generic so the queue stays decoupled from the
/// service's envelope type (and unit-testable without one).
struct SessionQueue<T> {
    jobs: VecDeque<T>,
    /// Accumulated DRR credit; one whole unit buys one dispatch.
    deficit: f64,
    /// The DRR quantum added on each of this session's turns.
    weight: f64,
}

struct QueueState<T> {
    sessions: HashMap<SessionKey, SessionQueue<T>>,
    /// Round-robin order over non-empty sessions; the front is next to be
    /// offered a turn.
    rotation: VecDeque<SessionKey>,
    /// Total queued jobs across all sessions.
    len: usize,
    closed: bool,
}

/// A multi-producer, multi-consumer job queue with per-session DRR
/// scheduling. Producers are client handles and transport sessions;
/// consumers are the pool's worker threads.
pub(crate) struct FairDispatcher<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    /// Per-key DRR weights (keyed by API key); sessions without an entry
    /// weigh 1.0.
    weights: HashMap<String, f64>,
}

impl<T> FairDispatcher<T> {
    /// An open, empty queue with the given per-API-key weights.
    pub(crate) fn new(weights: HashMap<String, f64>) -> FairDispatcher<T> {
        FairDispatcher {
            state: Mutex::new(QueueState {
                sessions: HashMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            available: Condvar::new(),
            weights,
        }
    }

    fn weight_for(&self, session: &SessionKey) -> f64 {
        match session {
            SessionKey::ApiKey(key) => self.weights.get(key.as_ref()).copied().unwrap_or(1.0),
            SessionKey::Anonymous(_) => 1.0,
        }
    }

    /// Enqueues one job onto its session's FIFO, returning the job back if
    /// the queue is closed (so the caller can answer it).
    pub(crate) fn push(&self, session: &SessionKey, job: T) -> Result<(), T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(job);
        }
        match state.sessions.get_mut(session) {
            Some(queue) => queue.jobs.push_back(job),
            None => {
                let mut jobs = VecDeque::new();
                jobs.push_back(job);
                state.sessions.insert(
                    session.clone(),
                    SessionQueue {
                        jobs,
                        deficit: 0.0,
                        weight: self.weight_for(session),
                    },
                );
                state.rotation.push_back(session.clone());
            }
        }
        state.len += 1;
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job in DRR order. Returns `None` only once the
    /// queue is closed **and** empty, so already-accepted jobs always drain
    /// before workers exit.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.len > 0 {
                return Some(Self::pop_drr(&mut state));
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// One DRR dispatch; `state.len > 0` must hold.
    ///
    /// Runs O(sessions) per dispatch regardless of the configured weights:
    /// each outer pass rotates through the round at most once, and if a
    /// whole round of quantum grants produced no dispatch (pathologically
    /// small weights), the remaining rounds are granted arithmetically
    /// instead of by spinning — all with the queue mutex held, so this
    /// bound is what keeps submitters and other workers unblocked.
    fn pop_drr(state: &mut QueueState<T>) -> T {
        loop {
            // One rotation (plus the front revisit): dispatch the first
            // session whose deficit covers a job, granting quanta as we go.
            for _ in 0..=state.rotation.len() {
                let key = state
                    .rotation
                    .front()
                    .expect("non-empty queue has a rotation")
                    .clone();
                let queue = state
                    .sessions
                    .get_mut(&key)
                    .expect("rotated session exists");
                if queue.deficit >= 1.0 {
                    queue.deficit -= 1.0;
                    let job = queue.jobs.pop_front().expect("rotated session has jobs");
                    state.len -= 1;
                    if queue.jobs.is_empty() {
                        // An emptied session leaves the round entirely;
                        // unspent deficit is forfeited (standard DRR), so
                        // bursty sessions cannot bank credit across idle
                        // gaps.
                        state.sessions.remove(&key);
                        state.rotation.pop_front();
                    }
                    return job;
                }
                // Not this session's dispatch yet: grant its quantum and
                // move it to the back of the round.
                queue.deficit += queue.weight;
                state.rotation.rotate_left(1);
            }
            // A whole round granted quanta without any dispatch: jump every
            // session forward by the rounds the closest one still needs.
            let rounds = state
                .rotation
                .iter()
                .map(|key| {
                    let queue = &state.sessions[key];
                    ((1.0 - queue.deficit) / queue.weight).ceil()
                })
                .fold(f64::INFINITY, f64::min);
            if rounds.is_finite() && rounds > 0.0 {
                let keys: Vec<SessionKey> = state.rotation.iter().cloned().collect();
                for key in keys {
                    let queue = state
                        .sessions
                        .get_mut(&key)
                        .expect("rotated session exists");
                    queue.deficit += rounds * queue.weight;
                }
            }
        }
    }

    /// Closes the queue: further [`push`](Self::push)es are refused, and
    /// blocked [`pop`](Self::pop)s return `None` once the backlog drains.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.available.notify_all();
    }

    /// Removes and returns every still-queued job (used after the workers
    /// are joined, to answer jobs stranded behind a dead worker).
    pub(crate) fn drain(&self) -> Vec<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut stranded = Vec::with_capacity(state.len);
        // Drain in rotation order so stranded jobs are still answered in a
        // fair, deterministic order.
        while state.len > 0 {
            stranded.push(Self::pop_drr(&mut state));
        }
        stranded
    }

    /// Jobs queued right now for `session`.
    #[cfg(test)]
    pub(crate) fn session_depth(&self, session: &SessionKey) -> usize {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.sessions.get(session).map_or(0, |q| q.jobs.len())
    }

    /// The DRR quantum `session` would be scheduled with.
    pub(crate) fn weight_for_session(&self, session: &SessionKey) -> f64 {
        self.weight_for(session)
    }
}

impl<T> std::fmt::Debug for FairDispatcher<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("FairDispatcher")
            .field("sessions", &state.sessions.len())
            .field("len", &state.len)
            .field("closed", &state.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon(id: u64) -> SessionKey {
        SessionKey::Anonymous(id)
    }

    fn keyed(key: &str) -> SessionKey {
        SessionKey::ApiKey(std::sync::Arc::from(key))
    }

    #[test]
    fn single_session_is_fifo() {
        let q: FairDispatcher<u32> = FairDispatcher::new(HashMap::new());
        for i in 0..5 {
            q.push(&anon(0), i).unwrap();
        }
        assert_eq!(q.session_depth(&anon(0)), 5);
        let order: Vec<u32> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn two_sessions_interleave_regardless_of_backlog() {
        let q: FairDispatcher<(u64, u32)> = FairDispatcher::new(HashMap::new());
        // Session 0 floods 10 jobs before session 1 queues its 3.
        for i in 0..10 {
            q.push(&anon(0), (0, i)).unwrap();
        }
        for i in 0..3 {
            q.push(&anon(1), (1, i)).unwrap();
        }
        let order: Vec<(u64, u32)> = (0..13).map(|_| q.pop().unwrap()).collect();
        // While both sessions are non-empty the round alternates, so the
        // polite session's last job leaves within the first 6 dispatches.
        let last_polite = order.iter().rposition(|&(s, _)| s == 1).unwrap();
        assert!(last_polite <= 5, "polite starved: order {order:?}");
        // Per-session FIFO holds on both sides.
        let polite: Vec<u32> = order.iter().filter(|(s, _)| *s == 1).map(|j| j.1).collect();
        let flood: Vec<u32> = order.iter().filter(|(s, _)| *s == 0).map(|j| j.1).collect();
        assert_eq!(polite, vec![0, 1, 2]);
        assert_eq!(flood, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn weights_buy_proportional_turns() {
        let weights = HashMap::from([("heavy".to_string(), 2.0)]);
        let q: FairDispatcher<&'static str> = FairDispatcher::new(weights);
        for _ in 0..20 {
            q.push(&keyed("heavy"), "heavy").unwrap();
            q.push(&keyed("light"), "light").unwrap();
        }
        // Over the first 12 dispatches, heavy should get ~2x light's share.
        let first: Vec<&str> = (0..12).map(|_| q.pop().unwrap()).collect();
        let heavy = first.iter().filter(|s| **s == "heavy").count();
        assert_eq!(heavy, 8, "weight-2 session should take 2/3: {first:?}");
    }

    #[test]
    fn pathologically_small_weights_dispatch_without_spinning() {
        // A 1e-9 weight needs ~1e9 quantum grants per dispatch; the
        // arithmetic jump must deliver that in O(sessions), not by looping
        // (this test hangs for minutes if it regresses).
        let weights = HashMap::from([("slow".to_string(), 1e-9), ("fast".to_string(), 1.0)]);
        let q: FairDispatcher<&'static str> = FairDispatcher::new(weights);
        for _ in 0..4 {
            q.push(&keyed("slow"), "slow").unwrap();
        }
        // Alone in the queue, the slow session still drains immediately.
        assert_eq!(q.pop(), Some("slow"));
        // Against a weight-1.0 session, fast dominates but slow is not
        // starved forever once fast empties.
        for _ in 0..3 {
            q.push(&keyed("fast"), "fast").unwrap();
        }
        let order: Vec<&str> = (0..6).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order.iter().filter(|s| **s == "fast").count(), 3);
        assert_eq!(order.iter().filter(|s| **s == "slow").count(), 3);
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q: FairDispatcher<u32> = FairDispatcher::new(HashMap::new());
        q.push(&anon(0), 7).unwrap();
        q.close();
        assert!(q.push(&anon(0), 8).is_err(), "closed queue must refuse");
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q: std::sync::Arc<FairDispatcher<u32>> =
            std::sync::Arc::new(FairDispatcher::new(HashMap::new()));
        let waiter = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn drain_empties_every_session() {
        let q: FairDispatcher<u32> = FairDispatcher::new(HashMap::new());
        q.push(&anon(0), 1).unwrap();
        q.push(&anon(1), 2).unwrap();
        q.push(&anon(0), 3).unwrap();
        let mut left = q.drain();
        left.sort_unstable();
        assert_eq!(left, vec![1, 2, 3]);
        assert_eq!(q.session_depth(&anon(0)), 0);
    }
}
