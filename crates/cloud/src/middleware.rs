//! Tower-style composable middleware for the cloud service.
//!
//! A job travels through a stack of [`JobService`]s, each produced by a
//! [`CloudLayer`]. The request (serialized payload + [`JobContext`]) flows
//! outside-in; the [`JobResult`] flows inside-out. [`ServiceBuilder`]
//! composes a stack; [`crate::CloudServiceBuilder`] assembles the default
//! one (see the crate docs for the diagram).

use crate::metrics::ServiceMetrics;
use crate::observer::CloudObserver;
use crate::protocol::{CloudJob, JobResult, TaskPayload};
use crate::telemetry::{JobTrace, SpanRecord, Stage, TraceId};
use crate::CloudError;
use amalgam_nn::graph::GraphModel;
use bytes::Bytes;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The identity rate limiting and fair scheduling key on.
///
/// Every [`crate::CloudClient`] and every transport connection is one
/// *session*: an authenticated one is identified by its API key (all
/// connections presenting the same key share one queue, one token bucket
/// and one DRR weight), an anonymous one by a service-unique id minted when
/// the client — or the connection's session — was created. Clones of a
/// `CloudClient` share its session identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SessionKey {
    /// An unauthenticated session, identified by a service-unique id.
    Anonymous(u64),
    /// An authenticated session, identified by its API key.
    ApiKey(Arc<str>),
}

impl SessionKey {
    /// Human-readable name used to key per-session telemetry
    /// ([`crate::ServiceStats::sessions`]).
    pub fn display_name(&self) -> String {
        match self {
            SessionKey::Anonymous(id) => format!("session-{id}"),
            SessionKey::ApiKey(key) => key.to_string(),
        }
    }
}

/// Per-job state threaded through the stack alongside the raw payload.
///
/// Outer layers populate it (decode fills [`job`](Self::job) and
/// [`model`](Self::model), the observer tap fills
/// [`observer`](Self::observer)); inner layers and the trainer consume it.
#[derive(Debug)]
pub struct JobContext {
    /// Service-assigned id, unique per service instance.
    pub job_id: u64,
    /// Jobs already waiting in the queue when this one was submitted —
    /// what admission control judges.
    pub queue_depth_at_submit: usize,
    /// Size of the uploaded payload (set by the decode layer).
    pub bytes_received: usize,
    /// The decoded job, once the decode layer has run.
    pub job: Option<CloudJob>,
    /// The decoded model, once the decode layer has run.
    pub model: Option<GraphModel>,
    /// The adversary's vantage point, installed by the observer layer.
    pub observer: Option<Arc<Mutex<dyn CloudObserver>>>,
    /// The session's API key: negotiated at the transport handshake for
    /// remote jobs, or stamped by [`crate::CloudClient::with_api_key`] for
    /// in-process ones. Judged by [`ApiKeyLayer`].
    pub api_key: Option<Arc<str>>,
    /// The submitting session's identity — what the fair scheduler queues
    /// by and [`crate::RateLimitLayer`] buckets by.
    pub session: SessionKey,
    /// When the job was submitted (not dequeued): the instant the rate
    /// limiter judges, so queueing delay neither hides nor penalizes a
    /// session's submit rate.
    pub submitted_at: Instant,
    /// The payload's canonical content address, stamped at submit time
    /// when dedup is enabled ([`crate::CloudServiceBuilder::result_cache`]);
    /// the [`crate::DedupLayer`] caches successful results under it.
    /// `None` when dedup is off.
    pub content_address: Option<crate::hash::ContentAddress>,
    /// The job's end-to-end trace id: carried over the wire for remote
    /// jobs (protocol ≥ 2), minted at enqueue for in-process ones;
    /// [`TraceId::NONE`] from v1 peers.
    pub trace: TraceId,
    /// Whether the per-stage timing wrappers should record spans for this
    /// job (copied from the service's telemetry switch at dequeue, so the
    /// disabled path skips every clock read).
    pub record_spans: bool,
    /// Microseconds the job waited between submit and dequeue, stamped by
    /// the worker loop before the stack runs.
    pub queue_wait_us: u64,
    /// Per-stage spans, pushed **innermost-first** as the stack unwinds
    /// (each stage's duration includes everything beneath it); the metrics
    /// layer turns them into histogram updates and a flight-recorder
    /// [`JobTrace`].
    pub spans: Vec<SpanRecord>,
    /// Where [`emit_progress`](Self::emit_progress) delivers, when anyone
    /// is listening: the submitter's handle or transport session, plus —
    /// for a dedup executor — every coalesced waiter.
    pub(crate) progress: Option<crate::service::ProgressSink>,
    /// The submitter's cooperative cancellation token (see
    /// [`cancelled`](Self::cancelled)). `None` for contexts built outside
    /// the worker loop.
    pub(crate) cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
    /// The service's checkpoint policy, when durability is configured
    /// ([`crate::CloudServiceBuilder::checkpoint_store`]).
    pub(crate) checkpoint: Option<crate::checkpoint::CheckpointConfig>,
    /// The shared lifecycle counters (epochs trained, checkpoints written,
    /// resumes), so the trainer can account without a metrics layer above.
    pub(crate) metrics: Option<Arc<ServiceMetrics>>,
}

impl JobContext {
    /// A fresh context for one dequeued job.
    pub fn new(job_id: u64, queue_depth_at_submit: usize) -> JobContext {
        JobContext {
            job_id,
            queue_depth_at_submit,
            bytes_received: 0,
            job: None,
            model: None,
            observer: None,
            api_key: None,
            session: SessionKey::Anonymous(0),
            submitted_at: Instant::now(),
            content_address: None,
            trace: TraceId::NONE,
            record_spans: false,
            queue_wait_us: 0,
            spans: Vec::new(),
            progress: None,
            cancel: None,
            checkpoint: None,
            metrics: None,
        }
    }

    /// Whether the submitter has cancelled this job. The trainer polls this
    /// at every epoch boundary and resolves with
    /// [`CloudError::Cancelled`]; middleware
    /// may poll it too to shed work early.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Emits one per-epoch progress update toward whoever is listening —
    /// the submitting handle, the transport session (protocol ≥ 2 peers
    /// only), and every dedup-coalesced waiter. Advisory and lossless in
    /// accounting: every emission is counted, and ends up either delivered
    /// or dropped (see [`crate::ServiceStats::progress_frames_emitted`]).
    ///
    /// Returns `false` when *no* consumer of this job's final result is
    /// reachable any more — the handle was dropped, the connection died,
    /// and every coalesced waiter with them. The trainer treats that as
    /// abandonment: it stops at the next epoch boundary with
    /// [`CloudError::Cancelled`], keeping
    /// its checkpoint so a resubmission resumes rather than recomputes.
    /// Contexts with no progress sink at all report `true` (nothing is
    /// known about the consumer, so the job runs to completion).
    pub fn emit_progress(&self, update: crate::ProgressUpdate) -> bool {
        match &self.progress {
            Some(sink) => sink.emit(update),
            None => true,
        }
    }
}

/// Saturating microseconds of a [`Duration`].
pub(crate) fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One stage of the cloud's processing pipeline.
///
/// Implementations either transform/inspect and delegate to an inner
/// service, or (innermost) do the actual work.
pub trait JobService: Send + Sync {
    /// Processes one job.
    ///
    /// # Errors
    ///
    /// Returns the stage's own [`CloudError`] or propagates the inner one.
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError>;
}

/// A factory wrapping an inner [`JobService`] with one middleware stage
/// (Tower's `Layer`, monomorphised to boxed services).
pub trait CloudLayer: Send + Sync {
    /// Wraps `inner`, returning the composed service.
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService>;

    /// Short name for diagnostics (`"decode"`, `"metrics"`, …).
    fn name(&self) -> &'static str;
}

/// Composes [`CloudLayer`]s into one service. Layers added first sit
/// **outermost**: requests traverse them in insertion order.
#[derive(Default)]
pub struct ServiceBuilder {
    layers: Vec<Box<dyn CloudLayer>>,
}

impl ServiceBuilder {
    /// An empty stack.
    pub fn new() -> ServiceBuilder {
        ServiceBuilder { layers: Vec::new() }
    }

    /// Adds a layer inside all previously added ones.
    #[must_use]
    pub fn layer(mut self, layer: impl CloudLayer + 'static) -> ServiceBuilder {
        self.layers.push(Box::new(layer));
        self
    }

    /// Adds an already-boxed layer inside all previously added ones.
    #[must_use]
    pub fn layer_boxed(mut self, layer: Box<dyn CloudLayer>) -> ServiceBuilder {
        self.layers.push(layer);
        self
    }

    /// The stack's layer names, outermost first.
    pub fn names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Wraps `innermost` with every layer, outermost-first composition.
    pub fn service(self, innermost: Box<dyn JobService>) -> Box<dyn JobService> {
        self.layers
            .into_iter()
            .rev()
            .fold(innermost, |inner, layer| layer.wrap(inner))
    }
}

impl std::fmt::Debug for ServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceBuilder")
            .field("layers", &self.names())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

/// Decodes the wire payload into a [`CloudJob`] + [`GraphModel`] and stores
/// both in the context for the layers beneath.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeLayer;

struct DecodeSvc {
    inner: Box<dyn JobService>,
}

impl CloudLayer for DecodeLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(DecodeSvc { inner })
    }

    fn name(&self) -> &'static str {
        "decode"
    }
}

impl JobService for DecodeSvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        ctx.bytes_received = payload.len();
        let job = CloudJob::from_bytes(payload.clone())?;
        let model = GraphModel::from_bytes(job.model.clone())
            .map_err(|e| CloudError::Decode(e.to_string()))?;
        ctx.job = Some(job);
        ctx.model = Some(model);
        self.inner.call(ctx, payload)
    }
}

// ---------------------------------------------------------------------------
// Validate
// ---------------------------------------------------------------------------

/// Rejects malformed jobs (the `BadJob` checks, out of the trainer's path).
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidateLayer;

struct ValidateSvc {
    inner: Box<dyn JobService>,
}

impl CloudLayer for ValidateLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(ValidateSvc { inner })
    }

    fn name(&self) -> &'static str {
        "validate"
    }
}

impl JobService for ValidateSvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        let job = ctx.job.as_ref().ok_or_else(|| {
            CloudError::BadJob("validate layer needs a decode layer above it".into())
        })?;
        let model = ctx.model.as_ref().ok_or_else(|| {
            CloudError::BadJob("validate layer needs a decode layer above it".into())
        })?;
        if model.outputs().is_empty() {
            return Err(CloudError::BadJob("model declares no outputs".into()));
        }
        match &job.task {
            TaskPayload::Classification {
                inputs,
                labels,
                val_inputs,
                val_labels,
            } => {
                let Some(&batch) = inputs.dims().first() else {
                    return Err(CloudError::BadJob(
                        "classification inputs must be batched".into(),
                    ));
                };
                if batch != labels.len() {
                    return Err(CloudError::BadJob("label count mismatch".into()));
                }
                if let Some(v) = val_inputs {
                    let Some(&val_batch) = v.dims().first() else {
                        return Err(CloudError::BadJob(
                            "validation inputs must be batched".into(),
                        ));
                    };
                    if val_batch != val_labels.len() {
                        return Err(CloudError::BadJob("validation label count mismatch".into()));
                    }
                }
            }
            TaskPayload::LanguageModel { head_keeps, .. } => {
                if head_keeps.len() != model.outputs().len() {
                    return Err(CloudError::BadJob("one keep list per head required".into()));
                }
            }
        }
        self.inner.call(ctx, payload)
    }
}

// ---------------------------------------------------------------------------
// Observer tap
// ---------------------------------------------------------------------------

/// Feeds everything the cloud legitimately sees to a [`CloudObserver`] —
/// the honest-but-curious provider as a middleware stage instead of a
/// parameter threaded through the training loops.
pub struct ObserverLayer {
    observer: Arc<Mutex<dyn CloudObserver>>,
}

impl ObserverLayer {
    /// A tap feeding `observer`.
    pub fn new(observer: Arc<Mutex<dyn CloudObserver>>) -> ObserverLayer {
        ObserverLayer { observer }
    }
}

impl std::fmt::Debug for ObserverLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ObserverLayer")
    }
}

struct ObserverSvc {
    observer: Arc<Mutex<dyn CloudObserver>>,
    inner: Box<dyn JobService>,
}

impl CloudLayer for ObserverLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(ObserverSvc {
            observer: Arc::clone(&self.observer),
            inner,
        })
    }

    fn name(&self) -> &'static str {
        "observer"
    }
}

impl JobService for ObserverSvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        if let Some(model) = ctx.model.as_ref() {
            self.observer.lock().on_model(model);
        }
        ctx.observer = Some(Arc::clone(&self.observer));
        let result = self.inner.call(ctx, payload);
        if let Ok(r) = &result {
            self.observer.lock().on_result(r);
        }
        result
    }
}

// ---------------------------------------------------------------------------
// Per-stage timing
// ---------------------------------------------------------------------------

/// Wraps another layer so every call through it is timed as one
/// [`SpanRecord`] (stage from the layer's [`CloudLayer::name`]). The timer
/// sits *outside* the wrapped layer's service, so a span's duration is
/// inclusive — the layer plus everything beneath it — and the strictly
/// nested spans let the metrics layer recover per-stage self times by
/// subtraction, without a second clock read per layer.
pub struct TimedLayer {
    inner: Box<dyn CloudLayer>,
}

impl TimedLayer {
    /// Times every call through `layer`.
    pub fn new(layer: Box<dyn CloudLayer>) -> TimedLayer {
        TimedLayer { inner: layer }
    }

    /// Wraps a bare service (no layer) as `stage` — used for the innermost
    /// trainer, which is a service rather than a layer.
    pub(crate) fn wrap_service(stage: Stage, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(TimedSvc { stage, inner })
    }
}

impl std::fmt::Debug for TimedLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedLayer")
            .field("layer", &self.inner.name())
            .finish()
    }
}

impl CloudLayer for TimedLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(TimedSvc {
            stage: Stage::from_layer_name(self.inner.name()),
            inner: self.inner.wrap(inner),
        })
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

struct TimedSvc {
    stage: Stage,
    inner: Box<dyn JobService>,
}

impl JobService for TimedSvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        if !ctx.record_spans {
            return self.inner.call(ctx, payload);
        }
        let start_us = duration_us(ctx.submitted_at.elapsed());
        let t0 = Instant::now();
        let result = self.inner.call(ctx, payload);
        ctx.spans.push(SpanRecord {
            stage: self.stage,
            start_us,
            dur_us: duration_us(t0.elapsed()),
            ok: result.is_ok(),
        });
        result
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Records per-job latency, bytes in/out and outcome counters into the
/// shared [`ServiceMetrics`] (snapshot via [`crate::CloudService::stats`]).
pub struct MetricsLayer {
    metrics: Arc<ServiceMetrics>,
}

impl MetricsLayer {
    /// A recorder writing into `metrics`.
    pub fn new(metrics: Arc<ServiceMetrics>) -> MetricsLayer {
        MetricsLayer { metrics }
    }
}

impl std::fmt::Debug for MetricsLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsLayer")
    }
}

struct MetricsSvc {
    metrics: Arc<ServiceMetrics>,
    inner: Box<dyn JobService>,
}

impl CloudLayer for MetricsLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(MetricsSvc {
            metrics: Arc::clone(&self.metrics),
            inner,
        })
    }

    fn name(&self) -> &'static str {
        "metrics"
    }
}

impl JobService for MetricsSvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        let bytes_in = payload.len();
        let t0 = Instant::now();
        let _in_flight = self.metrics.job_started();
        let result = self.inner.call(ctx, payload);
        let elapsed = t0.elapsed();
        self.metrics.job_finished(bytes_in, &result, elapsed);
        self.metrics.session_finished(&ctx.session, &result);
        if ctx.record_spans {
            self.finalize_trace(ctx, result.is_ok());
        }
        result
    }
}

impl MetricsSvc {
    /// Turns the job's span stack into histogram updates and one
    /// flight-recorder [`JobTrace`]. Spans arrive innermost-first and are
    /// strictly nested, so stage *self* time is each span's duration minus
    /// the one inside it; the trace stores them outermost-first with the
    /// queue wait in front.
    fn finalize_trace(&self, ctx: &mut JobContext, ok: bool) {
        let tel = self.metrics.telemetry();
        tel.record(Stage::QueueWait, Duration::from_micros(ctx.queue_wait_us));
        let mut inner_us = 0u64;
        for span in &ctx.spans {
            if tel.enabled() {
                tel.hist(span.stage)
                    .record(span.dur_us.saturating_sub(inner_us));
            }
            inner_us = span.dur_us;
        }
        let mut spans = Vec::with_capacity(ctx.spans.len() + 1);
        spans.push(SpanRecord {
            stage: Stage::QueueWait,
            start_us: 0,
            dur_us: ctx.queue_wait_us,
            ok: true,
        });
        spans.extend(ctx.spans.iter().rev().copied());
        tel.recorder().push(JobTrace {
            trace: ctx.trace,
            job_id: ctx.job_id,
            // Same clock the spans' offsets are measured against, so no
            // span can end past the total (scheduler preemption between
            // two different clock reads used to allow exactly that).
            total_us: duration_us(ctx.submitted_at.elapsed()),
            ok,
            spans,
        });
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Sheds load: jobs submitted while more than `max_queue_depth` jobs were
/// already waiting are answered with [`CloudError::Overloaded`] instead of
/// being trained.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionLayer {
    max_queue_depth: usize,
}

impl AdmissionLayer {
    /// Rejects jobs that found more than `max_queue_depth` jobs queued.
    pub fn new(max_queue_depth: usize) -> AdmissionLayer {
        AdmissionLayer { max_queue_depth }
    }
}

struct AdmissionSvc {
    max_queue_depth: usize,
    inner: Box<dyn JobService>,
}

impl CloudLayer for AdmissionLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(AdmissionSvc {
            max_queue_depth: self.max_queue_depth,
            inner,
        })
    }

    fn name(&self) -> &'static str {
        "admission"
    }
}

impl JobService for AdmissionSvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        if ctx.queue_depth_at_submit > self.max_queue_depth {
            return Err(CloudError::Overloaded {
                queue_depth: ctx.queue_depth_at_submit,
                max_queue_depth: self.max_queue_depth,
            });
        }
        self.inner.call(ctx, payload)
    }
}

// ---------------------------------------------------------------------------
// API-key auth
// ---------------------------------------------------------------------------

/// Refuses jobs whose session key is missing or unknown, while the payload
/// is still the raw framed bytes — an unauthenticated upload is never
/// decoded, validated or trained.
///
/// The key itself is session state (the transport handshake, or
/// [`crate::CloudClient::with_api_key`] in-process), not payload bytes, so
/// one check covers every job of a connection without re-parsing frames.
pub struct ApiKeyLayer {
    keys: Arc<std::collections::HashSet<String>>,
}

impl ApiKeyLayer {
    /// Accepts exactly the given keys.
    pub fn new<I, S>(keys: I) -> ApiKeyLayer
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ApiKeyLayer {
            keys: Arc::new(keys.into_iter().map(Into::into).collect()),
        }
    }
}

impl std::fmt::Debug for ApiKeyLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApiKeyLayer")
            .field("keys", &self.keys.len())
            .finish()
    }
}

struct ApiKeySvc {
    keys: Arc<std::collections::HashSet<String>>,
    inner: Box<dyn JobService>,
}

impl CloudLayer for ApiKeyLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(ApiKeySvc {
            keys: Arc::clone(&self.keys),
            inner,
        })
    }

    fn name(&self) -> &'static str {
        "auth"
    }
}

impl JobService for ApiKeySvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        match ctx.api_key.as_deref() {
            Some(key) if self.keys.contains(key) => self.inner.call(ctx, payload),
            Some(_) => Err(CloudError::Unauthorized("unknown API key".into())),
            None => Err(CloudError::Unauthorized("no API key presented".into())),
        }
    }
}

// ---------------------------------------------------------------------------
// Panic catching
// ---------------------------------------------------------------------------

/// Converts panics anywhere beneath it into [`CloudError::Panicked`], so a
/// poisoned job cannot take a worker thread down with it.
#[derive(Debug, Clone, Copy, Default)]
pub struct PanicLayer;

struct PanicSvc {
    inner: Box<dyn JobService>,
}

impl CloudLayer for PanicLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(PanicSvc { inner })
    }

    fn name(&self) -> &'static str {
        "panic"
    }
}

impl JobService for PanicSvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        match catch_unwind(AssertUnwindSafe(|| self.inner.call(ctx, payload))) {
            Ok(result) => result,
            Err(cause) => Err(CloudError::Panicked(panic_message(&*cause))),
        }
    }
}

fn panic_message(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = cause.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = cause.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Innermost test service that echoes a fixed result.
    struct Probe;

    impl JobService for Probe {
        fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
            Ok(JobResult {
                job_id: ctx.job_id,
                trained_model: payload,
                history: amalgam_nn::metrics::History::new(),
                bytes_received: ctx.bytes_received,
                bytes_sent: 0,
                train_seconds: 0.0,
            })
        }
    }

    struct TagLayer(&'static str, Arc<Mutex<Vec<&'static str>>>);
    struct TagSvc(
        &'static str,
        Arc<Mutex<Vec<&'static str>>>,
        Box<dyn JobService>,
    );

    impl CloudLayer for TagLayer {
        fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
            Box::new(TagSvc(self.0, Arc::clone(&self.1), inner))
        }
        fn name(&self) -> &'static str {
            self.0
        }
    }

    impl JobService for TagSvc {
        fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
            self.1.lock().push(self.0);
            self.2.call(ctx, payload)
        }
    }

    #[test]
    fn layers_run_outside_in_insertion_order() {
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let svc = ServiceBuilder::new()
            .layer(TagLayer("outer", Arc::clone(&order)))
            .layer(TagLayer("middle", Arc::clone(&order)))
            .layer(TagLayer("inner", Arc::clone(&order)))
            .service(Box::new(Probe));
        let mut ctx = JobContext::new(1, 0);
        svc.call(&mut ctx, Bytes::new()).unwrap();
        assert_eq!(*order.lock(), vec!["outer", "middle", "inner"]);
    }

    #[test]
    fn panic_layer_converts_unwind_to_error() {
        struct Bomb;
        impl JobService for Bomb {
            fn call(&self, _: &mut JobContext, _: Bytes) -> Result<JobResult, CloudError> {
                panic!("kaboom {}", 7);
            }
        }
        let svc = ServiceBuilder::new()
            .layer(PanicLayer)
            .service(Box::new(Bomb));
        let mut ctx = JobContext::new(2, 0);
        match svc.call(&mut ctx, Bytes::new()) {
            Err(CloudError::Panicked(msg)) => assert!(msg.contains("kaboom 7"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn admission_layer_sheds_deep_queues() {
        let svc = ServiceBuilder::new()
            .layer(AdmissionLayer::new(2))
            .service(Box::new(Probe));
        let mut shallow = JobContext::new(3, 2);
        assert!(svc.call(&mut shallow, Bytes::new()).is_ok());
        let mut deep = JobContext::new(4, 3);
        assert!(matches!(
            svc.call(&mut deep, Bytes::new()),
            Err(CloudError::Overloaded {
                queue_depth: 3,
                max_queue_depth: 2
            })
        ));
    }

    #[test]
    fn api_key_layer_gates_on_session_key() {
        let svc = ServiceBuilder::new()
            .layer(ApiKeyLayer::new(["secret-1", "secret-2"]))
            .service(Box::new(Probe));
        // No key.
        let mut ctx = JobContext::new(7, 0);
        assert!(matches!(
            svc.call(&mut ctx, Bytes::new()),
            Err(CloudError::Unauthorized(_))
        ));
        // Wrong key.
        let mut ctx = JobContext::new(8, 0);
        ctx.api_key = Some(Arc::from("nope"));
        assert!(matches!(
            svc.call(&mut ctx, Bytes::new()),
            Err(CloudError::Unauthorized(_))
        ));
        // Known key.
        let mut ctx = JobContext::new(9, 0);
        ctx.api_key = Some(Arc::from("secret-2"));
        assert!(svc.call(&mut ctx, Bytes::new()).is_ok());
    }

    #[test]
    fn validate_layer_requires_decode_above() {
        let svc = ServiceBuilder::new()
            .layer(ValidateLayer)
            .service(Box::new(Probe));
        let mut ctx = JobContext::new(5, 0);
        assert!(matches!(
            svc.call(&mut ctx, Bytes::new()),
            Err(CloudError::BadJob(_))
        ));
    }
}
