//! The worker pool, the client handle, and the innermost training service.

use crate::builder::CloudServiceBuilder;
use crate::cache::{DedupReply, DedupShared, SubmitDecision};
use crate::checkpoint::{Checkpoint, CheckpointConfig};
use crate::hash::ContentAddress;
use crate::metrics::{ServiceMetrics, ServiceStats};
use crate::middleware::{duration_us, JobContext, JobService, SessionKey, TimedLayer};
use crate::observer::{CloudObserver, NullObserver};
use crate::protocol::{CloudJob, JobResult, ProgressUpdate, TaskPayload};
use crate::queue::FairDispatcher;
use crate::telemetry::{Stage, Telemetry, TraceId};
use crate::CloudError;
use amalgam_core::trainer::{epoch_rng, lm_head_loss};
use amalgam_data::BatchIter;
use amalgam_nn::graph::GraphModel;
use amalgam_nn::loss::cross_entropy;
use amalgam_nn::metrics::{accuracy, History, RunningMean};
use amalgam_nn::optim::Sgd;
use amalgam_nn::Mode;
use amalgam_tensor::Tensor;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a finished job's outcome goes.
///
/// In-process handles get a dedicated channel per job; transport sessions
/// multiplex every job of one connection onto a single channel, tagged with
/// the session's request id, so one writer thread can serve any number of
/// out-of-order completions.
pub(crate) enum ReplySink {
    /// Dedicated channels, consumed by a [`JobHandle`]: one for the final
    /// outcome, one for advisory progress frames.
    Handle {
        reply: Sender<Result<JobResult, CloudError>>,
        progress: Sender<ProgressUpdate>,
    },
    /// A shared per-connection channel back to the owning reactor; `tag` is
    /// the wire request id.
    Routed { tag: u64, tx: RoutedSender },
    /// The executor of a deduplicated address: delivers to the primary
    /// sink *and* fans the outcome out to every coalesced waiter (see
    /// [`crate::cache`]).
    Dedup(Box<DedupReply>),
}

impl ReplySink {
    pub(crate) fn send(&self, result: Result<JobResult, CloudError>) {
        match self {
            ReplySink::Handle { reply, .. } => {
                let _ = reply.send(result);
            }
            ReplySink::Routed { tag, tx } => tx.send(*tag, result),
            ReplySink::Dedup(reply) => reply.resolve(result),
        }
    }

    /// Forwards one progress frame toward this sink's consumer, keeping the
    /// conservation law honest: every call bumps `emitted` (per `session`),
    /// and the frame ends up counted exactly once as delivered or dropped —
    /// here for in-process sinks, in the owning event loop for routed ones.
    ///
    /// Returns whether anyone could still receive this execution's *final
    /// result*: `false` means every consumer is gone — the submitting
    /// handle dropped, the transport connection closed, and (for a dedup
    /// executor) every coalesced waiter with them. The trainer treats that
    /// as abandonment and cancels itself at the next epoch boundary,
    /// keeping its checkpoint so a resubmission resumes instead of
    /// recomputing.
    pub(crate) fn send_progress(
        &self,
        update: ProgressUpdate,
        session: &SessionKey,
        metrics: &ServiceMetrics,
    ) -> bool {
        match self {
            ReplySink::Handle { progress, .. } => {
                metrics.progress_frame_emitted(session);
                if progress.send(update).is_ok() {
                    metrics.progress_frame_delivered();
                    true
                } else {
                    metrics.progress_frame_dropped();
                    false
                }
            }
            ReplySink::Routed { tag, tx } => {
                metrics.progress_frame_emitted(session);
                if tx.send_progress(*tag, update) {
                    // Channel alive: the conn's pump delivers (protocol ≥ 2)
                    // or drops (v1) — either way the reply is deliverable.
                    true
                } else {
                    // The connection's channel is gone; the pump will never
                    // see this frame, so account the drop at the send site.
                    metrics.progress_frame_dropped();
                    false
                }
            }
            ReplySink::Dedup(reply) => reply.send_progress(update, session, metrics),
        }
    }
}

/// The submitter-side cancellation token: one shared flag per *execution*.
/// Dedup-coalesced waiters share their executor's flag, so any waiter's
/// cancel stops the one underlying run (and every waiter then receives
/// [`CloudError::Cancelled`]).
pub(crate) type CancelFlag = Arc<AtomicBool>;

/// One message on a transport session's multiplexed outbound channel.
pub(crate) enum RoutedMsg {
    /// The request's one final outcome; frees its in-flight slot.
    Reply(Result<JobResult, CloudError>),
    /// An advisory per-epoch progress frame (sent to protocol ≥ 2 peers
    /// only); never touches in-flight accounting.
    Progress(ProgressUpdate),
}

/// Where a worker delivers per-epoch progress: the submitter's sink (which
/// fans out to coalesced waiters for dedup executors), stamped with the
/// executing session for per-session accounting.
pub(crate) struct ProgressSink {
    pub(crate) reply: Arc<ReplySink>,
    pub(crate) session: SessionKey,
    pub(crate) metrics: Arc<ServiceMetrics>,
}

impl ProgressSink {
    /// Emits one update; `false` means the execution is abandoned (see
    /// [`ReplySink::send_progress`]).
    pub(crate) fn emit(&self, update: ProgressUpdate) -> bool {
        self.reply
            .send_progress(update, &self.session, &self.metrics)
    }
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink")
            .field("session", &self.session)
            .finish()
    }
}

/// The transport's multiplexed reply path: a per-connection completion
/// channel plus a wake callback. Workers (and the dedup fan-out, and the
/// shutdown drain) finish jobs on their own threads; the callback flags the
/// owning connection as having replies pending and interrupts its reactor's
/// poll, so completions are flushed promptly instead of waiting for socket
/// activity.
pub(crate) struct RoutedSender {
    tx: Sender<(u64, RoutedMsg)>,
    notify: Arc<dyn Fn() + Send + Sync>,
    /// Cleared by the owning reactor once the peer is gone for good
    /// (abrupt EOF, read error, or the connection closed). The channel
    /// alone can't answer "is anyone listening": a dying connection
    /// lingers in its draining state — holding the receiver — precisely
    /// *until* its in-flight jobs settle, so a trainer probing the channel
    /// would wait on itself forever.
    peer_alive: Arc<AtomicBool>,
}

impl Clone for RoutedSender {
    fn clone(&self) -> RoutedSender {
        RoutedSender {
            tx: self.tx.clone(),
            notify: Arc::clone(&self.notify),
            peer_alive: Arc::clone(&self.peer_alive),
        }
    }
}

impl std::fmt::Debug for RoutedSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutedSender").finish()
    }
}

impl RoutedSender {
    /// Couples a reply channel with the reactor wake-up that flushes it
    /// and the connection's peer-liveness flag.
    pub(crate) fn new(
        tx: Sender<(u64, RoutedMsg)>,
        notify: Arc<dyn Fn() + Send + Sync>,
        peer_alive: Arc<AtomicBool>,
    ) -> RoutedSender {
        RoutedSender {
            tx,
            notify,
            peer_alive,
        }
    }

    /// Posts one completion and wakes the owning reactor.
    pub(crate) fn send(&self, tag: u64, result: Result<JobResult, CloudError>) {
        let _ = self.tx.send((tag, RoutedMsg::Reply(result)));
        (self.notify)();
    }

    /// Posts one progress frame and wakes the owning reactor; `false` if
    /// the peer can never receive another frame — its connection died
    /// abruptly or closed — or the channel itself is gone. On `false` the
    /// frame was not posted, so the caller accounts the drop.
    pub(crate) fn send_progress(&self, tag: u64, update: ProgressUpdate) -> bool {
        if !self.peer_alive.load(Ordering::SeqCst) {
            return false;
        }
        let ok = self.tx.send((tag, RoutedMsg::Progress(update))).is_ok();
        (self.notify)();
        ok
    }
}

/// One accepted submission, queued on its session's FIFO until a worker
/// pops it in DRR order.
pub(crate) struct Envelope {
    id: u64,
    queue_depth_at_submit: usize,
    submitted_at: Instant,
    session: SessionKey,
    payload: Bytes,
    auth: Option<Arc<str>>,
    /// End-to-end trace id: minted at the submit boundary for in-process
    /// jobs, carried in from the wire for protocol-v2 transport submits.
    trace: TraceId,
    /// The payload's content address when dedup or checkpointing is
    /// enabled — what the in-stack [`crate::DedupLayer`] caches a
    /// successful result under, and what checkpoints are keyed by.
    content_address: Option<ContentAddress>,
    /// The submitter's cancellation token, polled at epoch boundaries.
    cancel: CancelFlag,
    /// Shared (not owned) so the job's [`ProgressSink`] can stream through
    /// the same sink the final outcome will use.
    reply: Arc<ReplySink>,
}

/// The simulated cloud: a middleware stack served by a pool of worker
/// threads draining per-session queues by deficit round robin.
#[derive(Debug)]
pub struct CloudService {
    workers: Vec<std::thread::JoinHandle<()>>,
    queue: Arc<FairDispatcher<Envelope>>,
    closed: Arc<AtomicBool>,
    metrics: Arc<ServiceMetrics>,
    next_id: Arc<AtomicU64>,
    next_session: Arc<AtomicU64>,
    dedup: Option<Arc<DedupShared>>,
    /// Whether a checkpoint store is configured — submits then stamp a
    /// content address even without dedup, so checkpoints have a key.
    checkpointing: bool,
    /// The accepted API keys, kept for the transport's `GetStats`
    /// authorization check (the in-stack copy is consumed by `assemble`).
    api_keys: Option<Arc<[String]>>,
    /// Where the transport should serve Prometheus metrics, if anywhere.
    metrics_exporter: Option<SocketAddr>,
}

impl CloudService {
    /// A single-worker service with the default stack and no adversary.
    pub fn start() -> CloudService {
        CloudService::builder().build()
    }

    /// A single-worker service whose traffic feeds `observer` — the attack
    /// experiments' entry point.
    pub fn start_with_observer(observer: Arc<Mutex<dyn CloudObserver>>) -> CloudService {
        CloudService::builder().observer(observer).build()
    }

    /// Configures workers, observer, admission control and custom layers.
    pub fn builder() -> CloudServiceBuilder {
        CloudServiceBuilder::new()
    }

    pub(crate) fn from_builder(mut builder: CloudServiceBuilder) -> CloudService {
        let metrics = Arc::new(ServiceMetrics::with_telemetry(&builder.telemetry));
        // `assemble` consumes the in-stack API-key list; keep a copy for the
        // transport's GetStats authorization check.
        let api_keys = builder
            .api_keys
            .clone()
            .map(|keys| Arc::from(keys.into_boxed_slice()));
        let metrics_exporter = builder.metrics_exporter;
        let timed = builder.telemetry.enabled;
        let (stack, dedup) = builder.assemble(Arc::clone(&metrics));
        let trainer: Box<dyn JobService> = if timed {
            TimedLayer::wrap_service(Stage::Train, Box::new(TrainService))
        } else {
            Box::new(TrainService)
        };
        let service: Arc<dyn JobService> = Arc::from(stack.service(trainer));
        let queue = Arc::new(FairDispatcher::new(std::mem::take(
            &mut builder.session_weights,
        )));
        let checkpoint = builder
            .checkpoint_store
            .take()
            .map(|store| CheckpointConfig {
                store,
                every: builder.checkpoint_every,
            });
        let checkpointing = checkpoint.is_some();
        let workers = (0..builder.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let service = Arc::clone(&service);
                let metrics = Arc::clone(&metrics);
                let checkpoint = checkpoint.clone();
                std::thread::Builder::new()
                    .name(format!("cloud-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &*service, &metrics, checkpoint))
                    .expect("spawn cloud worker")
            })
            .collect();
        CloudService {
            workers,
            queue,
            closed: Arc::new(AtomicBool::new(false)),
            metrics,
            next_id: Arc::new(AtomicU64::new(0)),
            next_session: Arc::new(AtomicU64::new(0)),
            dedup,
            checkpointing,
            api_keys,
            metrics_exporter,
        }
    }

    /// A client handle; cloneable and usable from any thread. Each call
    /// mints a fresh anonymous [`SessionKey`] — clones of the returned
    /// handle share it, separate `client()` calls do not.
    pub fn client(&self) -> CloudClient {
        CloudClient {
            queue: Arc::clone(&self.queue),
            closed: Arc::clone(&self.closed),
            metrics: Arc::clone(&self.metrics),
            next_id: Arc::clone(&self.next_id),
            next_session: Arc::clone(&self.next_session),
            session: SessionKey::Anonymous(self.next_session.fetch_add(1, Ordering::Relaxed)),
            api_key: None,
            dedup: self.dedup.clone(),
            checkpointing: self.checkpointing,
        }
    }

    /// The shared telemetry sink (the transport server folds its counters
    /// into the same instance `stats()` snapshots).
    pub(crate) fn metrics_arc(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The API keys a `GetStats` requester may authorize with (`None` when
    /// the service accepts anonymous sessions).
    pub(crate) fn api_keys(&self) -> Option<Arc<[String]>> {
        self.api_keys.clone()
    }

    /// Where the transport server should bind the Prometheus exporter.
    pub(crate) fn metrics_exporter_addr(&self) -> Option<SocketAddr> {
        self.metrics_exporter
    }

    /// Point-in-time telemetry: latency, throughput, bytes, queue depth.
    pub fn stats(&self) -> ServiceStats {
        self.metrics.snapshot()
    }

    /// The service's telemetry plane: per-stage latency histograms and the
    /// flight recorder (look a job up by its trace id after the fact).
    pub fn telemetry(&self) -> &Telemetry {
        self.metrics.telemetry()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Graceful shutdown: already-queued jobs are drained and answered,
    /// then every worker exits and is joined.
    pub fn shutdown(mut self) {
        self.shutdown_and_join();
    }

    /// One shutdown path shared by [`shutdown`](Self::shutdown) and `Drop`:
    /// refuse new submissions, close the queue (workers drain the backlog
    /// in DRR order, then exit), join, then answer any envelope the workers
    /// never reached (jobs stranded behind a worker that died with
    /// `catch_panics(false)`). Idempotent, because `workers` is drained.
    fn shutdown_and_join(&mut self) {
        self.closed.store(true, Ordering::SeqCst);
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        for envelope in self.queue.drain() {
            self.metrics.job_dequeued();
            self.metrics.session_dispatched(&envelope.session);
            envelope.reply.send(Err(CloudError::ServiceUnavailable));
        }
    }
}

impl Drop for CloudService {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn worker_loop(
    queue: &FairDispatcher<Envelope>,
    service: &dyn JobService,
    metrics: &Arc<ServiceMetrics>,
    checkpoint: Option<CheckpointConfig>,
) {
    let record_spans = metrics.telemetry().enabled();
    while let Some(envelope) = queue.pop() {
        metrics.job_dequeued();
        metrics.session_dispatched(&envelope.session);
        let mut ctx = JobContext::new(envelope.id, envelope.queue_depth_at_submit);
        ctx.api_key = envelope.auth;
        ctx.session = envelope.session;
        ctx.submitted_at = envelope.submitted_at;
        ctx.content_address = envelope.content_address;
        ctx.trace = envelope.trace;
        ctx.record_spans = record_spans;
        ctx.progress = Some(ProgressSink {
            reply: Arc::clone(&envelope.reply),
            session: ctx.session.clone(),
            metrics: Arc::clone(metrics),
        });
        ctx.cancel = Some(Arc::clone(&envelope.cancel));
        ctx.checkpoint = checkpoint.clone();
        ctx.metrics = Some(Arc::clone(metrics));
        // Stamped last: everything between dequeue and dispatch counts as
        // queue wait, so no span can start before the total's clock does.
        if record_spans {
            ctx.queue_wait_us = duration_us(envelope.submitted_at.elapsed());
        }
        let result = service.call(&mut ctx, envelope.payload);
        envelope.reply.send(result);
    }
}

/// Client handle for submitting jobs to a [`CloudService`].
///
/// Each handle is one *session* for rate limiting and fair scheduling:
/// clones share the session, separate [`CloudService::client`] calls get
/// fresh ones, and [`with_api_key`](Self::with_api_key) re-keys the session
/// onto the API key (shared with every other holder of that key).
#[derive(Debug, Clone)]
pub struct CloudClient {
    queue: Arc<FairDispatcher<Envelope>>,
    closed: Arc<AtomicBool>,
    metrics: Arc<ServiceMetrics>,
    next_id: Arc<AtomicU64>,
    next_session: Arc<AtomicU64>,
    session: SessionKey,
    api_key: Option<Arc<str>>,
    dedup: Option<Arc<DedupShared>>,
    checkpointing: bool,
}

impl CloudClient {
    /// Stamps every job submitted through this handle with `key` — what an
    /// [`crate::ApiKeyLayer`] in the stack checks. Transport sessions get
    /// their key from the connection handshake instead. The key also
    /// becomes the handle's [`SessionKey`] for scheduling and rate
    /// limiting.
    #[must_use]
    pub fn with_api_key(mut self, key: impl Into<String>) -> CloudClient {
        let key: Arc<str> = Arc::from(key.into().into_boxed_str());
        self.session = SessionKey::ApiKey(Arc::clone(&key));
        self.api_key = Some(key);
        self
    }

    /// A clone bound to a fresh transport session's identity: the key from
    /// the connection handshake if one was presented, a new anonymous
    /// session otherwise.
    pub(crate) fn for_transport_session(&self, auth: Option<Arc<str>>) -> CloudClient {
        let mut client = self.clone();
        client.session = match &auth {
            Some(key) => SessionKey::ApiKey(Arc::clone(key)),
            None => SessionKey::Anonymous(self.next_session.fetch_add(1, Ordering::Relaxed)),
        };
        client.api_key = auth;
        client
    }

    /// This handle's scheduling/rate-limiting identity.
    pub(crate) fn session_key(&self) -> &SessionKey {
        &self.session
    }
    /// Uploads a job (serializing it — this is the trust boundary) and
    /// returns a handle to the in-flight work.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::ServiceUnavailable`] if the service is gone.
    pub fn submit(&self, job: &CloudJob) -> Result<JobHandle, CloudError> {
        self.submit_payload(job.to_bytes())
    }

    /// Uploads an already-serialized payload.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::ServiceUnavailable`] if the service is gone.
    pub fn submit_payload(&self, payload: Bytes) -> Result<JobHandle, CloudError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(CloudError::ServiceUnavailable);
        }
        let (reply_tx, reply_rx) = unbounded();
        let (progress_tx, progress_rx) = unbounded();
        let (id, cancel) = self.enqueue(
            payload,
            ReplySink::Handle {
                reply: reply_tx,
                progress: progress_tx,
            },
            TraceId::NONE,
        )?;
        Ok(JobHandle {
            id,
            rx: reply_rx,
            progress_rx,
            cancel,
            done: None,
        })
    }

    /// Submits a payload whose outcome is multiplexed onto a shared reply
    /// channel, tagged with the caller's `tag` (the transport's request
    /// id). Returns the job's cancellation flag so the session can honor a
    /// later `Cancel` frame for the same request id.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::ServiceUnavailable`] if the service is gone.
    pub(crate) fn submit_routed(
        &self,
        payload: Bytes,
        tag: u64,
        replies: RoutedSender,
        trace: TraceId,
    ) -> Result<CancelFlag, CloudError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(CloudError::ServiceUnavailable);
        }
        self.enqueue(payload, ReplySink::Routed { tag, tx: replies }, trace)
            .map(|(_, cancel)| cancel)
    }

    /// The one enqueue path: stamps id, submit instant and session, then
    /// pushes onto the session's queue. Closing the queue and pushing are
    /// mutually exclusive, so a job accepted here is *always* answered:
    /// workers drain the whole backlog before exiting, and the shutdown
    /// drain answers anything a dead worker left behind.
    ///
    /// With dedup enabled ([`CloudServiceBuilder::result_cache`]) the
    /// payload is judged by its content address first: a cache hit or a
    /// coalesced attach is answered through `reply` right here — without
    /// ever entering the queue or occupying a worker — and only the first
    /// submission of an address falls through to an actual enqueue, its
    /// reply wrapped so the one execution also resolves every waiter.
    fn enqueue(
        &self,
        payload: Bytes,
        mut reply: ReplySink,
        trace: TraceId,
    ) -> Result<(u64, CancelFlag), CloudError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Jobs that arrive without a trace (in-process submits, protocol-v1
        // transport sessions) are the trace root: mint the id here so every
        // job is observable, not just remotely-traced ones.
        let trace = if trace.is_none() && self.metrics.telemetry().enabled() {
            TraceId::mint()
        } else {
            trace
        };
        let cancel: CancelFlag = Arc::new(AtomicBool::new(false));
        let mut content_address = None;
        if let Some(dedup) = &self.dedup {
            match dedup.intercept(id, &self.session, &payload, reply, &cancel) {
                // A coalesced attach shares the executor's flag, so any
                // waiter's cancel stops the one underlying run.
                SubmitDecision::Served(shared) => return Ok((id, shared.unwrap_or(cancel))),
                SubmitDecision::Execute(wrapped, addr) => {
                    reply = wrapped;
                    content_address = Some(addr);
                }
            }
        } else if self.checkpointing {
            content_address = Some(ContentAddress::of(&payload));
        }
        let queue_depth_at_submit = self.metrics.job_queued();
        self.metrics
            .session_submitted(&self.session, self.queue.weight_for_session(&self.session));
        let envelope = Envelope {
            id,
            queue_depth_at_submit,
            submitted_at: Instant::now(),
            session: self.session.clone(),
            payload,
            auth: self.api_key.clone(),
            trace,
            content_address,
            cancel: Arc::clone(&cancel),
            reply: Arc::new(reply),
        };
        if self.queue.push(&self.session, envelope).is_err() {
            // The rejected envelope is dropped here; if it was a dedup
            // executor, the drop resolves any waiters that attached in
            // the meantime with `ServiceUnavailable` and clears the slot.
            self.metrics.job_unqueued();
            self.metrics.session_unqueued(&self.session);
            return Err(CloudError::ServiceUnavailable);
        }
        Ok((id, cancel))
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// Propagates submission, decode, validation and training errors.
    pub fn train(&self, job: &CloudJob) -> Result<JobResult, CloudError> {
        self.submit(job)?.wait()
    }
}

/// An in-flight job.
#[derive(Debug)]
pub struct JobHandle {
    id: u64,
    rx: Receiver<Result<JobResult, CloudError>>,
    progress_rx: Receiver<ProgressUpdate>,
    cancel: CancelFlag,
    done: Option<Result<JobResult, CloudError>>,
}

impl JobHandle {
    /// The service-assigned job id (matches [`JobResult::job_id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation. Best-effort and idempotent: the trainer
    /// polls at epoch boundaries, so the job either resolves with
    /// [`CloudError::Cancelled`] (for this handle *and* every
    /// dedup-coalesced waiter of the same content address) or — if it was
    /// already past its last epoch — completes normally. Either way the
    /// handle's `wait` is always answered.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// The next per-epoch progress update received so far, non-blocking;
    /// `None` when no update is pending. Updates stream while the job
    /// trains and stop (without error) once the outcome is ready.
    pub fn try_progress(&self) -> Option<ProgressUpdate> {
        self.progress_rx.try_recv().ok()
    }

    /// Blocking stream of per-epoch progress updates. Yields each update
    /// as it arrives and ends when the job settles (the worker drops its
    /// sender), after which [`wait`](Self::wait) returns immediately.
    pub fn progress(&self) -> impl Iterator<Item = ProgressUpdate> + '_ {
        std::iter::from_fn(move || self.progress_rx.recv().ok())
    }

    /// Blocks until the job finishes.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::ServiceUnavailable`] if the service died with
    /// the job still queued.
    pub fn wait(self) -> Result<JobResult, CloudError> {
        if let Some(done) = self.done {
            return done;
        }
        self.rx.recv().map_err(|_| CloudError::ServiceUnavailable)?
    }

    /// Non-blocking poll: `None` while the job is still running. Once the
    /// outcome is known it is cached, so polling again keeps returning it.
    pub fn try_wait(&mut self) -> Option<Result<JobResult, CloudError>> {
        if self.done.is_none() {
            match self.rx.try_recv() {
                Ok(result) => self.done = Some(result),
                Err(TryRecvError::Empty) => return None,
                Err(TryRecvError::Disconnected) => {
                    self.done = Some(Err(CloudError::ServiceUnavailable));
                }
            }
        }
        self.done.clone()
    }

    /// Blocks at most `timeout`; `None` on timeout, the (cached) outcome
    /// otherwise.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<JobResult, CloudError>> {
        if self.done.is_none() {
            match self.rx.recv_timeout(timeout) {
                Ok(result) => self.done = Some(result),
                Err(RecvTimeoutError::Timeout) => return None,
                Err(RecvTimeoutError::Disconnected) => {
                    self.done = Some(Err(CloudError::ServiceUnavailable));
                }
            }
        }
        self.done.clone()
    }
}

/// The innermost service: Algorithm 1 on the decoded job. Numerically
/// identical to `amalgam_core::trainer::train_image_classifier` (same
/// shuffle source, same loss, same update), so client-side equivalence
/// guarantees carry over — middleware above it never touches tensors.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainService;

impl JobService for TrainService {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        // Stand-alone operation (no decode layer above) decodes here, so a
        // bare `TrainService` is still a complete service.
        if ctx.job.is_none() {
            ctx.bytes_received = payload.len();
            ctx.job = Some(CloudJob::from_bytes(payload)?);
        }
        let job = ctx.job.take().expect("job decoded above");
        let mut model = match ctx.model.take() {
            Some(m) => m,
            None => GraphModel::from_bytes(job.model.clone())
                .map_err(|e| CloudError::Decode(e.to_string()))?,
        };
        let observer = ctx
            .observer
            .clone()
            .unwrap_or_else(|| Arc::new(Mutex::new(NullObserver)) as Arc<Mutex<dyn CloudObserver>>);

        let t0 = std::time::Instant::now();
        let history = match &job.task {
            TaskPayload::Classification {
                inputs,
                labels,
                val_inputs,
                val_labels,
            } => train_classification(
                &mut model,
                inputs,
                labels,
                val_inputs.as_ref().map(|v| (v, val_labels.as_slice())),
                &job.train,
                &observer,
                ctx,
            )?,
            TaskPayload::LanguageModel {
                windows,
                val_windows,
                head_keeps,
            } => train_lm(
                &mut model,
                windows,
                val_windows,
                head_keeps,
                &job.train,
                &observer,
                ctx,
            )?,
        };
        // The job is done: its checkpoint has served its purpose. (Failed
        // and cancelled jobs keep theirs, so a retry resumes.)
        if let (Some(ck), Some(addr)) = (&ctx.checkpoint, ctx.content_address) {
            ck.store.remove(addr);
        }
        let train_seconds = t0.elapsed().as_secs_f64();
        model.clear_caches();
        let trained_model = model.to_bytes();
        Ok(JobResult {
            job_id: ctx.job_id,
            bytes_sent: trained_model.len(),
            trained_model,
            history,
            bytes_received: ctx.bytes_received,
            train_seconds,
        })
    }
}

/// Restores this job's checkpoint, if durability is configured and a valid
/// resumable snapshot exists under the job's content address. Returns the
/// number of already-completed epochs (0 = fresh run). Any snapshot that
/// fails validation — bad checksum, truncation, undecodable model bytes,
/// impossible epoch — is scrubbed from the store and the job recomputes
/// from epoch 0: corruption is loud in the stats but never poisons the
/// store or the result.
fn try_resume(
    ctx: &JobContext,
    model: &mut GraphModel,
    opt: &mut Sgd,
    history: &mut History,
    total_epochs: usize,
) -> usize {
    let (Some(ck), Some(addr)) = (&ctx.checkpoint, ctx.content_address) else {
        return 0;
    };
    let t0 = Instant::now();
    let (cp, rejected) = crate::checkpoint::load_for_resume(&*ck.store, addr, total_epochs as u64);
    if rejected {
        if let Some(m) = &ctx.metrics {
            m.checkpoint_rejected();
        }
    }
    let Some(cp) = cp else { return 0 };
    match GraphModel::from_bytes(cp.model.clone()) {
        Ok(restored) => *model = restored,
        Err(_) => {
            // Bytes that pass the checksum but no longer decode (a model
            // format bump, say): same policy as corruption.
            ck.store.remove(addr);
            if let Some(m) = &ctx.metrics {
                m.checkpoint_rejected();
            }
            return 0;
        }
    }
    opt.set_velocity(cp.velocity);
    *history = cp.history;
    if let Some(m) = &ctx.metrics {
        m.job_resumed();
        m.telemetry().record(Stage::CheckpointRestore, t0.elapsed());
    }
    cp.epoch as usize
}

/// Per-epoch lifecycle epilogue shared by both training loops: counts the
/// epoch, emits one progress frame, and snapshots a checkpoint at the
/// configured cadence. `completed` is 1-based. The final epoch never
/// snapshots — the job is about to finish and delete its entry.
///
/// Returns whether anyone can still receive this job's result (see
/// [`JobContext::emit_progress`]); the loops abandon the run at the next
/// epoch boundary when nobody can.
fn finish_epoch(
    ctx: &JobContext,
    completed: usize,
    total: usize,
    model: &GraphModel,
    opt: &Sgd,
    history: &History,
) -> bool {
    if let Some(m) = &ctx.metrics {
        m.epoch_trained();
    }
    let listening = ctx.emit_progress(ProgressUpdate {
        epoch: completed as u64,
        total_epochs: total as u64,
        train_loss: history.train_loss.last().copied().unwrap_or(f32::NAN),
        train_acc: history.train_acc.last().copied().unwrap_or(0.0),
    });
    let (Some(ck), Some(addr)) = (&ctx.checkpoint, ctx.content_address) else {
        return listening;
    };
    if ck.every == 0 || !completed.is_multiple_of(ck.every as usize) || completed >= total {
        return listening;
    }
    let t0 = Instant::now();
    let cp = Checkpoint {
        epoch: completed as u64,
        model: model.to_bytes(),
        velocity: opt.velocity().to_vec(),
        history: history.clone(),
    };
    ck.store.store(addr, cp.to_bytes());
    if let Some(m) = &ctx.metrics {
        m.checkpoint_written();
        m.telemetry().record(Stage::CheckpointWrite, t0.elapsed());
    }
    listening
}

/// Algorithm 1 with observer hooks, classification tasks.
///
/// # Errors
///
/// Returns [`CloudError::Cancelled`] when the submitter's cancellation
/// flag — or the abandonment of every consumer — is observed at an epoch
/// boundary.
fn train_classification(
    model: &mut GraphModel,
    inputs: &Tensor,
    labels: &[usize],
    val: Option<(&Tensor, &[usize])>,
    cfg: &amalgam_core::TrainConfig,
    observer: &Arc<Mutex<dyn CloudObserver>>,
    ctx: &JobContext,
) -> Result<History, CloudError> {
    let n = labels.len();
    let mut opt = Sgd::new(cfg.lr).with_momentum(cfg.momentum);
    let mut history = History::new();
    // Every epoch's shuffle RNG is a pure function of (seed, epoch), so
    // re-entering the loop at a checkpoint's boundary replays the exact
    // remaining epochs an uninterrupted run would have executed.
    let start = try_resume(ctx, model, &mut opt, &mut history, cfg.epochs);
    let mut listening = true;
    for epoch in start..cfg.epochs {
        if ctx.cancelled() || !listening {
            return Err(CloudError::Cancelled);
        }
        let t0 = std::time::Instant::now();
        let mut rng = epoch_rng(cfg, epoch);
        let mut loss_mean = RunningMean::new();
        let mut acc_mean = RunningMean::new();
        for idx in BatchIter::new(n, cfg.batch_size, &mut rng) {
            let x = inputs.index_select_axis0(&idx);
            let batch_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            observer.lock().on_batch(&x, &batch_labels);
            let outs = model.forward(&[&x], Mode::Train);
            let mut seeds = Vec::with_capacity(outs.len());
            for (h, out) in outs.iter().enumerate() {
                let (loss, grad) = cross_entropy(out, &batch_labels);
                if h == 0 {
                    loss_mean.add(loss, batch_labels.len());
                    acc_mean.add(accuracy(out, &batch_labels), batch_labels.len());
                }
                seeds.push(grad);
            }
            model.zero_grad();
            model.backward(&seeds);
            observer.lock().on_step(model);
            opt.step(&mut model.params_mut());
        }
        history.train_loss.push(loss_mean.mean());
        history.train_acc.push(acc_mean.mean());
        history.epoch_secs.push(t0.elapsed().as_secs_f32());
        if let Some((vx, vl)) = val {
            let outs = model.forward(&[vx], Mode::Eval);
            let (loss, _) = cross_entropy(&outs[0], vl);
            history.val_loss.push(loss);
            history.val_acc.push(accuracy(&outs[0], vl));
            model.clear_caches();
        }
        listening = finish_epoch(ctx, epoch + 1, cfg.epochs, model, &opt, &history);
    }
    Ok(history)
}

/// Algorithm 1 with observer hooks, language-model tasks.
///
/// # Errors
///
/// Returns [`CloudError::Cancelled`] when the submitter's cancellation
/// flag — or the abandonment of every consumer — is observed at an epoch
/// boundary.
fn train_lm(
    model: &mut GraphModel,
    windows: &[Tensor],
    val_windows: &[Tensor],
    head_keeps: &[Vec<usize>],
    cfg: &amalgam_core::TrainConfig,
    observer: &Arc<Mutex<dyn CloudObserver>>,
    ctx: &JobContext,
) -> Result<History, CloudError> {
    let mut opt = Sgd::new(cfg.lr).with_momentum(cfg.momentum);
    let mut history = History::new();
    // The LM loop iterates its windows in order (no shuffle RNG at all),
    // so a resumed run replays the remaining epochs exactly.
    let start = try_resume(ctx, model, &mut opt, &mut history, cfg.epochs);
    let mut listening = true;
    for epoch in start..cfg.epochs {
        if ctx.cancelled() || !listening {
            return Err(CloudError::Cancelled);
        }
        let t0 = std::time::Instant::now();
        let mut loss_mean = RunningMean::new();
        for window in windows {
            observer.lock().on_batch(window, &[]);
            let outs = model.forward(&[window], Mode::Train);
            let mut seeds = Vec::with_capacity(outs.len());
            for (h, out) in outs.iter().enumerate() {
                let (loss, grad) = lm_head_loss(out, window, &head_keeps[h]);
                if h == 0 {
                    loss_mean.add(loss, window.dims()[0]);
                }
                seeds.push(grad);
            }
            model.zero_grad();
            model.backward(&seeds);
            observer.lock().on_step(model);
            opt.step(&mut model.params_mut());
        }
        history.train_loss.push(loss_mean.mean());
        history.epoch_secs.push(t0.elapsed().as_secs_f32());
        if !val_windows.is_empty() {
            let mut vm = RunningMean::new();
            for window in val_windows {
                let outs = model.forward(&[window], Mode::Eval);
                let (loss, _) = lm_head_loss(&outs[0], window, &head_keeps[0]);
                vm.add(loss, window.dims()[0]);
                model.clear_caches();
            }
            history.val_loss.push(vm.mean());
        }
        listening = finish_epoch(ctx, epoch + 1, cfg.epochs, model, &opt, &history);
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::CloudLayer;
    use crate::observer::RecordingObserver;
    use amalgam_core::TrainConfig;
    use amalgam_models::lenet5;
    use amalgam_tensor::Rng;

    /// A recording observer we can inspect after the service consumed it.
    #[derive(Default)]
    struct SharedRecorder(RecordingObserver);

    impl CloudObserver for SharedRecorder {
        fn on_model(&mut self, m: &GraphModel) {
            self.0.on_model(m);
        }
        fn on_batch(&mut self, x: &Tensor, l: &[usize]) {
            self.0.on_batch(x, l);
        }
        fn on_step(&mut self, m: &mut GraphModel) {
            self.0.on_step(m);
        }
        fn on_result(&mut self, r: &JobResult) {
            self.0.on_result(r);
        }
    }

    fn tiny_job(rng: &mut Rng) -> (CloudJob, GraphModel) {
        let model = lenet5(1, 8, 2, rng);
        let inputs = Tensor::randn(&[16, 1, 8, 8], rng);
        let labels: Vec<usize> = (0..16).map(|i| i % 2).collect();
        let job = CloudJob {
            model: model.to_bytes(),
            task: TaskPayload::Classification {
                inputs,
                labels,
                val_inputs: None,
                val_labels: vec![],
            },
            train: TrainConfig::new(2, 8, 0.05).with_seed(3),
        };
        (job, model)
    }

    /// A job whose seed differs, so results are distinguishable per job.
    fn tiny_job_with_seed(rng: &mut Rng, seed: u64) -> CloudJob {
        let (mut job, _) = tiny_job(rng);
        job.train = job.train.with_seed(seed);
        job
    }

    #[test]
    fn end_to_end_job_trains_and_returns_model() {
        let mut rng = Rng::seed_from(0);
        let (job, model) = tiny_job(&mut rng);
        let service = CloudService::start();
        let result = service.client().train(&job).unwrap();
        service.shutdown();
        assert_eq!(result.history.epochs(), 2);
        assert!(result.bytes_received > 0 && result.bytes_sent > 0);
        let trained = GraphModel::from_bytes(result.trained_model).unwrap();
        assert_eq!(trained.param_count(), model.param_count());
        // Weights must have moved.
        let before = model.state_dict();
        let after = trained.state_dict();
        let moved = before
            .iter()
            .zip(&after)
            .any(|((_, a), (_, b))| a.data() != b.data());
        assert!(moved, "training did not change any weights");
    }

    #[test]
    fn observer_sees_model_batches_and_result() {
        let mut rng = Rng::seed_from(1);
        let (job, _) = tiny_job(&mut rng);
        let obs: Arc<Mutex<SharedRecorder>> = Arc::new(Mutex::new(SharedRecorder::default()));
        let service = CloudService::start_with_observer(obs.clone());
        service.client().train(&job).unwrap();
        service.shutdown();
        let rec = &obs.lock().0;
        assert!(rec.model_params > 0);
        assert_eq!(rec.batches, 4); // 16 samples / bs 8 × 2 epochs
        assert_eq!(rec.steps, 4);
        assert_eq!(rec.results, 1);
        assert!(rec.first_batch.is_some());
    }

    #[test]
    fn cloud_training_matches_local_training_bitwise() {
        // The cloud's loop must be numerically identical to the local
        // trainer, through the whole default middleware stack.
        let mut rng = Rng::seed_from(2);
        let (job, model) = tiny_job(&mut rng);
        let service = CloudService::start();
        let result = service.client().train(&job).unwrap();
        service.shutdown();
        let cloud_trained = GraphModel::from_bytes(result.trained_model).unwrap();

        let mut local = model.clone();
        let (inputs, labels) = match &job.task {
            TaskPayload::Classification { inputs, labels, .. } => (inputs.clone(), labels.clone()),
            _ => unreachable!(),
        };
        let data = amalgam_data::ImageDataset::new(inputs, labels, 2);
        amalgam_core::trainer::train_image_classifier(&mut local, &data, None, 0, &job.train);

        for ((n1, t1), (n2, t2)) in local
            .state_dict()
            .iter()
            .zip(cloud_trained.state_dict().iter())
        {
            assert_eq!(n1, n2);
            assert_eq!(
                t1.data(),
                t2.data(),
                "cloud and local training diverged at {n1}"
            );
        }
    }

    #[test]
    fn lm_job_trains_on_the_cloud() {
        let mut rng = Rng::seed_from(9);
        let model = amalgam_models::transformer_lm(
            &amalgam_models::TransformerLmConfig::tiny(20, 16),
            &mut rng,
        );
        let windows: Vec<Tensor> = (0..3)
            .map(|_| Tensor::from_fn(&[2, 8], |i| ((i * 7) % 20) as f32))
            .collect();
        let keep: Vec<usize> = (0..8).collect();
        let job = CloudJob {
            model: model.to_bytes(),
            task: TaskPayload::LanguageModel {
                windows: windows.clone(),
                val_windows: vec![windows[0].clone()],
                head_keeps: vec![keep],
            },
            train: TrainConfig::new(1, 2, 0.05).with_seed(1),
        };
        let service = CloudService::start();
        let result = service.client().train(&job).unwrap();
        service.shutdown();
        assert_eq!(result.history.epochs(), 1);
        assert_eq!(result.history.val_loss.len(), 1);
        let trained = GraphModel::from_bytes(result.trained_model).unwrap();
        assert_eq!(trained.param_count(), model.param_count());
    }

    #[test]
    fn lm_job_with_wrong_keep_arity_is_rejected() {
        let mut rng = Rng::seed_from(10);
        let model = amalgam_models::transformer_lm(
            &amalgam_models::TransformerLmConfig::tiny(10, 8),
            &mut rng,
        );
        let job = CloudJob {
            model: model.to_bytes(),
            task: TaskPayload::LanguageModel {
                windows: vec![Tensor::zeros(&[1, 4])],
                val_windows: vec![],
                head_keeps: vec![], // wrong: one list per head required
            },
            train: TrainConfig::new(1, 1, 0.05),
        };
        let service = CloudService::start();
        let err = service.client().train(&job).unwrap_err();
        service.shutdown();
        assert!(matches!(err, CloudError::BadJob(_)));
    }

    #[test]
    fn bad_job_reports_error() {
        let service = CloudService::start();
        let job = CloudJob {
            model: Bytes::from_static(b"garbage"),
            task: TaskPayload::Classification {
                inputs: Tensor::zeros(&[1, 1, 2, 2]),
                labels: vec![0],
                val_inputs: None,
                val_labels: vec![],
            },
            train: TrainConfig::new(1, 1, 0.1),
        };
        let err = service.client().train(&job).unwrap_err();
        service.shutdown();
        assert!(matches!(err, CloudError::Decode(_)));
    }

    #[test]
    fn multi_worker_pool_serves_concurrent_clients() {
        let service = CloudService::builder().workers(3).build();
        let mut rng = Rng::seed_from(20);
        // 6 jobs with distinct seeds from 3 cloned clients on 3 threads;
        // every result must match its own job (checked via job ids and the
        // seed-dependent final weights).
        let jobs: Vec<CloudJob> = (0..6)
            .map(|s| tiny_job_with_seed(&mut rng, 100 + s))
            .collect();
        let expected: Vec<Vec<f32>> = jobs
            .iter()
            .map(|job| {
                let mut local = GraphModel::from_bytes(job.model.clone()).unwrap();
                let (inputs, labels) = match &job.task {
                    TaskPayload::Classification { inputs, labels, .. } => {
                        (inputs.clone(), labels.clone())
                    }
                    _ => unreachable!(),
                };
                let data = amalgam_data::ImageDataset::new(inputs, labels, 2);
                amalgam_core::trainer::train_image_classifier(
                    &mut local, &data, None, 0, &job.train,
                );
                local
                    .state_dict()
                    .iter()
                    .flat_map(|(_, t)| t.data().to_vec())
                    .collect()
            })
            .collect();

        let handles: Vec<_> = jobs
            .chunks(2)
            .map(|chunk| {
                let client = service.client();
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    chunk
                        .iter()
                        .map(|job| {
                            let handle = client.submit(job).unwrap();
                            let id = handle.id();
                            let result = handle.wait().unwrap();
                            assert_eq!(result.job_id, id, "result routed to the wrong handle");
                            result
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<JobResult> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(results.len(), 6);
        for (result, expected) in results.iter().zip(&expected) {
            let trained = GraphModel::from_bytes(result.trained_model.clone()).unwrap();
            let got: Vec<f32> = trained
                .state_dict()
                .iter()
                .flat_map(|(_, t)| t.data().to_vec())
                .collect();
            assert_eq!(
                &got, expected,
                "job {} returned another job's weights",
                result.job_id
            );
        }
        let stats = service.stats();
        assert_eq!(stats.jobs_completed, 6);
        assert_eq!(stats.jobs_failed, 0);
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let mut rng = Rng::seed_from(21);
        let service = CloudService::builder().workers(2).build();
        let client = service.client();
        let handles: Vec<JobHandle> = (0..4)
            .map(|s| client.submit(&tiny_job_with_seed(&mut rng, s)).unwrap())
            .collect();
        // Shutdown with jobs still queued/in flight must drain, not drop.
        service.shutdown();
        for handle in handles {
            handle
                .wait()
                .expect("queued job dropped during graceful shutdown");
        }
    }

    #[test]
    fn try_wait_and_wait_timeout_poll_without_losing_the_result() {
        let mut rng = Rng::seed_from(22);
        let (job, _) = tiny_job(&mut rng);
        let service = CloudService::start();
        let mut handle = service.client().submit(&job).unwrap();
        let mut polled = handle.try_wait();
        while polled.is_none() {
            polled = handle.wait_timeout(Duration::from_millis(20));
        }
        polled.unwrap().unwrap();
        // The outcome is cached: polling again still succeeds.
        handle.try_wait().unwrap().unwrap();
        assert!(handle
            .wait_timeout(Duration::from_millis(1))
            .unwrap()
            .is_ok());
        handle.wait().unwrap();
        service.shutdown();
    }

    /// A layer that panics on every job — used to prove workers survive.
    struct BombLayer;
    struct BombSvc;

    impl CloudLayer for BombLayer {
        fn wrap(&self, _inner: Box<dyn JobService>) -> Box<dyn JobService> {
            Box::new(BombSvc)
        }
        fn name(&self) -> &'static str {
            "bomb"
        }
    }

    impl JobService for BombSvc {
        fn call(&self, _: &mut JobContext, _: Bytes) -> Result<JobResult, CloudError> {
            panic!("intentional test panic");
        }
    }

    /// A layer that passes through, gated so tests can hold jobs in the
    /// queue deterministically.
    struct GateLayer(Arc<Mutex<()>>);
    struct GateSvc(Arc<Mutex<()>>, Box<dyn JobService>);

    impl CloudLayer for GateLayer {
        fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
            Box::new(GateSvc(Arc::clone(&self.0), inner))
        }
        fn name(&self) -> &'static str {
            "gate"
        }
    }

    impl JobService for GateSvc {
        fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
            let _hold = self.0.lock();
            self.1.call(ctx, payload)
        }
    }

    #[test]
    fn worker_survives_panicking_jobs() {
        let mut rng = Rng::seed_from(23);
        let (job, _) = tiny_job(&mut rng);
        let service = CloudService::builder().layer(BombLayer).build();
        let client = service.client();
        match client.train(&job) {
            Err(CloudError::Panicked(msg)) => assert!(msg.contains("intentional"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(service.stats().jobs_panicked, 1);
        // BombLayer replaced the whole inner stack, so a second job proves
        // the same worker thread is still alive and answering.
        assert!(matches!(client.train(&job), Err(CloudError::Panicked(_))));
        service.shutdown();
    }

    #[test]
    fn shutdown_answers_jobs_stranded_behind_a_dead_worker() {
        // With panic catching off, a poisoned job kills its worker; jobs
        // already queued behind it must still get an answer at shutdown
        // instead of hanging their handles forever.
        let mut rng = Rng::seed_from(27);
        let service = CloudService::builder()
            .workers(1)
            .catch_panics(false)
            .layer(BombLayer)
            .build();
        let client = service.client();
        let doomed = client.submit(&tiny_job_with_seed(&mut rng, 0)).unwrap();
        let stranded: Vec<JobHandle> = (1..4)
            .map(|s| client.submit(&tiny_job_with_seed(&mut rng, s)).unwrap())
            .collect();
        // The first job's panic kills the worker; its reply channel drops.
        assert!(matches!(doomed.wait(), Err(CloudError::ServiceUnavailable)));
        // The unwind must not leak the in-flight gauge.
        assert_eq!(service.stats().in_flight, 0);
        service.shutdown();
        for handle in stranded {
            assert!(
                matches!(handle.wait(), Err(CloudError::ServiceUnavailable)),
                "stranded job must be answered at shutdown, not dropped"
            );
        }
    }

    #[test]
    fn admission_control_sheds_excess_jobs() {
        let mut rng = Rng::seed_from(24);
        let gate = Arc::new(Mutex::new(()));
        let service = CloudService::builder()
            .workers(1)
            .max_queue_depth(1)
            .layer(GateLayer(Arc::clone(&gate)))
            .build();
        let client = service.client();
        let blocker = gate.lock(); // worker will block inside the gate
        let first = client.submit(&tiny_job_with_seed(&mut rng, 0)).unwrap();
        // Wait until the worker has picked up the first job, so submissions
        // below observe a stable queue depth.
        while service.stats().in_flight == 0 {
            std::thread::yield_now();
        }
        let queued = client.submit(&tiny_job_with_seed(&mut rng, 1)).unwrap();
        let deep1 = client.submit(&tiny_job_with_seed(&mut rng, 2)).unwrap();
        let deep2 = client.submit(&tiny_job_with_seed(&mut rng, 3)).unwrap();
        drop(blocker); // release the worker
        first.wait().unwrap();
        queued.wait().unwrap();
        let mut rejected = 0;
        for handle in [deep1, deep2] {
            if matches!(handle.wait(), Err(CloudError::Overloaded { .. })) {
                rejected += 1;
            }
        }
        assert!(rejected >= 1, "no job was shed at queue depth > 1");
        assert_eq!(service.stats().jobs_rejected, rejected);
        service.shutdown();
    }

    #[test]
    fn stats_track_bytes_and_latency() {
        let mut rng = Rng::seed_from(25);
        let (job, _) = tiny_job(&mut rng);
        let service = CloudService::start();
        let result = service.client().train(&job).unwrap();
        let stats = service.stats();
        service.shutdown();
        assert_eq!(stats.jobs_submitted, 1);
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.bytes_received, result.bytes_received as u64);
        assert_eq!(stats.bytes_sent, result.bytes_sent as u64);
        assert!(stats.mean_job_seconds > 0.0);
        assert!(stats.jobs_per_second > 0.0);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn result_cache_serves_hits_without_reexecution() {
        let mut rng = Rng::seed_from(30);
        let (job, _) = tiny_job(&mut rng);
        let service = CloudService::builder()
            .result_cache(64 << 20, Duration::from_secs(600))
            .build();
        let client = service.client();
        let first = client.train(&job).unwrap();
        let handle = client.submit(&job).unwrap();
        let second = handle.wait().unwrap();
        let third = client.train(&job).unwrap();
        let stats = service.stats();
        service.shutdown();
        assert_eq!(stats.jobs_completed, 1, "cache hits must not re-execute");
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.jobs_submitted, 3);
        assert_eq!(stats.queue_depth, 0);
        // Bitwise identical payloads, but each submission keeps its own id.
        assert_eq!(second.trained_model, first.trained_model);
        assert_eq!(second.history, first.history);
        assert_eq!(third.trained_model, first.trained_model);
        assert_ne!(second.job_id, first.job_id);
        let row = &stats.sessions[0];
        assert_eq!(row.cache_hits, 2);
        assert_eq!(row.jobs_submitted, 3);
    }

    #[test]
    fn concurrent_duplicates_coalesce_onto_one_execution() {
        let mut rng = Rng::seed_from(31);
        let (job, _) = tiny_job(&mut rng);
        let gate = Arc::new(Mutex::new(()));
        let service = CloudService::builder()
            .result_cache(64 << 20, Duration::from_secs(600))
            .layer(GateLayer(Arc::clone(&gate)))
            .build();
        let client = service.client();
        let blocker = gate.lock(); // hold the executor inside the stack
        let handles: Vec<JobHandle> = (0..5).map(|_| client.submit(&job).unwrap()).collect();
        drop(blocker);
        let mut results = Vec::new();
        for handle in handles {
            let id = handle.id();
            let result = handle.wait().unwrap();
            assert_eq!(result.job_id, id, "fan-out must stamp each waiter's id");
            results.push(result);
        }
        let stats = service.stats();
        service.shutdown();
        assert_eq!(stats.jobs_completed, 1, "duplicates must execute once");
        assert_eq!(stats.coalesced, 4);
        for r in &results[1..] {
            assert_eq!(r.trained_model, results[0].trained_model);
            assert_eq!(r.history, results[0].history);
        }
    }

    #[test]
    fn failures_propagate_to_every_waiter_and_leave_the_cache_retryable() {
        let mut rng = Rng::seed_from(32);
        let (job, _) = tiny_job(&mut rng);
        let gate = Arc::new(Mutex::new(()));
        let service = CloudService::builder()
            .result_cache(64 << 20, Duration::from_secs(600))
            .layer(GateLayer(Arc::clone(&gate)))
            .layer(BombLayer)
            .build();
        let client = service.client();
        let blocker = gate.lock();
        let handles: Vec<JobHandle> = (0..4).map(|_| client.submit(&job).unwrap()).collect();
        drop(blocker);
        for handle in handles {
            assert!(matches!(handle.wait(), Err(CloudError::Panicked(_))));
        }
        let stats = service.stats();
        assert_eq!(
            stats.jobs_panicked, 1,
            "one execution fanned to all waiters"
        );
        assert_eq!(stats.coalesced, 3);
        assert_eq!(stats.cache_hits, 0);
        // No poisoned entry: retrying the failed address executes again.
        assert!(matches!(client.train(&job), Err(CloudError::Panicked(_))));
        assert_eq!(service.stats().jobs_panicked, 2);
        service.shutdown();
    }

    #[test]
    fn cache_hits_spend_rate_limit_tokens() {
        let mut rng = Rng::seed_from(33);
        let (job, _) = tiny_job(&mut rng);
        let service = CloudService::builder()
            .rate_limit(0.001, 2.0)
            .result_cache(64 << 20, Duration::from_secs(600))
            .build();
        let client = service.client();
        client.train(&job).unwrap(); // token 1, charged by the stack
        client.train(&job).unwrap(); // token 2, charged at the hit
        let err = client.train(&job).unwrap_err(); // bucket empty: cheap ≠ free
        assert!(matches!(err, CloudError::RateLimited { .. }));
        assert!(err.retry_after().is_some());
        let stats = service.stats();
        service.shutdown();
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(
            stats.cache_hits, 1,
            "the refused hit must not count as served"
        );
        assert_eq!(stats.jobs_rate_limited, 1);
        let row = &stats.sessions[0];
        assert_eq!(row.jobs_rate_limited, 1);
        assert_eq!(row.jobs_shed, 1);
    }

    #[test]
    fn shutdown_answers_waiters_of_stranded_executors() {
        // A dedup executor stranded behind a dead worker must resolve its
        // coalesced waiters at shutdown, exactly like any other envelope.
        let mut rng = Rng::seed_from(34);
        let service = CloudService::builder()
            .workers(1)
            .catch_panics(false)
            .result_cache(64 << 20, Duration::from_secs(600))
            .layer(BombLayer)
            .build();
        let client = service.client();
        let doomed = client.submit(&tiny_job_with_seed(&mut rng, 0)).unwrap();
        let job = tiny_job_with_seed(&mut rng, 1);
        let stranded_executor = client.submit(&job).unwrap();
        let waiters: Vec<JobHandle> = (0..3).map(|_| client.submit(&job).unwrap()).collect();
        // The panic unwinds through the worker; the executor envelope for
        // job 0 is dropped, which must clear its (empty) pending slot.
        assert!(matches!(doomed.wait(), Err(CloudError::ServiceUnavailable)));
        service.shutdown();
        assert!(matches!(
            stranded_executor.wait(),
            Err(CloudError::ServiceUnavailable)
        ));
        for waiter in waiters {
            assert!(
                matches!(waiter.wait(), Err(CloudError::ServiceUnavailable)),
                "coalesced waiter must be answered at shutdown, not stranded"
            );
        }
    }

    #[test]
    fn submitting_after_shutdown_fails_cleanly() {
        let mut rng = Rng::seed_from(26);
        let (job, _) = tiny_job(&mut rng);
        let service = CloudService::start();
        let client = service.client();
        service.shutdown();
        assert!(matches!(
            client.train(&job),
            Err(CloudError::ServiceUnavailable)
        ));
    }
}
