//! The cloud service thread and client handle.

use crate::observer::{CloudObserver, NullObserver};
use crate::protocol::{CloudJob, JobResult, TaskPayload};
use crate::CloudError;
use amalgam_core::trainer::{epoch_rng, lm_head_loss};
use amalgam_data::BatchIter;
use amalgam_nn::graph::GraphModel;
use amalgam_nn::loss::cross_entropy;
use amalgam_nn::metrics::{accuracy, History, RunningMean};
use amalgam_nn::optim::Sgd;
use amalgam_nn::Mode;
use amalgam_tensor::Tensor;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;

enum Envelope {
    Job { payload: Bytes, reply: Sender<Result<JobResult, CloudError>> },
    Shutdown,
}

/// The simulated cloud: a training service on its own thread.
#[derive(Debug)]
pub struct CloudService {
    handle: Option<std::thread::JoinHandle<()>>,
    tx: Sender<Envelope>,
}

/// Client handle for submitting jobs to a [`CloudService`].
#[derive(Debug, Clone)]
pub struct CloudClient {
    tx: Sender<Envelope>,
}

/// An in-flight job.
#[derive(Debug)]
pub struct JobHandle {
    rx: Receiver<Result<JobResult, CloudError>>,
}

impl CloudService {
    /// Starts a service with no adversary attached.
    pub fn start() -> CloudService {
        CloudService::start_with_observer(Arc::new(Mutex::new(NullObserver)))
    }

    /// Starts a service whose traffic is fed to `observer` — the attack
    /// experiments' entry point.
    pub fn start_with_observer(observer: Arc<Mutex<dyn CloudObserver>>) -> CloudService {
        let (tx, rx) = unbounded::<Envelope>();
        let handle = std::thread::spawn(move || {
            while let Ok(env) = rx.recv() {
                match env {
                    Envelope::Job { payload, reply } => {
                        let result = run_job(payload, &observer);
                        let _ = reply.send(result);
                    }
                    Envelope::Shutdown => break,
                }
            }
        });
        CloudService { handle: Some(handle), tx }
    }

    /// A client handle (cloneable; jobs are processed sequentially).
    pub fn client(&self) -> CloudClient {
        CloudClient { tx: self.tx.clone() }
    }

    /// Stops the service, waiting for the thread to finish.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Envelope::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CloudService {
    fn drop(&mut self) {
        let _ = self.tx.send(Envelope::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl CloudClient {
    /// Uploads a job (serializing it — this is the trust boundary).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::ServiceUnavailable`] if the service is gone.
    pub fn submit(&self, job: &CloudJob) -> Result<JobHandle, CloudError> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Envelope::Job { payload: job.to_bytes(), reply: reply_tx })
            .map_err(|_| CloudError::ServiceUnavailable)?;
        Ok(JobHandle { rx: reply_rx })
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// Propagates submission, decode and training errors.
    pub fn train(&self, job: &CloudJob) -> Result<JobResult, CloudError> {
        self.submit(job)?.wait()
    }
}

impl JobHandle {
    /// Blocks until the job finishes.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::ServiceUnavailable`] if the service died.
    pub fn wait(self) -> Result<JobResult, CloudError> {
        self.rx.recv().map_err(|_| CloudError::ServiceUnavailable)?
    }
}

/// Decodes and trains one job — everything here is "cloud side".
fn run_job(payload: Bytes, observer: &Arc<Mutex<dyn CloudObserver>>) -> Result<JobResult, CloudError> {
    let bytes_received = payload.len();
    let job = CloudJob::from_bytes(payload)?;
    let mut model =
        GraphModel::from_bytes(job.model.clone()).map_err(|e| CloudError::Decode(e.to_string()))?;
    if model.outputs().is_empty() {
        return Err(CloudError::BadJob("model declares no outputs".into()));
    }
    observer.lock().on_model(&model);

    let t0 = std::time::Instant::now();
    let history = match &job.task {
        TaskPayload::Classification { inputs, labels, val_inputs, val_labels } => {
            if inputs.dims()[0] != labels.len() {
                return Err(CloudError::BadJob("label count mismatch".into()));
            }
            train_classification(
                &mut model,
                inputs,
                labels,
                val_inputs.as_ref().map(|v| (v, val_labels.as_slice())),
                &job.train,
                observer,
            )
        }
        TaskPayload::LanguageModel { windows, val_windows, head_keeps } => {
            if head_keeps.len() != model.outputs().len() {
                return Err(CloudError::BadJob("one keep list per head required".into()));
            }
            train_lm(&mut model, windows, val_windows, head_keeps, &job.train, observer)
        }
    };
    let train_seconds = t0.elapsed().as_secs_f64();
    model.clear_caches();
    let trained_model = model.to_bytes();
    Ok(JobResult {
        bytes_sent: trained_model.len(),
        trained_model,
        history,
        bytes_received,
        train_seconds,
    })
}

/// Algorithm 1 with observer hooks. Numerically identical to
/// `amalgam_core::trainer::train_image_classifier` (same shuffle source, same
/// loss, same update), so client-side equivalence guarantees carry over.
fn train_classification(
    model: &mut GraphModel,
    inputs: &Tensor,
    labels: &[usize],
    val: Option<(&Tensor, &[usize])>,
    cfg: &amalgam_core::TrainConfig,
    observer: &Arc<Mutex<dyn CloudObserver>>,
) -> History {
    let n = labels.len();
    let mut opt = Sgd::new(cfg.lr).with_momentum(cfg.momentum);
    let mut history = History::new();
    for epoch in 0..cfg.epochs {
        let t0 = std::time::Instant::now();
        let mut rng = epoch_rng(cfg, epoch);
        let mut loss_mean = RunningMean::new();
        let mut acc_mean = RunningMean::new();
        for idx in BatchIter::new(n, cfg.batch_size, &mut rng) {
            let x = inputs.index_select_axis0(&idx);
            let batch_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            observer.lock().on_batch(&x, &batch_labels);
            let outs = model.forward(&[&x], Mode::Train);
            let mut seeds = Vec::with_capacity(outs.len());
            for (h, out) in outs.iter().enumerate() {
                let (loss, grad) = cross_entropy(out, &batch_labels);
                if h == 0 {
                    loss_mean.add(loss, batch_labels.len());
                    acc_mean.add(accuracy(out, &batch_labels), batch_labels.len());
                }
                seeds.push(grad);
            }
            model.zero_grad();
            model.backward(&seeds);
            observer.lock().on_step(model);
            opt.step(&mut model.params_mut());
        }
        history.train_loss.push(loss_mean.mean());
        history.train_acc.push(acc_mean.mean());
        history.epoch_secs.push(t0.elapsed().as_secs_f32());
        if let Some((vx, vl)) = val {
            let outs = model.forward(&[vx], Mode::Eval);
            let (loss, _) = cross_entropy(&outs[0], vl);
            history.val_loss.push(loss);
            history.val_acc.push(accuracy(&outs[0], vl));
            model.clear_caches();
        }
    }
    history
}

fn train_lm(
    model: &mut GraphModel,
    windows: &[Tensor],
    val_windows: &[Tensor],
    head_keeps: &[Vec<usize>],
    cfg: &amalgam_core::TrainConfig,
    observer: &Arc<Mutex<dyn CloudObserver>>,
) -> History {
    let mut opt = Sgd::new(cfg.lr).with_momentum(cfg.momentum);
    let mut history = History::new();
    for _epoch in 0..cfg.epochs {
        let t0 = std::time::Instant::now();
        let mut loss_mean = RunningMean::new();
        for window in windows {
            observer.lock().on_batch(window, &[]);
            let outs = model.forward(&[window], Mode::Train);
            let mut seeds = Vec::with_capacity(outs.len());
            for (h, out) in outs.iter().enumerate() {
                let (loss, grad) = lm_head_loss(out, window, &head_keeps[h]);
                if h == 0 {
                    loss_mean.add(loss, window.dims()[0]);
                }
                seeds.push(grad);
            }
            model.zero_grad();
            model.backward(&seeds);
            observer.lock().on_step(model);
            opt.step(&mut model.params_mut());
        }
        history.train_loss.push(loss_mean.mean());
        history.epoch_secs.push(t0.elapsed().as_secs_f32());
        if !val_windows.is_empty() {
            let mut vm = RunningMean::new();
            for window in val_windows {
                let outs = model.forward(&[window], Mode::Eval);
                let (loss, _) = lm_head_loss(&outs[0], window, &head_keeps[0]);
                vm.add(loss, window.dims()[0]);
                model.clear_caches();
            }
            history.val_loss.push(vm.mean());
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::RecordingObserver;
    use amalgam_core::TrainConfig;
    use amalgam_models::lenet5;
    use amalgam_tensor::Rng;

    /// A recording observer we can inspect after the service consumed it.
    #[derive(Default)]
    struct SharedRecorder(RecordingObserver);

    impl CloudObserver for SharedRecorder {
        fn on_model(&mut self, m: &GraphModel) {
            self.0.on_model(m);
        }
        fn on_batch(&mut self, x: &Tensor, l: &[usize]) {
            self.0.on_batch(x, l);
        }
        fn on_step(&mut self, m: &mut GraphModel) {
            self.0.on_step(m);
        }
    }

    fn tiny_job(rng: &mut Rng) -> (CloudJob, GraphModel) {
        let model = lenet5(1, 8, 2, rng);
        let inputs = Tensor::randn(&[16, 1, 8, 8], rng);
        let labels: Vec<usize> = (0..16).map(|i| i % 2).collect();
        let job = CloudJob {
            model: model.to_bytes(),
            task: TaskPayload::Classification {
                inputs,
                labels,
                val_inputs: None,
                val_labels: vec![],
            },
            train: TrainConfig::new(2, 8, 0.05).with_seed(3),
        };
        (job, model)
    }

    #[test]
    fn end_to_end_job_trains_and_returns_model() {
        let mut rng = Rng::seed_from(0);
        let (job, model) = tiny_job(&mut rng);
        let service = CloudService::start();
        let result = service.client().train(&job).unwrap();
        service.shutdown();
        assert_eq!(result.history.epochs(), 2);
        assert!(result.bytes_received > 0 && result.bytes_sent > 0);
        let trained = GraphModel::from_bytes(result.trained_model).unwrap();
        assert_eq!(trained.param_count(), model.param_count());
        // Weights must have moved.
        let before = model.state_dict();
        let after = trained.state_dict();
        let moved = before.iter().zip(&after).any(|((_, a), (_, b))| a.data() != b.data());
        assert!(moved, "training did not change any weights");
    }

    #[test]
    fn observer_sees_model_and_batches() {
        let mut rng = Rng::seed_from(1);
        let (job, _) = tiny_job(&mut rng);
        let obs: Arc<Mutex<SharedRecorder>> = Arc::new(Mutex::new(SharedRecorder::default()));
        let service = CloudService::start_with_observer(obs.clone());
        service.client().train(&job).unwrap();
        service.shutdown();
        let rec = &obs.lock().0;
        assert!(rec.model_params > 0);
        assert_eq!(rec.batches, 4); // 16 samples / bs 8 × 2 epochs
        assert_eq!(rec.steps, 4);
        assert!(rec.first_batch.is_some());
    }

    #[test]
    fn cloud_training_matches_local_training_bitwise() {
        // The cloud's loop must be numerically identical to the local trainer.
        let mut rng = Rng::seed_from(2);
        let (job, model) = tiny_job(&mut rng);
        let service = CloudService::start();
        let result = service.client().train(&job).unwrap();
        service.shutdown();
        let cloud_trained = GraphModel::from_bytes(result.trained_model).unwrap();

        let mut local = model.clone();
        let (inputs, labels) = match &job.task {
            TaskPayload::Classification { inputs, labels, .. } => (inputs.clone(), labels.clone()),
            _ => unreachable!(),
        };
        let data = amalgam_data::ImageDataset::new(inputs, labels, 2);
        amalgam_core::trainer::train_image_classifier(&mut local, &data, None, 0, &job.train);

        for ((n1, t1), (n2, t2)) in local.state_dict().iter().zip(cloud_trained.state_dict().iter()) {
            assert_eq!(n1, n2);
            assert_eq!(t1.data(), t2.data(), "cloud and local training diverged at {n1}");
        }
    }

    #[test]
    fn lm_job_trains_on_the_cloud() {
        let mut rng = Rng::seed_from(9);
        let model = amalgam_models::transformer_lm(
            &amalgam_models::TransformerLmConfig::tiny(20, 16),
            &mut rng,
        );
        let windows: Vec<Tensor> =
            (0..3).map(|_| Tensor::from_fn(&[2, 8], |i| ((i * 7) % 20) as f32)).collect();
        let keep: Vec<usize> = (0..8).collect();
        let job = CloudJob {
            model: model.to_bytes(),
            task: TaskPayload::LanguageModel {
                windows: windows.clone(),
                val_windows: vec![windows[0].clone()],
                head_keeps: vec![keep],
            },
            train: TrainConfig::new(1, 2, 0.05).with_seed(1),
        };
        let service = CloudService::start();
        let result = service.client().train(&job).unwrap();
        service.shutdown();
        assert_eq!(result.history.epochs(), 1);
        assert_eq!(result.history.val_loss.len(), 1);
        let trained = GraphModel::from_bytes(result.trained_model).unwrap();
        assert_eq!(trained.param_count(), model.param_count());
    }

    #[test]
    fn lm_job_with_wrong_keep_arity_is_rejected() {
        let mut rng = Rng::seed_from(10);
        let model = amalgam_models::transformer_lm(
            &amalgam_models::TransformerLmConfig::tiny(10, 8),
            &mut rng,
        );
        let job = CloudJob {
            model: model.to_bytes(),
            task: TaskPayload::LanguageModel {
                windows: vec![Tensor::zeros(&[1, 4])],
                val_windows: vec![],
                head_keeps: vec![], // wrong: one list per head required
            },
            train: TrainConfig::new(1, 1, 0.05),
        };
        let service = CloudService::start();
        let err = service.client().train(&job).unwrap_err();
        service.shutdown();
        assert!(matches!(err, CloudError::BadJob(_)));
    }

    #[test]
    fn bad_job_reports_error() {
        let service = CloudService::start();
        let job = CloudJob {
            model: Bytes::from_static(b"garbage"),
            task: TaskPayload::Classification {
                inputs: Tensor::zeros(&[1, 1, 2, 2]),
                labels: vec![0],
                val_inputs: None,
                val_labels: vec![],
            },
            train: TrainConfig::new(1, 1, 0.1),
        };
        let err = service.client().train(&job).unwrap_err();
        service.shutdown();
        assert!(matches!(err, CloudError::Decode(_)));
    }
}
