//! Per-session admission-rate policy: a token bucket per session, mounted
//! as the `ratelimit` middleware layer.
//!
//! PR 4 put the stack on a real wire, which means any connected session can
//! submit as fast as its socket allows. The global admission layer only
//! bounds *total* queue depth — one greedy client can fill that budget and
//! starve everyone else. This module adds the per-client half of the
//! policy: every session (API key, or anonymous connection) gets its own
//! [`TokenBucket`], refilled at a configured sustained rate up to a burst
//! capacity, and jobs submitted above that rate are answered with
//! [`CloudError::RateLimited`] carrying an honest `retry_after_ms`.
//!
//! The bucket is judged against each job's **submit timestamp**
//! ([`crate::JobContext::submitted_at`]), not the instant a worker got
//! around to it — a deep queue neither hides a flood nor penalizes a
//! polite client whose job waited. Jobs of one session are dispatched in
//! submit order (the fair queue keeps per-session FIFO), so the timestamps
//! each bucket sees are monotone and the refill math stays exact.
//!
//! The layer sits between admission control and auth (see the
//! [crate docs](crate) for the full diagram): a flood is shed before it is
//! decoded, validated or trained, and the shed is cheap — no tensor bytes
//! are ever touched.

use crate::middleware::{CloudLayer, JobContext, JobService, SessionKey};
use crate::protocol::JobResult;
use crate::CloudError;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Buckets beyond this count trigger a sweep of buckets refilled to full
/// as of the sweep instant. A full bucket is *nearly* indistinguishable
/// from a fresh one — a session whose still-queued jobs predate the sweep
/// can regain at most one extra burst — which is the accepted price for
/// bounding the map against anonymous-session churn.
const PRUNE_THRESHOLD: usize = 4096;

/// A classic token bucket: capacity `burst`, refilled continuously at
/// `rate` tokens per second, one token per admitted job.
///
/// Time is passed in explicitly, so the policy is deterministic under test:
/// feed any monotone sequence of instants and the admit/reject sequence is
/// a pure function of it.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A full bucket (`burst` tokens) refilling at `rate_per_sec`, with
    /// its refill clock starting now.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec > 0` and `burst >= 1` (a bucket that can
    /// never hold one whole token admits nothing, which is a config bug,
    /// not a policy).
    pub fn new(rate_per_sec: f64, burst: f64) -> TokenBucket {
        TokenBucket::new_at(rate_per_sec, burst, Instant::now())
    }

    /// [`new`](Self::new) with an explicit epoch for the refill clock.
    ///
    /// A bucket created lazily — at the first *dispatch* of a session —
    /// must backdate its clock to that session's first *submit* instant:
    /// otherwise every job already queued behind a busy pool would be
    /// judged against a clock that started after they were submitted,
    /// starving a session that never exceeded its sustained rate.
    ///
    /// # Panics
    ///
    /// Same bounds as [`new`](Self::new).
    pub fn new_at(rate_per_sec: f64, burst: f64, epoch: Instant) -> TokenBucket {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "token bucket rate must be positive and finite"
        );
        assert!(
            burst >= 1.0 && burst.is_finite(),
            "token bucket burst must hold at least one token"
        );
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last_refill: epoch,
        }
    }

    /// Tokens available right at `now` (after the refill `now` implies).
    pub fn available_at(&self, now: Instant) -> f64 {
        let dt = now
            .checked_duration_since(self.last_refill)
            .unwrap_or(Duration::ZERO);
        (self.tokens + dt.as_secs_f64() * self.rate_per_sec).min(self.burst)
    }

    /// Takes one token as of `now`, or reports how long after `now` a
    /// retry is guaranteed a token (absent other consumers).
    ///
    /// Instants earlier than the last refill (clock races between
    /// submitting threads of one shared client) are clamped forward, so the
    /// bucket never refills twice for the same wall-clock interval.
    ///
    /// # Errors
    ///
    /// Returns the retry-after duration when no whole token is available.
    pub fn try_acquire_at(&mut self, now: Instant) -> Result<(), Duration> {
        if now > self.last_refill {
            self.tokens = self.available_at(now);
            self.last_refill = now;
        }
        // The epsilon forgives rounding at the exact retry deadline —
        // `Duration` quantizes to nanoseconds, which at high rates shaves
        // more than f64 noise off the refill — keeping the advertised
        // retry-after honest by construction. A millionth of a token of
        // early admission is far below scheduling jitter.
        if self.tokens >= 1.0 - 1e-6 {
            self.tokens = (self.tokens - 1.0).max(0.0);
            Ok(())
        } else {
            let retry = Duration::from_secs_f64((1.0 - self.tokens) / self.rate_per_sec);
            // Round up past the quantization so a patient retry cannot
            // land a fraction of a nanosecond short.
            Err(retry + Duration::from_nanos(1))
        }
    }

    /// Whether the bucket is refilled to capacity as of `now`.
    fn is_full_at(&self, now: Instant) -> bool {
        self.available_at(now) >= self.burst
    }
}

/// The shared per-session bucket table behind a [`RateLimitLayer`].
#[derive(Debug)]
struct BucketTable {
    rate_per_sec: f64,
    burst: f64,
    buckets: Mutex<BucketMap>,
}

#[derive(Debug)]
struct BucketMap {
    map: HashMap<SessionKey, TokenBucket>,
    /// Sweep the map for prunable buckets only once it grows past this,
    /// then re-arm above the surviving size — amortized O(1) per acquire
    /// even when the map hovers near the threshold.
    prune_at: usize,
}

impl BucketTable {
    fn acquire(&self, session: &SessionKey, at: Instant) -> Result<(), Duration> {
        let mut buckets = self.buckets.lock();
        if buckets.map.len() >= buckets.prune_at {
            // Approximate, deliberately: a dropped bucket is recreated
            // full, so a session whose queued jobs predate the sweep can
            // regain at most one extra burst — bounded, and only under
            // thousands-of-sessions churn, which is the memory hazard this
            // sweep exists to cap.
            let now = Instant::now();
            buckets.map.retain(|_, b| !b.is_full_at(now));
            buckets.prune_at = (buckets.map.len() * 2).max(PRUNE_THRESHOLD);
        }
        buckets
            .map
            .entry(session.clone())
            // Backdate the new bucket's clock to this first-judged job's
            // submit instant, so a backlog queued behind a busy pool is
            // judged against the session's true submit rate.
            .or_insert_with(|| TokenBucket::new_at(self.rate_per_sec, self.burst, at))
            .try_acquire_at(at)
    }
}

/// A cloneable handle onto a [`RateLimitLayer`]'s bucket table.
///
/// The dedup subsystem ([`crate::cache`]) serves cache hits and coalesced
/// attaches in the submit path, *before* the queue — which means they
/// never reach the in-stack [`RateLimitLayer`]. This handle lets that path
/// charge the very same per-session buckets, so a served submission spends
/// exactly the token an executed one would: the cache is a latency
/// shortcut, not a rate-limit bypass.
#[derive(Debug, Clone)]
pub(crate) struct RateLimitHandle {
    table: std::sync::Arc<BucketTable>,
}

impl RateLimitHandle {
    /// Takes one token from `session`'s bucket as of `at`, or reports the
    /// honest retry-after.
    pub(crate) fn try_acquire(&self, session: &SessionKey, at: Instant) -> Result<(), Duration> {
        self.table.acquire(session, at)
    }
}

/// Middleware enforcing a per-session submit-rate budget.
///
/// Installed by [`crate::CloudServiceBuilder::rate_limit`]; each distinct
/// [`SessionKey`] (API key, or anonymous client/connection identity) gets an
/// independent [`TokenBucket`]. Jobs over budget are answered with
/// [`CloudError::RateLimited`] — which round-trips the transport's Reply
/// frame, so remote handles see the same error (and the same
/// `retry_after_ms`) as in-process ones.
#[derive(Debug)]
pub struct RateLimitLayer {
    table: std::sync::Arc<BucketTable>,
}

impl RateLimitLayer {
    /// A limiter granting each session `rate_per_sec` sustained jobs per
    /// second with bursts of up to `burst` jobs.
    ///
    /// # Panics
    ///
    /// Same bounds as [`TokenBucket::new`].
    pub fn new(rate_per_sec: f64, burst: f64) -> RateLimitLayer {
        // Validate eagerly: a bad config should fail at build time, not on
        // the first job of some unlucky session.
        let _ = TokenBucket::new(rate_per_sec, burst);
        RateLimitLayer {
            table: std::sync::Arc::new(BucketTable {
                rate_per_sec,
                burst,
                buckets: Mutex::new(BucketMap {
                    map: HashMap::new(),
                    prune_at: PRUNE_THRESHOLD,
                }),
            }),
        }
    }

    /// A handle sharing this layer's bucket table with the submit-path
    /// dedup check.
    pub(crate) fn handle(&self) -> RateLimitHandle {
        RateLimitHandle {
            table: std::sync::Arc::clone(&self.table),
        }
    }
}

struct RateLimitSvc {
    table: std::sync::Arc<BucketTable>,
    inner: Box<dyn JobService>,
}

impl CloudLayer for RateLimitLayer {
    fn wrap(&self, inner: Box<dyn JobService>) -> Box<dyn JobService> {
        Box::new(RateLimitSvc {
            table: std::sync::Arc::clone(&self.table),
            inner,
        })
    }

    fn name(&self) -> &'static str {
        "ratelimit"
    }
}

impl JobService for RateLimitSvc {
    fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
        match self.table.acquire(&ctx.session, ctx.submitted_at) {
            Ok(()) => self.inner.call(ctx, payload),
            Err(retry_after) => Err(CloudError::RateLimited {
                // Round up: retrying a hair early would find no token.
                retry_after_ms: retry_after.as_millis() as u64 + 1,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::middleware::ServiceBuilder;
    use amalgam_nn::metrics::History;

    struct Probe;

    impl JobService for Probe {
        fn call(&self, ctx: &mut JobContext, payload: Bytes) -> Result<JobResult, CloudError> {
            Ok(JobResult {
                job_id: ctx.job_id,
                trained_model: payload,
                history: History::new(),
                bytes_received: 0,
                bytes_sent: 0,
                train_seconds: 0.0,
            })
        }
    }

    #[test]
    fn burst_is_admitted_then_rate_applies() {
        let mut bucket = TokenBucket::new(10.0, 3.0);
        let t0 = Instant::now();
        for _ in 0..3 {
            bucket.try_acquire_at(t0).expect("burst token");
        }
        let retry = bucket.try_acquire_at(t0).expect_err("burst exhausted");
        // One token at 10/s takes 100ms to brew.
        assert!(retry <= Duration::from_millis(101), "{retry:?}");
        bucket
            .try_acquire_at(t0 + retry)
            .expect("honest retry-after");
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut bucket = TokenBucket::new(100.0, 2.0);
        let t0 = Instant::now();
        // A long silence must not bank more than `burst` tokens.
        let later = t0 + Duration::from_secs(60);
        assert_eq!(bucket.available_at(later), 2.0);
        bucket.try_acquire_at(later).unwrap();
        bucket.try_acquire_at(later).unwrap();
        assert!(bucket.try_acquire_at(later).is_err());
    }

    #[test]
    fn out_of_order_instants_are_clamped() {
        let mut bucket = TokenBucket::new(1.0, 1.0);
        let t0 = Instant::now();
        bucket.try_acquire_at(t0 + Duration::from_secs(5)).unwrap();
        // An older timestamp (thread race) must not re-run the refill.
        assert!(bucket.try_acquire_at(t0).is_err());
    }

    #[test]
    fn lazily_created_buckets_backdate_to_the_first_submit() {
        // A polite session submits 1 job/s for 5 s while the pool is busy
        // elsewhere; all five are then judged in one burst of dispatches.
        // The bucket must refill against the *submit* clock, admitting all
        // of them at rate 1.0 / burst 1.
        let svc = ServiceBuilder::new()
            .layer(RateLimitLayer::new(1.0, 1.0))
            .service(Box::new(Probe));
        let t0 = Instant::now();
        for i in 0..5u64 {
            let mut ctx = JobContext::new(i, 0);
            ctx.session = SessionKey::Anonymous(9);
            ctx.submitted_at = t0 + Duration::from_secs(i);
            svc.call(&mut ctx, Bytes::new())
                .unwrap_or_else(|e| panic!("within-rate backlogged job {i} was rejected: {e:?}"));
        }
    }

    #[test]
    fn layer_keys_buckets_by_session() {
        let svc = ServiceBuilder::new()
            .layer(RateLimitLayer::new(0.001, 1.0))
            .service(Box::new(Probe));
        let mut a1 = JobContext::new(0, 0);
        a1.session = SessionKey::Anonymous(1);
        assert!(svc.call(&mut a1, Bytes::new()).is_ok());
        let mut a2 = JobContext::new(1, 0);
        a2.session = SessionKey::Anonymous(1);
        match svc.call(&mut a2, Bytes::new()) {
            Err(CloudError::RateLimited { retry_after_ms }) => assert!(retry_after_ms > 0),
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // A different session has its own untouched bucket.
        let mut b = JobContext::new(2, 0);
        b.session = SessionKey::Anonymous(2);
        assert!(svc.call(&mut b, Bytes::new()).is_ok());
    }
}
