//! The honest-but-curious adversary's vantage point.

use crate::protocol::JobResult;
use amalgam_nn::graph::GraphModel;
use amalgam_tensor::Tensor;

/// Hooks invoked with everything the cloud legitimately sees — the threat
/// model's "cloud provider as attacker" position (paper §3).
///
/// Wired into the service as a middleware stage
/// ([`crate::middleware::ObserverLayer`]); with a multi-worker pool the
/// hooks of concurrent jobs interleave, each serialized by the observer's
/// mutex. Implementations live in `amalgam-attacks`; [`RecordingObserver`]
/// is a simple capture-everything implementation for tests.
pub trait CloudObserver: Send {
    /// Called once with the decoded model, before training starts.
    fn on_model(&mut self, model: &GraphModel);

    /// Called with each training batch the cloud assembles.
    fn on_batch(&mut self, inputs: &Tensor, labels: &[usize]) {
        let _ = (inputs, labels);
    }

    /// Called after each optimizer step; `model` carries fresh parameter
    /// values *and* the gradients of the last backward pass — the raw
    /// material of gradient-leakage attacks.
    fn on_step(&mut self, model: &mut GraphModel) {
        let _ = model;
    }

    /// Called with every result the cloud sends back (the trained model is
    /// equally visible to the provider on the way out).
    fn on_result(&mut self, result: &JobResult) {
        let _ = result;
    }
}

/// An observer that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl CloudObserver for NullObserver {
    fn on_model(&mut self, _model: &GraphModel) {}
}

/// An observer that records summary statistics of what it saw.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// Node count of the observed model.
    pub model_nodes: usize,
    /// Total parameters of the observed model.
    pub model_params: usize,
    /// Number of batches observed.
    pub batches: usize,
    /// Number of optimizer steps observed.
    pub steps: usize,
    /// Number of results seen leaving the cloud.
    pub results: usize,
    /// First batch's input tensor, if any was seen.
    pub first_batch: Option<Tensor>,
}

impl RecordingObserver {
    /// A fresh recorder.
    pub fn new() -> Self {
        RecordingObserver::default()
    }
}

impl CloudObserver for RecordingObserver {
    fn on_model(&mut self, model: &GraphModel) {
        self.model_nodes = model.node_count();
        self.model_params = model.param_count();
    }

    fn on_batch(&mut self, inputs: &Tensor, _labels: &[usize]) {
        if self.first_batch.is_none() {
            self.first_batch = Some(inputs.clone());
        }
        self.batches += 1;
    }

    fn on_step(&mut self, _model: &mut GraphModel) {
        self.steps += 1;
    }

    fn on_result(&mut self, _result: &JobResult) {
        self.results += 1;
    }
}
