//! Latency histograms, trace ids and the flight recorder — the
//! dependency-free observability core.
//!
//! Three pieces, shared by the service, the transport and the proxy:
//!
//! * [`Histogram`] — a lock-free log-linear latency histogram
//!   (microseconds). Values are bucketed with 16 sub-buckets per power of
//!   two, so any reported quantile is within 1/16 (6.25%) of the true
//!   value while the whole histogram is a fixed 976 atomic counters —
//!   recording is two relaxed `fetch_add`s, a `fetch_max`, and zero locks.
//!   Snapshots are mergeable: merging per-shard snapshots is exactly the
//!   histogram of the concatenated streams (proptested against a
//!   sorted-vec oracle).
//! * [`TraceId`] — a 128-bit id minted once per job at submit time and
//!   carried end-to-end: client → proxy → backend → back, over a
//!   backward-compatible Submit/Reply extension field (see
//!   [`crate::transport`]). Every tier indexes its observations by it.
//! * [`FlightRecorder`] — a bounded ring of completed [`JobTrace`]s (the
//!   last N jobs, plus a separate ring for every *slow* job over a
//!   configurable threshold), queryable by trace id. When a job stalls or
//!   a breaker trips, the recorder answers "where did the time go" after
//!   the fact, without a debugger attached.
//!
//! Per-job timings are captured as [`SpanRecord`]s: each instrumented
//! stage ([`Stage`]) contributes one span with its start offset (relative
//! to the job's submit instant), inclusive duration and outcome. The
//! middleware stack nests spans strictly (admission contains ratelimit
//! contains auth … contains train), so a stage's *self* time is its
//! inclusive duration minus the next-inner span's — computed once at
//! finalization, not on the hot path.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per power of two: quantile error is bounded by 1/16.
const SUB_BUCKETS: usize = 16;
/// Values below this are bucketed exactly (one bucket per microsecond).
const LINEAR_CUTOFF: u64 = 16;
/// Total buckets: 16 exact + 16 per power of two for exponents 4..=63.
const NUM_BUCKETS: usize = SUB_BUCKETS + 60 * SUB_BUCKETS;

/// Bucket index for a microsecond value (log-linear, monotone).
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // >= 4
        SUB_BUCKETS + (exp - 4) * SUB_BUCKETS + ((v >> (exp - 4)) & 15) as usize
    }
}

/// Inclusive upper bound of bucket `i` — what quantiles report, so every
/// reported quantile is ≥ the true value and within 1/16 of it.
fn bucket_upper(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let exp = 4 + (i - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = ((i - SUB_BUCKETS) % SUB_BUCKETS) as u128;
        let hi = (1u128 << exp) + (sub + 1) * (1u128 << (exp - 4)) - 1;
        hi.min(u64::MAX as u128) as u64
    }
}

/// A lock-free log-linear latency histogram over microsecond values.
///
/// Fixed memory (976 atomic buckets plus count/sum/max), wait-free
/// recording, mergeable snapshots, quantile error bounded by 1/16. See the
/// [module docs](self) for the bucketing scheme.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one microsecond value. Wait-free: three relaxed atomic adds
    /// and a `fetch_max`, no locks, no allocation.
    pub fn record(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Records a [`Duration`], saturating at `u64::MAX` microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy, cheap to merge/quantile offline.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen [`Histogram`]: plain counters, mergeable and wire-encodable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (same bucketing as the live histogram).
    buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values (microseconds).
    pub sum: u64,
    /// Largest value recorded (microseconds).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value in microseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds: the upper bound of
    /// the bucket holding the rank-`ceil(q·count)` value, capped at the
    /// true max. Within 1/16 of the exact order statistic; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`. Merging shard snapshots is exactly the
    /// snapshot of the concatenated value streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Sparse wire encoding: count/sum/max then (index, count) pairs for
    /// non-empty buckets only.
    pub fn encode_into(&self, w: &mut amalgam_tensor::wire::Writer) {
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.max);
        let pairs: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
            .collect();
        w.put_u32(pairs.len() as u32);
        for (i, c) in pairs {
            w.put_u32(i as u32);
            w.put_u64(c);
        }
    }

    /// Decodes the [`encode_into`](Self::encode_into) format.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CloudError::Decode`] on truncation or an
    /// out-of-range bucket index.
    pub fn decode_from(
        r: &mut amalgam_tensor::wire::Reader,
    ) -> Result<HistogramSnapshot, crate::CloudError> {
        let err = |e: amalgam_tensor::TensorError| crate::CloudError::Decode(e.to_string());
        let mut s = HistogramSnapshot::empty();
        s.count = r.get_u64().map_err(err)?;
        s.sum = r.get_u64().map_err(err)?;
        s.max = r.get_u64().map_err(err)?;
        let pairs = r.get_u32().map_err(err)? as usize;
        if pairs > NUM_BUCKETS {
            return Err(crate::CloudError::Decode(format!(
                "{pairs} histogram buckets (max {NUM_BUCKETS})"
            )));
        }
        for _ in 0..pairs {
            let i = r.get_u32().map_err(err)? as usize;
            let c = r.get_u64().map_err(err)?;
            if i >= NUM_BUCKETS {
                return Err(crate::CloudError::Decode(format!(
                    "histogram bucket index {i} out of range"
                )));
            }
            s.buckets[i] = c;
        }
        Ok(s)
    }
}

/// A 128-bit end-to-end trace id, minted once per job at submit time.
///
/// Displayed as 32 lowercase hex digits; carried on the wire as two `u64`
/// words in a backward-compatible Submit/Reply extension (peers that
/// negotiated protocol v1 never see it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u128);

/// splitmix64 finalizer: cheap, well-mixed.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TraceId {
    /// The absent trace (all zero) — what a v1 peer is treated as sending.
    pub const NONE: TraceId = TraceId(0);

    /// Mints a fresh id: wall-clock nanos, a process-wide counter and an
    /// ASLR-seeded constant, mixed through splitmix64. No RNG dependency;
    /// uniqueness (not unpredictability) is the goal.
    pub fn mint() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // The address of a static differs per process under ASLR, keeping
        // ids from colliding across processes started the same nanosecond.
        let aslr = &COUNTER as *const _ as u64;
        let hi = mix64(t ^ aslr);
        let lo = mix64(n.wrapping_add(hi) ^ t.rotate_left(32));
        let id = ((hi as u128) << 64) | lo as u128;
        // Reserve 0 for "absent".
        TraceId(if id == 0 { 1 } else { id })
    }

    /// Rebuilds an id from its two wire words (`hi`, `lo`).
    pub fn from_words(hi: u64, lo: u64) -> TraceId {
        TraceId(((hi as u128) << 64) | lo as u128)
    }

    /// The id's two wire words (`hi`, `lo`).
    pub fn to_words(self) -> (u64, u64) {
        ((self.0 >> 64) as u64, self.0 as u64)
    }

    /// True for [`TraceId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Every instrumented stage across the three tiers. The discriminant is
/// the wire encoding and the per-stage histogram index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Submit-to-dequeue wait in the fair dispatcher.
    QueueWait = 0,
    /// The panic-catching layer (self time ≈ 0 unless a panic unwound).
    Panic = 1,
    /// Queue-depth admission control.
    Admission = 2,
    /// Content-addressed dedup / result cache write side.
    Dedup = 3,
    /// Per-session token-bucket rate limiting.
    RateLimit = 4,
    /// Session API-key check.
    Auth = 5,
    /// A builder-installed custom layer.
    Custom = 6,
    /// Wire-bytes → `CloudJob` + model decode.
    Decode = 7,
    /// The `BadJob` validation checks.
    Validate = 8,
    /// The adversary-model observer tap.
    Observer = 9,
    /// Algorithm 1 itself.
    Train = 10,
    /// One reactor write-queue flush (socket write burst).
    ReactorFlush = 11,
    /// Proxy-measured backend round-trip: Submit forwarded → Reply seen.
    BackendRtt = 12,
    /// Client-measured submit-to-reply round-trip.
    Rpc = 13,
    /// Encoding and storing one mid-training checkpoint.
    CheckpointWrite = 14,
    /// Loading, validating and applying a checkpoint at resume.
    CheckpointRestore = 15,
}

impl Stage {
    /// Every stage, in discriminant order.
    pub const ALL: [Stage; 16] = [
        Stage::QueueWait,
        Stage::Panic,
        Stage::Admission,
        Stage::Dedup,
        Stage::RateLimit,
        Stage::Auth,
        Stage::Custom,
        Stage::Decode,
        Stage::Validate,
        Stage::Observer,
        Stage::Train,
        Stage::ReactorFlush,
        Stage::BackendRtt,
        Stage::Rpc,
        Stage::CheckpointWrite,
        Stage::CheckpointRestore,
    ];

    /// Stable snake-case name (Prometheus label / table row).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Panic => "panic",
            Stage::Admission => "admission",
            Stage::Dedup => "dedup",
            Stage::RateLimit => "ratelimit",
            Stage::Auth => "auth",
            Stage::Custom => "custom",
            Stage::Decode => "decode",
            Stage::Validate => "validate",
            Stage::Observer => "observer",
            Stage::Train => "train",
            Stage::ReactorFlush => "reactor_flush",
            Stage::BackendRtt => "backend_rtt",
            Stage::Rpc => "rpc",
            Stage::CheckpointWrite => "checkpoint_write",
            Stage::CheckpointRestore => "checkpoint_restore",
        }
    }

    /// Maps a [`crate::CloudLayer::name`] to its stage; unrecognized
    /// layers (builder-installed ones) time under [`Stage::Custom`].
    pub fn from_layer_name(name: &str) -> Stage {
        match name {
            "panic" => Stage::Panic,
            "admission" => Stage::Admission,
            "dedup" => Stage::Dedup,
            "ratelimit" => Stage::RateLimit,
            "auth" => Stage::Auth,
            "decode" => Stage::Decode,
            "validate" => Stage::Validate,
            "observer" => Stage::Observer,
            "train" => Stage::Train,
            _ => Stage::Custom,
        }
    }

    /// Decodes a wire discriminant.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CloudError::Decode`] for an unknown discriminant.
    pub fn from_u8(tag: u8) -> Result<Stage, crate::CloudError> {
        Stage::ALL
            .get(tag as usize)
            .copied()
            .ok_or_else(|| crate::CloudError::Decode(format!("unknown stage tag {tag}")))
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timed stage of one job: where a slice of the job's wall time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which stage this span timed.
    pub stage: Stage,
    /// Start offset in microseconds from the job's submit instant.
    pub start_us: u64,
    /// Inclusive duration in microseconds (contains nested spans).
    pub dur_us: u64,
    /// Whether the stage (and everything inside it) succeeded.
    pub ok: bool,
}

/// The flight-recorder record of one completed job: its trace id and
/// every span observed at this tier, in outermost-first nesting order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    /// The job's end-to-end trace id.
    pub trace: TraceId,
    /// The tier-local job/request id.
    pub job_id: u64,
    /// Submit-to-finish wall time at this tier, microseconds.
    pub total_us: u64,
    /// Whether the job succeeded.
    pub ok: bool,
    /// Per-stage spans, outermost first.
    pub spans: Vec<SpanRecord>,
}

/// A bounded ring buffer of completed [`JobTrace`]s: the last N jobs plus
/// a separate ring of every *slow* job (total time over the threshold), so
/// a burst of fast jobs cannot evict the interesting outliers.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    slow_threshold_us: u64,
    recent: Mutex<VecDeque<JobTrace>>,
    slow: Mutex<VecDeque<JobTrace>>,
}

impl FlightRecorder {
    /// Creates a recorder keeping `capacity` recent (and up to `capacity`
    /// slow) traces; jobs over `slow_threshold` also land in the slow ring.
    pub fn new(capacity: usize, slow_threshold: Duration) -> FlightRecorder {
        FlightRecorder {
            capacity,
            slow_threshold_us: u64::try_from(slow_threshold.as_micros()).unwrap_or(u64::MAX),
            recent: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    /// Records one completed job (a no-op when capacity is 0).
    pub fn push(&self, trace: JobTrace) {
        if self.capacity == 0 {
            return;
        }
        if trace.total_us >= self.slow_threshold_us {
            let mut slow = self.slow.lock();
            if slow.len() == self.capacity {
                slow.pop_front();
            }
            slow.push_back(trace.clone());
        }
        let mut recent = self.recent.lock();
        if recent.len() == self.capacity {
            recent.pop_front();
        }
        recent.push_back(trace);
    }

    /// Looks a trace up by id — slow ring first (it retains longer), then
    /// the recent ring.
    pub fn find(&self, trace: TraceId) -> Option<JobTrace> {
        if let Some(t) = self.slow.lock().iter().rev().find(|t| t.trace == trace) {
            return Some(t.clone());
        }
        self.recent
            .lock()
            .iter()
            .rev()
            .find(|t| t.trace == trace)
            .cloned()
    }

    /// The recent ring, oldest first.
    pub fn recent(&self) -> Vec<JobTrace> {
        self.recent.lock().iter().cloned().collect()
    }

    /// The slow ring, oldest first.
    pub fn slow(&self) -> Vec<JobTrace> {
        self.slow.lock().iter().cloned().collect()
    }
}

/// Telemetry tunables, set through
/// [`crate::CloudServiceBuilder::telemetry`] and friends.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Master switch: `false` skips span recording and histogram updates
    /// (the <5% overhead gate compares the two).
    pub enabled: bool,
    /// Flight-recorder ring capacity (recent and slow rings each).
    pub recorder_capacity: usize,
    /// Jobs at least this slow also land in the slow ring.
    pub slow_threshold: Duration,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            recorder_capacity: 256,
            slow_threshold: Duration::from_secs(1),
        }
    }
}

/// One tier's telemetry plane: a histogram per [`Stage`] plus the
/// [`FlightRecorder`]. Lives inside [`crate::ServiceMetrics`] so every
/// component that already carries metrics gets tracing for free.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    hists: Vec<Histogram>,
    recorder: FlightRecorder,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new(&TelemetryConfig::default())
    }
}

impl Telemetry {
    /// Builds the plane from its config.
    pub fn new(config: &TelemetryConfig) -> Telemetry {
        Telemetry {
            enabled: config.enabled,
            hists: (0..Stage::ALL.len()).map(|_| Histogram::new()).collect(),
            recorder: FlightRecorder::new(
                if config.enabled {
                    config.recorder_capacity
                } else {
                    0
                },
                config.slow_threshold,
            ),
        }
    }

    /// Whether recording is on (checked by every hot path before timing).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The live histogram for `stage`.
    pub fn hist(&self, stage: Stage) -> &Histogram {
        &self.hists[stage as usize]
    }

    /// Records `d` into `stage`'s histogram, if enabled.
    pub fn record(&self, stage: Stage, d: Duration) {
        if self.enabled {
            self.hist(stage).record_duration(d);
        }
    }

    /// The tier's flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Snapshots every stage histogram that recorded at least one value.
    pub fn snapshot(&self) -> Vec<(Stage, HistogramSnapshot)> {
        Stage::ALL
            .iter()
            .filter(|&&s| self.hist(s).count() > 0)
            .map(|&s| (s, self.hist(s).snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_upper_bound_holds() {
        let mut prev = 0usize;
        for v in (0..4096u64).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i >= prev || v < 4096, "index must be monotone at {v}");
            prev = prev.max(i);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            let hi = bucket_upper(i);
            assert!(hi >= v, "upper bound {hi} below value {v}");
            // Relative error bound: upper ≤ v + max(1, v/16).
            assert!(
                hi - v <= (v / 16).max(1),
                "bucket too wide at {v}: upper {hi}"
            );
        }
    }

    #[test]
    fn quantiles_match_exact_order_statistics_within_bound() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..1000).map(|i| (i * i) % 7919 + i).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        for q in [0.5, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let got = s.quantile(q);
            assert!(got >= exact, "q{q}: {got} < exact {exact}");
            assert!(
                got - exact <= (exact / 16).max(1),
                "q{q}: {got} vs exact {exact}"
            );
        }
        assert_eq!(s.quantile(1.0), *values.last().unwrap());
        assert_eq!(s.max, *values.last().unwrap());
    }

    #[test]
    fn merge_of_shards_equals_whole() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for i in 0..500u64 {
            let v = i * 37 % 10007;
            if i % 2 == 0 { &a } else { &b }.record(v);
            whole.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn snapshot_wire_roundtrip_is_identity() {
        let h = Histogram::new();
        for v in [0, 1, 15, 16, 17, 1000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut w = amalgam_tensor::wire::Writer::new();
        s.encode_into(&mut w);
        let mut r = amalgam_tensor::wire::Reader::new(w.finish());
        let back = HistogramSnapshot::decode_from(&mut r).unwrap();
        assert_eq!(back, s);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn trace_ids_are_unique_and_roundtrip_words() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = TraceId::mint();
            assert!(!id.is_none());
            assert!(seen.insert(id), "duplicate trace id {id}");
            let (hi, lo) = id.to_words();
            assert_eq!(TraceId::from_words(hi, lo), id);
        }
        assert_eq!(format!("{}", TraceId::NONE).len(), 32);
    }

    #[test]
    fn flight_recorder_keeps_slow_jobs_past_recent_eviction() {
        let rec = FlightRecorder::new(4, Duration::from_millis(100));
        let mk = |id: u64, total_us: u64| JobTrace {
            trace: TraceId::from_words(0, id),
            job_id: id,
            total_us,
            ok: true,
            spans: vec![],
        };
        rec.push(mk(1, 200_000)); // slow
        for id in 2..=10 {
            rec.push(mk(id, 50)); // fast, evicts recents
        }
        assert_eq!(rec.recent().len(), 4);
        assert!(rec.find(TraceId::from_words(0, 1)).is_some(), "slow kept");
        assert!(
            rec.find(TraceId::from_words(0, 2)).is_none(),
            "fast evicted"
        );
        assert_eq!(rec.slow().len(), 1);
    }

    #[test]
    fn stage_tags_roundtrip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_u8(s as u8).unwrap(), s);
            assert_eq!(Stage::from_layer_name(s.as_str()), {
                // Names that are real layers map back; the rest are Custom.
                match s {
                    Stage::QueueWait
                    | Stage::Custom
                    | Stage::ReactorFlush
                    | Stage::BackendRtt
                    | Stage::Rpc
                    | Stage::CheckpointWrite
                    | Stage::CheckpointRestore => Stage::Custom,
                    other => other,
                }
            });
        }
        assert!(Stage::from_u8(200).is_err());
    }
}
