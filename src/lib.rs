//! # Amalgam
//!
//! A framework for **obfuscated neural network training on untrusted clouds**,
//! reproducing Taki & Mastorakis, *"Amalgam: A Framework for Obfuscated Neural
//! Network Training on the Cloud"*, MIDDLEWARE 2024.
//!
//! Training a proprietary model on a proprietary dataset in a public cloud
//! exposes both to the provider. Amalgam hides them by *augmentation*: noise
//! values are inserted at secret indices of every sample, and the model is
//! wrapped in a maze of synthetic sub-networks whose first layers are custom
//! masked convolutions/embeddings, each reading a different (secret) subset of
//! the augmented input. The sub-network holding the original layers reads
//! exactly the original values and never receives input from synthetic layers,
//! so the original parameters train exactly as they would have locally. After
//! cloud training, the original model is extracted and used with the original
//! data.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense `f32` tensors and compute kernels,
//! * [`nn`] — layers, the graph IR, losses and optimizers,
//! * [`data`] — synthetic stand-ins for the paper's six datasets,
//! * [`models`] — LeNet-5, ResNet-18, VGG-16, DenseNet-121, MobileNetV2,
//!   a text classifier and a transformer language model,
//! * [`core`] — the Amalgam contribution: dataset/model augmenters, masked
//!   layers, the extractor, Algorithm-1 trainer and privacy math,
//! * [`cloud`] — the untrusted training service: a composable middleware
//!   pipeline (decode/validate/observe/metrics/admission/ratelimit/auth/
//!   panic layers) over a multi-worker scheduler with per-session
//!   rate limiting and weighted deficit-round-robin fairness, plus a
//!   framed TCP transport (`cloud::transport`) so jobs can cross a real
//!   wire — `CloudServer` in front of the pool, `RemoteCloudClient` on
//!   the other end,
//! * [`attacks`] — DLG/iDLG, KernelSHAP, denoising and brute-force analyses,
//! * [`baselines`] — vanilla, MPC, HE, DISCO-like and TEE/CPU comparators.
//!
//! # Quickstart
//!
//! ```
//! use amalgam::prelude::*;
//!
//! // A tiny model and a tiny synthetic dataset.
//! let mut rng = Rng::seed_from(7);
//! let model = amalgam::models::lenet5(1, 8, 10, &mut rng);
//! let data = amalgam::data::SyntheticImageSpec::mnist_like()
//!     .with_counts(64, 16)
//!     .with_hw(8)
//!     .generate(&mut rng);
//!
//! // Obfuscate both, exactly as they would be shipped to the cloud.
//! let cfg = ObfuscationConfig::new(0.5).with_seed(42);
//! let bundle = Amalgam::obfuscate(&model, &data, &cfg)?;
//! assert!(bundle.augmented_model.param_count() > model.param_count());
//! # Ok::<(), amalgam::core::AmalgamError>(())
//! ```

pub use amalgam_attacks as attacks;
pub use amalgam_baselines as baselines;
pub use amalgam_cloud as cloud;
pub use amalgam_core as core;
pub use amalgam_data as data;
pub use amalgam_models as models;
pub use amalgam_nn as nn;
pub use amalgam_proxy as proxy;
pub use amalgam_tensor as tensor;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use amalgam_cloud::{
        ClientStats, CloudClient, CloudError, CloudJob, CloudServer, CloudService, JobResult,
        ReconnectPolicy, RemoteCloudClient, RemoteJobHandle, ServiceStats, TaskPayload,
        TransportConfig,
    };
    pub use amalgam_core::{
        Amalgam, AugmentationAmount, NoiseKind, ObfuscationConfig, TrainConfig,
    };
    pub use amalgam_nn::graph::GraphModel;
    pub use amalgam_nn::Mode;
    pub use amalgam_tensor::{Rng, Tensor};
}
