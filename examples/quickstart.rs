//! Quickstart: the full Amalgam pipeline in one file.
//!
//! 1. Build a model and a (synthetic) dataset.
//! 2. Obfuscate both with Amalgam.
//! 3. Train the augmented artifacts (here: locally, standing in for the cloud).
//! 4. Extract the original model and validate it on the original test set.
//!
//! Run with: `cargo run --release --example quickstart`

use amalgam::core::trainer::{evaluate_image_classifier, train_image_classifier};
use amalgam::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(7);

    // A LeNet-5 and an MNIST-like synthetic dataset (shrunk for speed).
    let hw = 12;
    let model = amalgam::models::lenet5(1, hw, 10, &mut rng);
    let data = amalgam::data::SyntheticImageSpec::mnist_like()
        .with_counts(768, 128)
        .with_hw(hw)
        .generate(&mut rng);
    println!("original model: {} parameters", model.param_count());

    // Obfuscate: 50 % dataset + model augmentation, 3 synthetic sub-networks.
    let cfg = ObfuscationConfig::new(0.5).with_seed(42).with_subnets(3);
    let bundle = Amalgam::obfuscate(&model, &data, &cfg)?;
    let (c, ah, aw) = bundle.augmented_train.sample_dims();
    println!(
        "augmented model: {} parameters across {} heads; augmented images: {c}×{ah}×{aw}",
        bundle.augmented_model.param_count(),
        bundle.augmented_model.outputs().len(),
    );
    println!("layout search space: {}", bundle.plan.search_space());

    // "Cloud" training (Algorithm 1): every head gets its own loss.
    let mut augmented = bundle.augmented_model;
    let tc = TrainConfig::new(4, 32, 0.03)
        .with_momentum(0.9)
        .with_seed(7);
    let history = train_image_classifier(
        &mut augmented,
        &bundle.augmented_train,
        Some(&bundle.augmented_test),
        bundle.secrets.original_output,
        &tc,
    );
    println!(
        "augmented training: loss {:.3} → {:.3}, val acc {:.1}%",
        history.train_loss.first().unwrap(),
        history.train_loss.last().unwrap(),
        history.final_val_acc().unwrap() * 100.0
    );

    // Extraction: the original architecture with the trained weights.
    let extracted = Amalgam::extract(&augmented, &model, &bundle.secrets)?;
    println!("extraction took {:.2} ms", extracted.seconds * 1e3);
    let mut clean = extracted.model;
    let (loss, acc) = evaluate_image_classifier(&mut clean, &data.test, 0, 32);
    println!(
        "extracted model on ORIGINAL test set: loss {loss:.3}, acc {:.1}%",
        acc * 100.0
    );
    Ok(())
}
