//! NLP obfuscation: augmenting a text classifier and its (synthetic) AGNews
//! corpus, training, and extracting — paper §4.2's "NLP Model Augmentation".
//!
//! Run with: `cargo run --release --example nlp_obfuscation`

use amalgam::core::trainer::{train_text_classifier, EvalSource};
use amalgam::core::{augment_nlp, augment_text_class, AugmentConfig, NlpTask, TextPlan};
use amalgam::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(21);
    let (vocab, doc_len) = (400usize, 24usize);
    let (train, test) = amalgam::data::TextClassSpec::agnews_like()
        .with_vocab(vocab)
        .with_counts(768, 128)
        .with_doc_len(doc_len)
        .generate(&mut rng);
    let model = amalgam::models::text_classifier(vocab, 16, 4, &mut rng);
    println!("text classifier: {} parameters", model.param_count());

    // Augment the corpus (75 % noise tokens) and the model.
    let plan = TextPlan::random(doc_len, 0.75, &mut rng);
    println!(
        "documents grow {} → {} tokens; layout search space {}",
        plan.orig_len(),
        plan.aug_len(),
        plan.search_space()
    );
    let aug_train = augment_text_class(&train, &plan, &NoiseKind::UniformRandom, &mut rng);
    let aug_test = augment_text_class(&test, &plan, &NoiseKind::UniformRandom, &mut rng);
    let acfg = AugmentConfig::new(0.75).with_seed(9).with_subnets(2);
    let (mut aug_model, secrets) =
        augment_nlp(&model, &plan, NlpTask::Classification { classes: 4 }, &acfg)?;
    println!(
        "augmented model: {} parameters, {} heads",
        aug_model.param_count(),
        aug_model.outputs().len()
    );

    // Train (Algorithm 1) on the augmented corpus.
    let tc = TrainConfig::new(5, 32, 0.5).with_seed(2);
    let history = train_text_classifier(
        &mut aug_model,
        &aug_train.dataset,
        Some(&aug_test.dataset),
        secrets.original_output,
        &tc,
    );
    println!(
        "augmented validation accuracy: {:.1}%",
        history.final_val_acc().unwrap() * 100.0
    );

    // Extract and validate with the ORIGINAL corpus.
    let extracted = amalgam::core::extract(&aug_model, &model, &secrets)?;
    let mut clean = extracted.model;
    let (_, acc) = test.evaluate(&mut clean, 0, 32);
    println!(
        "extracted model on original test documents: {:.1}%",
        acc * 100.0
    );
    Ok(())
}
