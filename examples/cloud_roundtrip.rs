//! Cloud round trip: ship an obfuscated job across the simulated trust
//! boundary, train it remotely, and verify what the adversary saw.
//!
//! This is the paper's Figure 1 workflow end to end, with a curious observer
//! standing in for the honest-but-curious provider — wired in as the
//! service's observer middleware layer, beneath decode and validation and
//! above the trainer (see the `amalgam::cloud` docs for the stack diagram).
//!
//! Run with: `cargo run --release --example cloud_roundtrip`

use amalgam::cloud::{CloudObserver, CloudService};
use amalgam::core::trainer::evaluate_image_classifier;
use amalgam::nn::graph::{GraphModel, Provenance};
use amalgam::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

/// The provider's view: counts what it can and cannot learn.
#[derive(Default)]
struct CuriousProvider {
    nodes_seen: usize,
    params_seen: usize,
    provenance_leaks: usize,
    batches: usize,
    results_seen: usize,
}

impl CloudObserver for CuriousProvider {
    fn on_model(&mut self, model: &GraphModel) {
        self.nodes_seen = model.node_count();
        self.params_seen = model.param_count();
        // Anything not `Unknown` would be a provenance leak across the wire.
        self.provenance_leaks = model
            .node_ids()
            .filter(|&id| model.node(id).provenance() != Provenance::Unknown)
            .count();
    }

    fn on_batch(&mut self, _inputs: &Tensor, _labels: &[usize]) {
        self.batches += 1;
    }

    fn on_result(&mut self, _result: &JobResult) {
        self.results_seen += 1;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(3);
    let hw = 12;
    let model = amalgam::models::lenet5(1, hw, 10, &mut rng);
    let data = amalgam::data::SyntheticImageSpec::mnist_like()
        .with_counts(512, 128)
        .with_hw(hw)
        .generate(&mut rng);

    // Client side: obfuscate, then serialize the job.
    let bundle = Amalgam::obfuscate(&model, &data, &ObfuscationConfig::new(0.75).with_seed(5))?;
    let job = CloudJob {
        model: bundle.augmented_model.to_bytes(),
        task: TaskPayload::Classification {
            inputs: bundle.augmented_train.images().clone(),
            labels: bundle.augmented_train.labels().to_vec(),
            val_inputs: Some(bundle.augmented_test.images().clone()),
            val_labels: bundle.augmented_test.labels().to_vec(),
        },
        train: TrainConfig::new(3, 32, 0.03)
            .with_momentum(0.9)
            .with_seed(11),
    };

    // Cloud side: a two-worker pool with an attached curious observer and
    // admission control, all composed as middleware.
    let observer = Arc::new(Mutex::new(CuriousProvider::default()));
    let service = CloudService::builder()
        .workers(2)
        .observer(observer.clone())
        .max_queue_depth(64)
        .build();
    let result = service.client().train(&job)?;

    println!(
        "uploaded {} KiB, downloaded {} KiB (job #{})",
        result.bytes_received / 1024,
        result.bytes_sent / 1024,
        result.job_id,
    );
    println!(
        "cloud trained for {:.2}s over {} epochs",
        result.train_seconds,
        result.history.epochs()
    );
    let stats = service.stats();
    println!(
        "service telemetry: {} submitted / {} completed, mean {:.2}s/job, {:.2} jobs/s, {} B in / {} B out",
        stats.jobs_submitted,
        stats.jobs_completed,
        stats.mean_job_seconds,
        stats.jobs_per_second,
        stats.bytes_received,
        stats.bytes_sent,
    );
    service.shutdown();
    {
        let view = observer.lock();
        println!(
            "the provider saw {} nodes / {} params / {} batches / {} results — and {} provenance leaks",
            view.nodes_seen, view.params_seen, view.batches, view.results_seen, view.provenance_leaks
        );
        assert_eq!(
            view.provenance_leaks, 0,
            "the wire must not reveal sub-network identity"
        );
    }

    // Client side: decode, extract, validate on the original test data.
    let trained = GraphModel::from_bytes(result.trained_model)?;
    let extracted = Amalgam::extract(&trained, &model, &bundle.secrets)?;
    let mut clean = extracted.model;
    let (_, acc) = evaluate_image_classifier(&mut clean, &data.test, 0, 32);
    println!(
        "extracted model accuracy on original test set: {:.1}%",
        acc * 100.0
    );
    Ok(())
}
