//! Attack resilience: run the paper's §6.3 analyses against one obfuscated
//! bundle — brute force, iDLG/DLG, and denoising.
//!
//! The DLG attack is mounted the way the threat model actually allows:
//! a [`GradientTap`] observer attached to a running [`CloudService`]
//! harvests the first single-sample gradient and batch from the service's
//! observer middleware layer, and gradient matching runs on that capture.
//!
//! Run with: `cargo run --release --example attack_resilience`

use amalgam::attacks::bruteforce::search_space;
use amalgam::attacks::denoise::{bilinear_resize, gaussian_denoise};
use amalgam::attacks::dlg::{dlg_attack, DlgConfig, HeadTarget};
use amalgam::attacks::observer::GradientTap;
use amalgam::attacks::psnr;
use amalgam::cloud::CloudService;
use amalgam::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(13);
    let hw = 8;
    let model = amalgam::models::lenet5(1, hw, 10, &mut rng);
    let data = amalgam::data::SyntheticImageSpec::mnist_like()
        .with_counts(32, 8)
        .with_hw(hw)
        .generate(&mut rng);
    let bundle = Amalgam::obfuscate(&model, &data, &ObfuscationConfig::new(0.5).with_seed(4))?;

    // 1. Brute force: how many layouts would the provider have to try?
    let (ah, aw) = bundle.plan.aug_hw();
    let inserted = bundle.plan.inserted();
    println!(
        "brute-force attack: C({}, {inserted}) = {} candidate layouts",
        ah * aw,
        search_space(ah * aw, inserted)
    );

    // 2. DLG from the cloud's own vantage point: run the job on the service
    //    with a gradient tap in the observer layer (batch_size 1, one
    //    epoch), then gradient-match against what the tap captured.
    let job = CloudJob {
        model: bundle.augmented_model.to_bytes(),
        task: TaskPayload::Classification {
            inputs: bundle.augmented_train.images().clone(),
            labels: bundle.augmented_train.labels().to_vec(),
            val_inputs: None,
            val_labels: vec![],
        },
        train: TrainConfig::new(1, 1, 0.05).with_seed(21),
    };
    let tap = Arc::new(Mutex::new(GradientTap::new()));
    let service = CloudService::start_with_observer(tap.clone());
    service.client().train(&job)?;
    service.shutdown();
    let (target, dlg_dims, dlg_label) = {
        let guard = tap.lock();
        let (x, y) = guard
            .first_batch
            .as_ref()
            .expect("tap captured no batch")
            .clone();
        (
            guard
                .first_gradient
                .clone()
                .expect("tap captured no gradient"),
            x.dims().to_vec(),
            y[0],
        )
    };
    let mut aug = bundle.augmented_model.clone();
    let cfg = DlgConfig {
        iterations: 25,
        ..DlgConfig::default()
    };
    let out = dlg_attack(
        &mut aug,
        &dlg_dims,
        dlg_label,
        HeadTarget::All,
        &target,
        None,
        &cfg,
    );
    println!(
        "DLG attack (cloud-tapped gradient): objective {:.3} → {:.3} after {} iterations (no convergence)",
        out.objective.first().unwrap(),
        out.objective.last().unwrap(),
        cfg.iterations
    );

    // 3. Denoising: smoothing the augmented image cannot undo pixel insertion.
    let clean = data.train.batch(0, 1).0.reshape(&[1, hw, hw]);
    let aug_img = bundle.augmented_train.batch(0, 1).0.reshape(&[1, ah, aw]);
    let denoised = gaussian_denoise(&aug_img, 1.0);
    let attacker_view = bilinear_resize(&denoised, hw, hw);
    println!(
        "denoising attack: PSNR of the recovered view is {:.1} dB (≥30 dB would be a faithful image)",
        psnr(&clean, &attacker_view, 1.0)
    );
    Ok(())
}
