//! Attack resilience: run the paper's §6.3 analyses against one obfuscated
//! bundle — brute force, iDLG/DLG, and denoising.
//!
//! Run with: `cargo run --release --example attack_resilience`

use amalgam::attacks::bruteforce::search_space;
use amalgam::attacks::denoise::{bilinear_resize, gaussian_denoise};
use amalgam::attacks::dlg::{dlg_attack, observed_gradient, DlgConfig, HeadTarget};
use amalgam::attacks::psnr;
use amalgam::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(13);
    let hw = 8;
    let model = amalgam::models::lenet5(1, hw, 10, &mut rng);
    let data = amalgam::data::SyntheticImageSpec::mnist_like()
        .with_counts(32, 8)
        .with_hw(hw)
        .generate(&mut rng);
    let bundle = Amalgam::obfuscate(&model, &data, &ObfuscationConfig::new(0.5).with_seed(4))?;

    // 1. Brute force: how many layouts would the provider have to try?
    let (ah, aw) = bundle.plan.aug_hw();
    let inserted = bundle.plan.inserted();
    println!(
        "brute-force attack: C({}, {inserted}) = {} candidate layouts",
        ah * aw,
        search_space(ah * aw, inserted)
    );

    // 2. DLG: gradient matching against the augmented model fails to
    //    converge within the paper's iteration budget.
    let mut aug = bundle.augmented_model.clone();
    let (img, labels) = bundle.augmented_train.batch(0, 1);
    let target = observed_gradient(&mut aug, &img, labels[0], HeadTarget::All);
    let cfg = DlgConfig { iterations: 25, ..DlgConfig::default() };
    let out = dlg_attack(&mut aug, img.dims(), labels[0], HeadTarget::All, &target, None, &cfg);
    println!(
        "DLG attack: gradient-matching objective {:.3} → {:.3} after {} iterations (no convergence)",
        out.objective.first().unwrap(),
        out.objective.last().unwrap(),
        cfg.iterations
    );

    // 3. Denoising: smoothing the augmented image cannot undo pixel insertion.
    let clean = data.train.batch(0, 1).0.reshape(&[1, hw, hw]);
    let aug_img = bundle.augmented_train.batch(0, 1).0.reshape(&[1, ah, aw]);
    let denoised = gaussian_denoise(&aug_img, 1.0);
    let attacker_view = bilinear_resize(&denoised, hw, hw);
    println!(
        "denoising attack: PSNR of the recovered view is {:.1} dB (≥30 dB would be a faithful image)",
        psnr(&clean, &attacker_view, 1.0)
    );
    Ok(())
}
