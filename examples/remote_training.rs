//! The paper's workflow over a real wire: obfuscate locally, upload the
//! augmented job to a TCP cloud service, train remotely, extract locally.
//!
//! Where `cloud_roundtrip` calls the service as a same-process object, this
//! example puts the middleware stack behind an actual socket: a
//! `CloudServer` listens on loopback, a `RemoteCloudClient` handshakes
//! (protocol version + API key), frames the job onto the connection, and
//! matches the out-of-order reply back to its handle. The trained bytes are
//! verified bitwise against an in-process submission to the same pool —
//! the wire adds transport, not arithmetic.
//!
//! Run with: `cargo run --release --example remote_training`

use amalgam::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(17);
    let hw = 12;
    let model = amalgam::models::lenet5(1, hw, 10, &mut rng);
    let data = amalgam::data::SyntheticImageSpec::mnist_like()
        .with_counts(256, 64)
        .with_hw(hw)
        .generate(&mut rng);

    // Client side: obfuscate, then serialize the job.
    let bundle = Amalgam::obfuscate(&model, &data, &ObfuscationConfig::new(0.5).with_seed(5))?;
    let job = CloudJob {
        model: bundle.augmented_model.to_bytes(),
        task: TaskPayload::Classification {
            inputs: bundle.augmented_train.images().clone(),
            labels: bundle.augmented_train.labels().to_vec(),
            val_inputs: None,
            val_labels: vec![],
        },
        train: TrainConfig::new(2, 32, 0.03)
            .with_momentum(0.9)
            .with_seed(11),
    };

    // Cloud side: a keyed two-worker pool behind a loopback listener.
    let service = CloudService::builder()
        .workers(2)
        .api_keys(["demo-key"])
        .max_queue_depth(64)
        .build();
    let server = CloudServer::bind(service, "127.0.0.1:0")?;
    println!("cloud listening on {}", server.local_addr());

    // The trust boundary, for real this time: every byte below crosses TCP.
    let client = RemoteCloudClient::connect_with(
        server.local_addr(),
        TransportConfig::default().api_key("demo-key"),
    )?;
    println!(
        "session up: protocol v{}, {} in-flight slots",
        client.protocol_version(),
        client.max_in_flight()
    );
    let handle = client.submit(&job)?;
    println!("submitted request #{} — waiting on the wire…", handle.id());
    let result = handle.wait()?;
    println!(
        "uploaded {} KiB, downloaded {} KiB, trained {:.2}s over {} epochs",
        result.bytes_received / 1024,
        result.bytes_sent / 1024,
        result.train_seconds,
        result.history.epochs()
    );

    // Bitwise equivalence: the same job through the same pool, in-process.
    let local = server.local_client().with_api_key("demo-key").train(&job)?;
    assert_eq!(
        result.trained_model, local.trained_model,
        "the wire must add transport, not arithmetic"
    );
    println!("remote and in-process trained models are bitwise identical");

    // The observability plane, over the same wire: the `GetStats` admin
    // frame returns the service's full snapshot — counters plus per-stage
    // latency quantiles — and both stats types render operator tables.
    let stats = client.fetch_stats()?;
    println!("--- service stats (via GetStats frame) ---");
    println!("{stats}");
    println!("--- client stats ---");
    println!("{}", client.stats());
    client.close();
    server.shutdown();

    // Client side: decode, extract, and use the original model locally.
    let trained = GraphModel::from_bytes(result.trained_model)?;
    let extracted = Amalgam::extract(&trained, &model, &bundle.secrets)?;
    let mut clean = extracted.model;
    let (_, acc) = amalgam::core::trainer::evaluate_image_classifier(&mut clean, &data.test, 0, 32);
    println!(
        "extracted model accuracy on original test set: {:.1}%",
        acc * 100.0
    );
    Ok(())
}
