//! The paper's workflow over a real wire: obfuscate locally, upload the
//! augmented job to a TCP cloud service, train remotely, extract locally.
//!
//! Where `cloud_roundtrip` calls the service as a same-process object, this
//! example puts the middleware stack behind an actual socket: a
//! `CloudServer` listens on loopback, a `RemoteCloudClient` handshakes
//! (protocol version + API key), frames the job onto the connection, and
//! matches the out-of-order reply back to its handle. The trained bytes are
//! verified bitwise against an in-process submission to the same pool —
//! the wire adds transport, not arithmetic.
//!
//! The second act is the durable lifecycle: the same job resubmitted as a
//! long-running *daemon* workload — per-epoch progress streamed back over
//! the wire, checkpoints written to disk at every epoch boundary, the
//! backend deliberately killed mid-job and restarted on the same
//! checkpoint directory. The self-healing client reconnects, replays the
//! job, and the restarted daemon resumes from the last snapshot instead of
//! retraining from scratch — finishing bitwise identical to a run that was
//! never interrupted.
//!
//! Run with: `cargo run --release --example remote_training`

use amalgam::cloud::{CheckpointStore, CloudObserver, FileCheckpointStore};
use amalgam::prelude::*;
use amalgam::proxy::{Fault, FaultInjector};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Paces training to a daemon-like cadence so the mid-job kill below lands
/// between epochs, not after the job already finished. The hook only
/// sleeps — training arithmetic is untouched.
struct PacedEpochs(Duration);

impl CloudObserver for PacedEpochs {
    fn on_model(&mut self, _model: &GraphModel) {}

    fn on_batch(&mut self, _inputs: &Tensor, _labels: &[usize]) {
        std::thread::sleep(self.0);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(17);
    let hw = 12;
    let model = amalgam::models::lenet5(1, hw, 10, &mut rng);
    let data = amalgam::data::SyntheticImageSpec::mnist_like()
        .with_counts(256, 64)
        .with_hw(hw)
        .generate(&mut rng);

    // Client side: obfuscate, then serialize the job.
    let bundle = Amalgam::obfuscate(&model, &data, &ObfuscationConfig::new(0.5).with_seed(5))?;
    let job = CloudJob {
        model: bundle.augmented_model.to_bytes(),
        task: TaskPayload::Classification {
            inputs: bundle.augmented_train.images().clone(),
            labels: bundle.augmented_train.labels().to_vec(),
            val_inputs: None,
            val_labels: vec![],
        },
        train: TrainConfig::new(2, 32, 0.03)
            .with_momentum(0.9)
            .with_seed(11),
    };

    // Cloud side: a keyed two-worker pool behind a loopback listener.
    let service = CloudService::builder()
        .workers(2)
        .api_keys(["demo-key"])
        .max_queue_depth(64)
        .build();
    let server = CloudServer::bind(service, "127.0.0.1:0")?;
    println!("cloud listening on {}", server.local_addr());

    // The trust boundary, for real this time: every byte below crosses TCP.
    let client = RemoteCloudClient::connect_with(
        server.local_addr(),
        TransportConfig::default().api_key("demo-key"),
    )?;
    println!(
        "session up: protocol v{}, {} in-flight slots",
        client.protocol_version(),
        client.max_in_flight()
    );
    let handle = client.submit(&job)?;
    println!("submitted request #{} — waiting on the wire…", handle.id());
    let result = handle.wait()?;
    println!(
        "uploaded {} KiB, downloaded {} KiB, trained {:.2}s over {} epochs",
        result.bytes_received / 1024,
        result.bytes_sent / 1024,
        result.train_seconds,
        result.history.epochs()
    );

    // Bitwise equivalence: the same job through the same pool, in-process.
    let local = server.local_client().with_api_key("demo-key").train(&job)?;
    assert_eq!(
        result.trained_model, local.trained_model,
        "the wire must add transport, not arithmetic"
    );
    println!("remote and in-process trained models are bitwise identical");

    // The observability plane, over the same wire: the `GetStats` admin
    // frame returns the service's full snapshot — counters plus per-stage
    // latency quantiles — and both stats types render operator tables.
    let stats = client.fetch_stats()?;
    println!("--- service stats (via GetStats frame) ---");
    println!("{stats}");
    println!("--- client stats ---");
    println!("{}", client.stats());
    client.close();
    server.shutdown();

    // -----------------------------------------------------------------
    // Act two: the durable daemon. The same workload as a long-running
    // job — per-epoch progress streamed back over the wire, snapshots
    // written to disk at every epoch boundary, and the backend killed
    // and restarted in the middle without losing the work.
    // -----------------------------------------------------------------
    println!("\n=== durable daemon: kill the backend mid-job, resume from disk ===");
    let daemon_job = CloudJob {
        model: bundle.augmented_model.to_bytes(),
        task: job.task.clone(),
        train: TrainConfig::new(8, 32, 0.03)
            .with_momentum(0.9)
            .with_seed(11),
    };

    // Ground truth: the identical job trained once, uninterrupted.
    let truth = CloudService::builder()
        .workers(1)
        .build()
        .client()
        .train(&daemon_job)?;

    // Snapshots outlive any single daemon process: each one lands in this
    // directory via write-to-temp + atomic rename.
    let ckpt_dir = std::env::temp_dir().join(format!("amalgam-daemon-{}", std::process::id()));
    let store = Arc::new(FileCheckpointStore::new(&ckpt_dir)?);

    let daemon1 = CloudServer::bind(
        CloudService::builder()
            .workers(1)
            .observer(Arc::new(Mutex::new(PacedEpochs(Duration::from_millis(20)))))
            .checkpoint_store(Arc::clone(&store) as Arc<dyn CheckpointStore>)
            .checkpoint_every(1)
            .build(),
        "127.0.0.1:0",
    )?;
    println!("daemon #1 up on {}", daemon1.local_addr());

    // The injector stands in for the network path to the daemon: it can
    // sever the link the way a crashed host would — mid-stream, no FIN —
    // and later point the same client-facing address at the restarted
    // process.
    let injector = FaultInjector::spawn(daemon1.local_addr())?;
    let client = RemoteCloudClient::connect_with(
        injector.addr(),
        TransportConfig::default()
            .reconnect(ReconnectPolicy::default().base(Duration::from_millis(20))),
    )?;
    let mut handle = client.submit(&daemon_job)?;
    println!(
        "daemon job #{} submitted — streaming progress:",
        handle.id()
    );

    // Stream per-epoch progress until at least two snapshots are on disk,
    // then pull the plug mid-job.
    while daemon1.stats().checkpoints_written < 2 {
        while let Some(update) = handle.try_progress() {
            println!(
                "  epoch {:>2}/{}  loss {:.4}  acc {:.1}%",
                update.epoch,
                update.total_epochs,
                update.train_loss,
                update.train_acc * 100.0
            );
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("killing daemon #1 mid-job…");
    injector.set_fault(Fault::Kill);
    // The orphaned execution notices its peer is gone, abandons the job,
    // and keeps the latest snapshot for whoever picks it up next.
    while daemon1.stats().jobs_cancelled == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let interrupted = daemon1.stats();
    daemon1.shutdown();
    println!(
        "daemon #1 died after {} epochs ({} snapshots on disk)",
        interrupted.epochs_trained, interrupted.checkpoints_written
    );

    // Restart: a fresh daemon process on the same checkpoint directory.
    let daemon2 = CloudServer::bind(
        CloudService::builder()
            .workers(1)
            .checkpoint_store(Arc::clone(&store) as Arc<dyn CheckpointStore>)
            .checkpoint_every(1)
            .build(),
        "127.0.0.1:0",
    )?;
    injector.retarget(daemon2.local_addr());
    injector.set_fault(Fault::None);
    println!(
        "daemon #2 up on {} — same disk, healing link…",
        daemon2.local_addr()
    );

    // The self-healing client reconnects and replays the job; the new
    // daemon finds the snapshot and trains only the remaining epochs.
    // The original handle never noticed any of this.
    for update in handle.progress() {
        println!(
            "  epoch {:>2}/{}  loss {:.4}  acc {:.1}%  (resumed)",
            update.epoch,
            update.total_epochs,
            update.train_loss,
            update.train_acc * 100.0
        );
    }
    let daemon_result = handle
        .wait_timeout(Duration::from_secs(60))
        .expect("resumed job must finish")?;
    let resumed = daemon2.stats();
    assert_eq!(
        daemon_result.trained_model, truth.trained_model,
        "a restart must change availability, not arithmetic"
    );
    assert_eq!(daemon_result.history.train_loss, truth.history.train_loss);
    assert_eq!(resumed.jobs_resumed, 1);
    assert_eq!(
        interrupted.epochs_trained + resumed.epochs_trained,
        daemon_result.history.epochs() as u64,
        "the two daemons must split the epochs exactly — no recompute"
    );
    println!(
        "daemon #2 resumed from disk and trained {} of {} epochs — result \
         bitwise identical to an uninterrupted run",
        resumed.epochs_trained,
        daemon_result.history.epochs()
    );
    client.close();
    daemon2.shutdown();
    injector.shutdown();
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // Client side: decode, extract, and use the original model locally.
    let trained = GraphModel::from_bytes(result.trained_model)?;
    let extracted = Amalgam::extract(&trained, &model, &bundle.secrets)?;
    let mut clean = extracted.model;
    let (_, acc) = amalgam::core::trainer::evaluate_image_classifier(&mut clean, &data.test, 0, 32);
    println!(
        "extracted model accuracy on original test set: {:.1}%",
        acc * 100.0
    );
    Ok(())
}
